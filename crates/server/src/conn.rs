//! Per-connection state for the readiness event loop: byte-stream
//! framing and ordered response write-back.
//!
//! ```text
//!   TCP bytes ─▶ LineFramer ─▶ framed requests ─▶ (inline | admission queue)
//!                                                        │
//!   TCP bytes ◀─ write buffer ◀─ ordered slots ◀─────────┘ (worker completions)
//! ```
//!
//! [`LineFramer`] turns arbitrary read chunks into whole request lines
//! under the [`MAX_LINE`](crate::MAX_LINE) cap: an oversized line is
//! reported **once** (the caller answers it with one `bad-request`
//! error) and the framer then *discards* bytes until the next newline,
//! so a client that streamed megabytes of garbage resynchronizes
//! cleanly on its next real request — subsequent requests are never
//! mis-framed as the tail of the oversized one.
//!
//! [`Conn`] holds everything else one connection needs: the response
//! **slot queue** (one slot per received request, in receive order —
//! inline ops fill theirs immediately, queued queries fill them when a
//! worker completes, and only a filled *prefix* is ever flushed, so a
//! client's answers can never reorder even when its pipelined queries
//! finish out of order on the pool), the nonblocking write buffer, and
//! the idle/backpressure bookkeeping the event loop polls.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::TcpStream;
use std::time::Instant;

/// What [`LineFramer::push`] extracted from a chunk of bytes.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// One complete, nonempty, within-cap request line (lossily decoded,
    /// trimmed).
    Line(String),
    /// A line exceeded the cap. Reported exactly once per oversized
    /// line, at the moment the overflow is detected; the remainder of
    /// the line is silently discarded up to its newline.
    Oversized,
}

/// Assembles whole request lines from read chunks, capping any single
/// line at `max_line` bytes (see the module docs for the resync
/// contract).
#[derive(Debug)]
pub struct LineFramer {
    pending: Vec<u8>,
    discarding: bool,
    max_line: usize,
}

impl LineFramer {
    /// A framer capping lines at `max_line` bytes.
    pub fn new(max_line: usize) -> LineFramer {
        LineFramer {
            pending: Vec::new(),
            discarding: false,
            max_line,
        }
    }

    /// Consumes one read chunk, appending every extracted [`Frame`] to
    /// `out` in stream order.
    pub fn push(&mut self, chunk: &[u8], out: &mut Vec<Frame>) {
        let mut rest = chunk;
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(pos);
            rest = &tail[1..];
            if self.discarding {
                // The tail end of an oversized line (already reported):
                // drop it and resynchronize at this newline.
                self.discarding = false;
                continue;
            }
            self.pending.extend_from_slice(head);
            // The cap applies even when the newline arrives in the same
            // chunk as the overflowing tail.
            if self.pending.len() > self.max_line {
                self.pending.clear();
                out.push(Frame::Oversized);
                continue;
            }
            let line = String::from_utf8_lossy(&self.pending).trim().to_string();
            self.pending.clear();
            if !line.is_empty() {
                out.push(Frame::Line(line));
            }
        }
        if self.discarding {
            return;
        }
        if self.pending.len() + rest.len() > self.max_line {
            // Mid-line overflow with no newline yet: report now, then
            // discard until the newline eventually arrives.
            self.discarding = true;
            self.pending.clear();
            out.push(Frame::Oversized);
        } else {
            self.pending.extend_from_slice(rest);
        }
    }

    /// The final unterminated line at EOF, if any — a client that wrote
    /// its last request without a trailing newline still deserves its
    /// answer. Returns `None` while discarding an oversized line (its
    /// error was already sent).
    pub fn finish(&mut self) -> Option<String> {
        if self.discarding || self.pending.is_empty() {
            return None;
        }
        let line = String::from_utf8_lossy(&self.pending).trim().to_string();
        self.pending.clear();
        (!line.is_empty()).then_some(line)
    }
}

/// Pause reading from a connection whose peer is not draining its
/// responses once this many unflushed bytes accumulate — backpressure
/// toward the client instead of unbounded server-side buffering. The
/// read side resumes as soon as the buffer drains below the mark.
pub const WRITE_BACKPRESSURE_BYTES: usize = 1 << 20;

/// One live connection in the event loop.
#[derive(Debug)]
pub struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Request-line assembly.
    pub framer: LineFramer,
    /// Ordered response slots: `slots[i]` answers request `base_seq + i`.
    slots: VecDeque<Option<String>>,
    /// Sequence number of `slots.front()`.
    base_seq: u64,
    /// Sequence number the next received request will get.
    next_seq: u64,
    /// Flushable bytes (filled-prefix responses, newline-terminated).
    out: Vec<u8>,
    /// How much of `out` has been written to the socket.
    out_pos: usize,
    /// Last moment bytes moved on this connection (either direction) —
    /// the idle-timeout clock.
    pub last_activity: Instant,
    /// Requests admitted to the worker queue and not yet completed.
    pub inflight: usize,
    /// Close once every slot is answered and flushed (peer EOF, a
    /// `shutdown` acknowledgment, or server drain).
    pub closing: bool,
}

impl Conn {
    /// Wraps a freshly accepted (already nonblocking) stream.
    pub fn new(stream: TcpStream, max_line: usize) -> Conn {
        Conn {
            stream,
            framer: LineFramer::new(max_line),
            slots: VecDeque::new(),
            base_seq: 0,
            next_seq: 0,
            out: Vec::new(),
            out_pos: 0,
            last_activity: Instant::now(),
            inflight: 0,
            closing: false,
        }
    }

    /// Reserves the next ordered response slot, returning its sequence
    /// number (the completion key for queued work).
    pub fn alloc_slot(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.push_back(None);
        seq
    }

    /// Fills a reserved slot and moves the filled prefix into the write
    /// buffer. A stale sequence (slot already gone because the
    /// connection is being torn down) is ignored.
    pub fn fill_slot(&mut self, seq: u64, line: String) {
        let Some(idx) = seq.checked_sub(self.base_seq) else {
            return;
        };
        let Some(slot) = self.slots.get_mut(idx as usize) else {
            return;
        };
        *slot = Some(line);
        while let Some(Some(_)) = self.slots.front() {
            let line = self.slots.pop_front().flatten().expect("checked Some");
            self.base_seq += 1;
            self.out.extend_from_slice(line.as_bytes());
            self.out.push(b'\n');
        }
    }

    /// Writes as much of the buffer as the socket accepts right now.
    /// `Err` means the connection is dead and should be dropped.
    pub fn flush(&mut self) -> io::Result<()> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(())
    }

    /// Unwritten bytes still buffered.
    pub fn unflushed(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// True when the loop should ask for `POLLOUT`.
    pub fn wants_write(&self) -> bool {
        self.unflushed() > 0
    }

    /// True when reading should pause until the peer drains responses.
    pub fn read_paused(&self) -> bool {
        self.unflushed() >= WRITE_BACKPRESSURE_BYTES
    }

    /// True when nothing is pending in either direction: no admitted
    /// work, no unanswered slot, no unflushed byte. Idle connections are
    /// the ones an idle timeout (or EMFILE shedding) may close.
    pub fn is_idle(&self) -> bool {
        self.inflight == 0 && self.slots.is_empty() && self.unflushed() == 0
    }

    /// True when a closing connection has delivered everything it owes.
    pub fn drained(&self) -> bool {
        self.inflight == 0 && self.slots.is_empty() && self.unflushed() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(framer: &mut LineFramer, chunk: &[u8]) -> Vec<Frame> {
        let mut out = Vec::new();
        framer.push(chunk, &mut out);
        out
    }

    #[test]
    fn lines_split_across_arbitrary_chunks() {
        let mut f = LineFramer::new(64);
        assert_eq!(frames(&mut f, b"{\"op\":"), vec![]);
        assert_eq!(
            frames(&mut f, b"\"ping\"}\n{\"op\""),
            vec![Frame::Line("{\"op\":\"ping\"}".to_string())]
        );
        assert_eq!(
            frames(&mut f, b":\"list\"}\n"),
            vec![Frame::Line("{\"op\":\"list\"}".to_string())]
        );
    }

    #[test]
    fn blank_lines_and_crlf_are_tolerated() {
        let mut f = LineFramer::new(64);
        assert_eq!(
            frames(&mut f, b"\n  \r\n{\"op\":\"ping\"}\r\n"),
            vec![Frame::Line("{\"op\":\"ping\"}".to_string())]
        );
    }

    #[test]
    fn oversized_line_with_its_newline_in_one_chunk_resyncs() {
        // Regression pin: the overflow completes *within* one chunk and
        // the next request follows in the very same chunk — it must be
        // framed as its own request, not as garbage glued to the tail.
        let mut f = LineFramer::new(8);
        let mut chunk = vec![b'x'; 9];
        chunk.push(b'\n');
        chunk.extend_from_slice(b"ping\n");
        assert_eq!(
            frames(&mut f, &chunk),
            vec![Frame::Oversized, Frame::Line("ping".to_string())]
        );
    }

    #[test]
    fn oversized_line_streaming_across_chunks_reports_once_then_resyncs() {
        let mut f = LineFramer::new(8);
        // 20 bytes, no newline: overflow detected mid-line, exactly one
        // report.
        assert_eq!(frames(&mut f, &[b'y'; 20]), vec![Frame::Oversized]);
        // More of the same line: still discarding, no duplicate report.
        assert_eq!(frames(&mut f, &[b'y'; 20]), vec![]);
        // The newline ends the discard; the next request parses clean —
        // even when both arrive in one chunk.
        assert_eq!(
            frames(&mut f, b"yyy\nping\n"),
            vec![Frame::Line("ping".to_string())]
        );
    }

    #[test]
    fn a_line_of_exactly_max_line_bytes_is_not_oversized() {
        let mut f = LineFramer::new(4);
        let mut chunk = vec![b'a'; 4];
        chunk.push(b'\n');
        assert_eq!(
            frames(&mut f, &chunk),
            vec![Frame::Line("aaaa".to_string())]
        );
        let mut over = vec![b'a'; 5];
        over.push(b'\n');
        assert_eq!(frames(&mut f, &over), vec![Frame::Oversized]);
    }

    #[test]
    fn finish_yields_the_unterminated_final_line_except_while_discarding() {
        let mut f = LineFramer::new(64);
        f.push(b"last request", &mut Vec::new());
        assert_eq!(f.finish(), Some("last request".to_string()));
        assert_eq!(f.finish(), None);

        let mut d = LineFramer::new(4);
        let mut out = Vec::new();
        d.push(&[b'z'; 10], &mut out);
        assert_eq!(out, vec![Frame::Oversized]);
        // EOF in the middle of the discarded line: no phantom request.
        assert_eq!(d.finish(), None);
    }

    #[test]
    fn non_utf8_bytes_become_lossy_lines_not_panics() {
        let mut f = LineFramer::new(64);
        let got = frames(&mut f, b"\xff\xfe{bad}\n");
        assert_eq!(got.len(), 1);
        match &got[0] {
            Frame::Line(l) => assert!(l.contains("{bad}")),
            other => panic!("{other:?}"),
        }
    }
}
