//! Crash-safe, versioned on-disk snapshots of the serving state.
//!
//! `rwq serve --snapshot-dir DIR` persists two JSONL files:
//!
//! - **`registry.rwsnap`** — one entry per resident KB: its `.rwkb`
//!   source text, the canonical fingerprint recorded at load time, and
//!   the engine configuration (Monte-Carlo parameters, enumeration-scan
//!   pins) the KB was loaded with.
//! - **`cache.rwsnap`** — every [`AnswerCache`](rw_core::AnswerCache)
//!   entry (belief + provenance, floats as exact IEEE-754 bit patterns)
//!   and every [`DenomCache`](rw_core::DenomCache) world count.
//!
//! Each file is framed the same way: a header line
//! `{"rwsnap":1,"kind":...}` pinning the format version, one JSON
//! object per entry, and a trailing `{"checksum":...}` line carrying
//! the FNV-1a hash of every preceding byte. Writes go to a temp file
//! first and `rename(2)` into place, so a crash mid-checkpoint leaves
//! the previous snapshot intact rather than a half-written one.
//!
//! On startup [`load`] validates before it commits anything: headers,
//! version, checksum, entry syntax, and — the integrity check that
//! makes restores trustworthy — each stored KB text is re-parsed and
//! re-fingerprinted, and the recomputed fingerprint must equal the
//! recorded one. Any failure surfaces as a structured
//! [`SnapshotError`] (never a panic) and restores **nothing**: the
//! server falls back to a cold start. Restoring caches wholesale is
//! safe by construction because every cache key embeds the KB (and
//! engine-config) fingerprint — a stale or foreign entry can never be
//! served against a KB it was not computed for, the same invariant
//! that makes cross-node cache reuse sound.

use crate::proto::{ApproxParams, KbSource, ScanParams, Value};
use crate::registry::KbRegistry;
use rw_core::{Belief, CachedAnswer, DenomKey, Provenance, ScaledCount};
use rw_logic::canon::fnv1a;
use std::fmt;
use std::fs;
use std::path::Path;
use std::time::Instant;

/// The on-disk format version this build writes and accepts.
pub const SNAPSHOT_VERSION: i128 = 1;
/// The KB-registry snapshot file name inside the snapshot directory.
pub const REGISTRY_FILE: &str = "registry.rwsnap";
/// The cache-contents snapshot file name inside the snapshot directory.
pub const CACHE_FILE: &str = "cache.rwsnap";

/// Deepest [`Provenance::Independence`] nesting an answer entry may
/// carry. A deeper answer is *skipped* on save (a snapshot is a cache —
/// dropping an entry is always safe) so reload can never hit the JSON
/// parser's own depth cap.
const MAX_PROVENANCE_DEPTH: usize = 24;

/// Why a snapshot could not be saved or restored. Every variant is a
/// structured, printable rejection — corruption is reported, never
/// panicked on, and the caller falls back to a cold start.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// A file's first line is not a valid snapshot header.
    BadHeader {
        /// Which snapshot file (`"registry"` or `"cache"`).
        file: &'static str,
        /// What was wrong with the header line.
        message: String,
    },
    /// The header's `rwsnap` version is not [`SNAPSHOT_VERSION`].
    WrongVersion {
        /// Which snapshot file.
        file: &'static str,
        /// The version the file declares.
        found: i128,
    },
    /// The file ends without a checksum trailer — a write died midway.
    Truncated {
        /// Which snapshot file.
        file: &'static str,
    },
    /// The checksum trailer does not match the file's bytes.
    ChecksumMismatch {
        /// Which snapshot file.
        file: &'static str,
    },
    /// An entry line is syntactically or semantically invalid.
    Corrupt {
        /// Which snapshot file.
        file: &'static str,
        /// 1-based line number (0 when not attributable to a line).
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A stored KB re-parsed to a different canonical fingerprint than
    /// the one recorded at save time.
    FingerprintMismatch {
        /// The KB's registry name.
        kb: String,
        /// The fingerprint recorded in the snapshot.
        recorded: u64,
        /// The fingerprint the stored text actually hashes to.
        computed: u64,
    },
}

impl SnapshotError {
    /// A stable machine-readable keyword for the error class.
    pub fn code(&self) -> &'static str {
        match self {
            SnapshotError::Io(_) => "io",
            SnapshotError::BadHeader { .. } => "bad-header",
            SnapshotError::WrongVersion { .. } => "wrong-version",
            SnapshotError::Truncated { .. } => "truncated",
            SnapshotError::ChecksumMismatch { .. } => "checksum-mismatch",
            SnapshotError::Corrupt { .. } => "corrupt",
            SnapshotError::FingerprintMismatch { .. } => "fingerprint-mismatch",
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadHeader { file, message } => {
                write!(f, "{file} snapshot has a bad header: {message}")
            }
            SnapshotError::WrongVersion { file, found } => write!(
                f,
                "{file} snapshot is version {found}, this build reads {SNAPSHOT_VERSION}"
            ),
            SnapshotError::Truncated { file } => {
                write!(f, "{file} snapshot is truncated (no checksum trailer)")
            }
            SnapshotError::ChecksumMismatch { file } => {
                write!(f, "{file} snapshot fails its checksum")
            }
            SnapshotError::Corrupt {
                file,
                line,
                message,
            } => write!(f, "{file} snapshot line {line} is corrupt: {message}"),
            SnapshotError::FingerprintMismatch {
                kb,
                recorded,
                computed,
            } => write!(
                f,
                "KB `{kb}` fingerprint mismatch: snapshot records {recorded:016x}, \
                 stored text hashes to {computed:016x}"
            ),
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// What a save wrote or a load restored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// KBs persisted/restored.
    pub kbs: usize,
    /// Answer-cache entries persisted/restored.
    pub answers: usize,
    /// Denominator-cache entries persisted/restored.
    pub denoms: usize,
    /// Entries skipped on save (KBs without retained source text,
    /// answers whose provenance nests beyond the snapshot depth cap).
    pub skipped: usize,
}

impl SnapshotStats {
    /// The banner/stats JSON fragment for this save/load.
    pub fn json(&self) -> String {
        format!(
            r#"{{"kbs":{},"answers":{},"denoms":{},"skipped":{}}}"#,
            self.kbs, self.answers, self.denoms, self.skipped
        )
    }
}

/// Checkpoints the registry (KB sources + engine config) and both
/// caches into `dir`, atomically replacing any previous snapshot.
pub fn save(dir: &Path, registry: &KbRegistry) -> Result<SnapshotStats, SnapshotError> {
    let start = Instant::now();
    fs::create_dir_all(dir)?;
    let mut stats = SnapshotStats::default();

    let mut reg_body = header_line("registry");
    for kb in registry.snapshot_entries() {
        let Some(text) = &kb.source else {
            stats.skipped += 1;
            continue;
        };
        reg_body.push_str(&registry_entry_json(&kb, text));
        reg_body.push('\n');
        stats.kbs += 1;
    }
    seal(&mut reg_body);
    write_atomic(dir, REGISTRY_FILE, &reg_body)?;

    let mut cache_body = header_line("cache");
    for (key, answer) in registry.cache().export() {
        match answer_entry_json(&key, &answer) {
            Some(line) => {
                cache_body.push_str(&line);
                cache_body.push('\n');
                stats.answers += 1;
            }
            None => stats.skipped += 1,
        }
    }
    for (key, count) in registry.denoms().export() {
        cache_body.push_str(&denom_entry_json(&key, count));
        cache_body.push('\n');
        stats.denoms += 1;
    }
    seal(&mut cache_body);
    write_atomic(dir, CACHE_FILE, &cache_body)?;

    if rw_obs::enabled() {
        let reg = rw_obs::registry();
        reg.counter("snapshot.saves").inc();
        reg.histogram("snapshot.save_us")
            .record_us(start.elapsed().as_micros() as u64);
    }
    Ok(stats)
}

/// Restores a snapshot from `dir` into `registry`. `Ok(None)` means no
/// snapshot exists there (a fresh directory — cold start, not an
/// error). Validation is all-or-nothing: every KB text must re-parse to
/// its recorded fingerprint and every cache entry must decode *before*
/// anything is committed, so a rejected snapshot leaves the registry
/// exactly as cold as it found it.
pub fn load(dir: &Path, registry: &KbRegistry) -> Result<Option<SnapshotStats>, SnapshotError> {
    let outcome = load_inner(dir, registry);
    if rw_obs::enabled() {
        let reg = rw_obs::registry();
        match &outcome {
            Ok(Some(_)) => reg.counter("snapshot.loads").inc(),
            Ok(None) => {}
            Err(_) => reg.counter("snapshot.load_errors").inc(),
        }
    }
    outcome
}

fn load_inner(dir: &Path, registry: &KbRegistry) -> Result<Option<SnapshotStats>, SnapshotError> {
    let reg_path = dir.join(REGISTRY_FILE);
    if !reg_path.exists() {
        return Ok(None);
    }
    let reg_content = fs::read_to_string(&reg_path)?;
    let reg_lines = validate_frame("registry", &reg_content)?;

    struct StagedKb {
        name: String,
        text: String,
        approx: Option<ApproxParams>,
        scan: ScanParams,
    }
    let mut staged: Vec<StagedKb> = Vec::with_capacity(reg_lines.len());
    for (line, v) in &reg_lines {
        let corrupt = |message: String| SnapshotError::Corrupt {
            file: "registry",
            line: *line,
            message,
        };
        let name = get_str(v, "kb").map_err(&corrupt)?.to_string();
        let recorded =
            parse_hex_u64(get_str(v, "fingerprint").map_err(&corrupt)?).map_err(&corrupt)?;
        let text = get_str(v, "text").map_err(&corrupt)?.to_string();
        let approx = parse_approx(v).map_err(&corrupt)?;
        let scan = parse_scan(v).map_err(&corrupt)?;
        let kb = crate::format::parse_kb(&text)
            .map_err(|e| corrupt(format!("stored KB does not parse: {e}")))?;
        let computed = rw_logic::canon::kb_fingerprint(&kb);
        if computed != recorded {
            return Err(SnapshotError::FingerprintMismatch {
                kb: name,
                recorded,
                computed,
            });
        }
        staged.push(StagedKb {
            name,
            text,
            approx,
            scan,
        });
    }

    let mut answers: Vec<(String, CachedAnswer)> = Vec::new();
    let mut denoms: Vec<(DenomKey, ScaledCount)> = Vec::new();
    let cache_path = dir.join(CACHE_FILE);
    if cache_path.exists() {
        let cache_content = fs::read_to_string(&cache_path)?;
        for (line, v) in validate_frame("cache", &cache_content)? {
            let corrupt = |message: String| SnapshotError::Corrupt {
                file: "cache",
                line,
                message,
            };
            if let Some(a) = v.get("answer") {
                answers.push(parse_answer_entry(a).map_err(corrupt)?);
            } else if let Some(d) = v.get("denom") {
                denoms.push(parse_denom_entry(d).map_err(corrupt)?);
            } else {
                return Err(corrupt(
                    "entry is neither an answer nor a denom".to_string(),
                ));
            }
        }
    }

    // Everything validated — commit. Re-loading the staged text cannot
    // fail (it parsed above, and parsing is deterministic).
    let mut stats = SnapshotStats {
        answers: answers.len(),
        denoms: denoms.len(),
        ..SnapshotStats::default()
    };
    for kb in staged {
        registry
            .load(
                &kb.name,
                &KbSource::Text(kb.text),
                kb.approx.as_ref(),
                kb.scan,
            )
            .map_err(|e| SnapshotError::Corrupt {
                file: "registry",
                line: 0,
                message: e.message,
            })?;
        stats.kbs += 1;
    }
    registry.cache().restore(answers);
    registry.denoms().restore(denoms);
    Ok(Some(stats))
}

// ---------------------------------------------------------------------
// Framing: header line, checksum trailer, atomic replace.

fn header_line(kind: &str) -> String {
    format!("{{\"rwsnap\":{SNAPSHOT_VERSION},\"kind\":\"{kind}\"}}\n")
}

/// Appends the checksum trailer over everything written so far.
fn seal(body: &mut String) {
    let sum = fnv1a(body.as_bytes());
    body.push_str(&format!("{{\"checksum\":\"{sum:016x}\"}}\n"));
}

fn write_atomic(dir: &Path, name: &str, body: &str) -> Result<(), SnapshotError> {
    let tmp = dir.join(format!("{name}.tmp"));
    fs::write(&tmp, body)?;
    fs::rename(&tmp, dir.join(name))?;
    Ok(())
}

/// Checks header, version, kind, truncation and checksum, returning the
/// parsed entry lines as `(1-based line number, value)` pairs.
fn validate_frame(file: &'static str, content: &str) -> Result<Vec<(usize, Value)>, SnapshotError> {
    let Some((first, _)) = content.split_once('\n') else {
        return Err(SnapshotError::Truncated { file });
    };
    let header = Value::parse(first.trim()).map_err(|e| SnapshotError::BadHeader {
        file,
        message: e.to_string(),
    })?;
    let version = match header.get("rwsnap") {
        Some(Value::Int(v)) => *v,
        _ => {
            return Err(SnapshotError::BadHeader {
                file,
                message: "missing rwsnap version field".to_string(),
            })
        }
    };
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::WrongVersion {
            file,
            found: version,
        });
    }
    if header.get("kind").and_then(Value::as_str) != Some(file) {
        return Err(SnapshotError::BadHeader {
            file,
            message: "kind field does not match the file".to_string(),
        });
    }
    if !content.ends_with('\n') {
        return Err(SnapshotError::Truncated { file });
    }
    let trimmed = &content[..content.len() - 1];
    let Some(last_nl) = trimmed.rfind('\n') else {
        // Only the header line exists: the trailer never made it out.
        return Err(SnapshotError::Truncated { file });
    };
    let (body, check_line) = trimmed.split_at(last_nl + 1);
    let expected = match Value::parse(check_line.trim()) {
        Ok(v) => match v.get("checksum").and_then(Value::as_str) {
            Some(hex) => parse_hex_u64(hex).map_err(|message| SnapshotError::Corrupt {
                file,
                line: 0,
                message,
            })?,
            None => return Err(SnapshotError::Truncated { file }),
        },
        Err(_) => return Err(SnapshotError::Truncated { file }),
    };
    if fnv1a(body.as_bytes()) != expected {
        return Err(SnapshotError::ChecksumMismatch { file });
    }
    let mut out = Vec::new();
    for (idx, line) in body.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let v = Value::parse(line.trim()).map_err(|e| SnapshotError::Corrupt {
            file,
            line: idx + 1,
            message: e.to_string(),
        })?;
        out.push((idx + 1, v));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Registry entries.

fn registry_entry_json(kb: &crate::registry::LoadedKb, text: &str) -> String {
    let approx = match &kb.approx_params {
        None => "null".to_string(),
        Some(a) => format!(
            r#"{{"samples":{},"seed":{},"ci":{}}}"#,
            opt_int(a.samples),
            opt_int(a.seed),
            a.ci.map_or("null".to_string(), |c| format!("\"{}\"", hex_f64(c))),
        ),
    };
    format!(
        r#"{{"kb":"{}","fingerprint":"{:016x}","text":"{}","approx":{},"symmetry":{},"min_n":{},"max_n":{}}}"#,
        crate::json::escape(&kb.name),
        kb.fingerprint,
        crate::json::escape(text),
        approx,
        kb.scan.symmetry,
        opt_int(kb.scan.min_n.map(|n| n as u64)),
        opt_int(kb.scan.max_n.map(|n| n as u64)),
    )
}

fn parse_approx(v: &Value) -> Result<Option<ApproxParams>, String> {
    match v.get("approx") {
        None | Some(Value::Null) => Ok(None),
        Some(a) => Ok(Some(ApproxParams {
            samples: opt_u64_field(a, "samples")?,
            seed: opt_u64_field(a, "seed")?,
            ci: match a.get("ci") {
                None | Some(Value::Null) => None,
                Some(Value::Str(s)) => Some(parse_hex_f64(s)?),
                Some(_) => return Err("approx ci must be a bit-pattern string".to_string()),
            },
        })),
    }
}

fn parse_scan(v: &Value) -> Result<ScanParams, String> {
    let symmetry = match v.get("symmetry") {
        Some(b) => b
            .as_bool()
            .ok_or_else(|| "symmetry must be a bool".to_string())?,
        None => false,
    };
    let dim = |key: &str| -> Result<Option<usize>, String> {
        Ok(match opt_u64_field(v, key)? {
            None => None,
            Some(n) => Some(usize::try_from(n).map_err(|_| format!("{key} out of range: {n}"))?),
        })
    };
    Ok(ScanParams {
        symmetry,
        min_n: dim("min_n")?,
        max_n: dim("max_n")?,
    })
}

// ---------------------------------------------------------------------
// Cache entries: beliefs and provenance with exact float bit patterns.

fn answer_entry_json(key: &str, answer: &CachedAnswer) -> Option<String> {
    let prov = provenance_json(&answer.provenance, 0)?;
    Some(format!(
        r#"{{"answer":{{"key":"{}","belief":{},"prov":{}}}}}"#,
        crate::json::escape(key),
        belief_json(&answer.belief),
        prov
    ))
}

fn parse_answer_entry(v: &Value) -> Result<(String, CachedAnswer), String> {
    let key = get_str(v, "key")?.to_string();
    let belief = parse_belief(
        v.get("belief")
            .ok_or_else(|| "answer missing belief".to_string())?,
    )?;
    let provenance = parse_provenance(
        v.get("prov")
            .ok_or_else(|| "answer missing prov".to_string())?,
        0,
    )?;
    Ok((key, CachedAnswer { belief, provenance }))
}

fn belief_json(b: &Belief) -> String {
    match b {
        Belief::Point(v) => format!(r#"{{"t":"point","v":"{}"}}"#, hex_f64(*v)),
        Belief::Interval(lo, hi) => format!(
            r#"{{"t":"interval","lo":"{}","hi":"{}"}}"#,
            hex_f64(*lo),
            hex_f64(*hi)
        ),
        Belief::NonRobust(vs) => {
            let vs: Vec<String> = vs.iter().map(|v| format!("\"{}\"", hex_f64(*v))).collect();
            format!(r#"{{"t":"nonrobust","vs":[{}]}}"#, vs.join(","))
        }
        Belief::Approximate {
            value,
            ci_half_width,
        } => format!(
            r#"{{"t":"approx","v":"{}","ci":"{}"}}"#,
            hex_f64(*value),
            hex_f64(*ci_half_width)
        ),
        Belief::Undefined => r#"{"t":"undefined"}"#.to_string(),
    }
}

fn parse_belief(v: &Value) -> Result<Belief, String> {
    let field = |key: &str| -> Result<f64, String> { parse_hex_f64(get_str(v, key)?) };
    match get_str(v, "t")? {
        "point" => Ok(Belief::Point(field("v")?)),
        "interval" => Ok(Belief::Interval(field("lo")?, field("hi")?)),
        "nonrobust" => {
            let Some(Value::Arr(items)) = v.get("vs") else {
                return Err("nonrobust belief missing vs array".to_string());
            };
            let vs: Result<Vec<f64>, String> = items
                .iter()
                .map(|item| match item {
                    Value::Str(s) => parse_hex_f64(s),
                    _ => Err("nonrobust vs entries must be bit-pattern strings".to_string()),
                })
                .collect();
            Ok(Belief::NonRobust(vs?))
        }
        "approx" => Ok(Belief::Approximate {
            value: field("v")?,
            ci_half_width: field("ci")?,
        }),
        "undefined" => Ok(Belief::Undefined),
        other => Err(format!("unknown belief type `{other}`")),
    }
}

fn provenance_json(p: &Provenance, depth: usize) -> Option<String> {
    if depth > MAX_PROVENANCE_DEPTH {
        return None;
    }
    Some(match p {
        Provenance::DirectInference => r#"{"p":"direct"}"#.to_string(),
        Provenance::MinimalReferenceClass => r#"{"p":"minref"}"#.to_string(),
        Provenance::StrengthRule => r#"{"p":"strength"}"#.to_string(),
        Provenance::Dempster => r#"{"p":"dempster"}"#.to_string(),
        Provenance::Independence(parts) => {
            let encoded: Option<Vec<String>> = parts
                .iter()
                .map(|part| provenance_json(part, depth + 1))
                .collect();
            format!(r#"{{"p":"independence","parts":[{}]}}"#, encoded?.join(","))
        }
        Provenance::UniqueNames => r#"{"p":"uniquenames"}"#.to_string(),
        Provenance::NestedDefault => r#"{"p":"nesteddefault"}"#.to_string(),
        Provenance::MaxEnt => r#"{"p":"maxent"}"#.to_string(),
        Provenance::UnaryExact { max_n } => {
            format!(r#"{{"p":"unary","max_n":{max_n}}}"#)
        }
        Provenance::Enumeration {
            max_n,
            visited,
            branched,
            orbits,
        } => format!(
            r#"{{"p":"enum","max_n":{max_n},"visited":{visited},"branched":{branched},"orbits":{orbits}}}"#
        ),
        Provenance::Entailed => r#"{"p":"entailed"}"#.to_string(),
        Provenance::MonteCarlo {
            drawn,
            accepted,
            n_points,
        } => format!(r#"{{"p":"mc","drawn":{drawn},"accepted":{accepted},"n_points":{n_points}}}"#),
    })
}

fn parse_provenance(v: &Value, depth: usize) -> Result<Provenance, String> {
    if depth > MAX_PROVENANCE_DEPTH {
        return Err("provenance nests beyond the snapshot depth cap".to_string());
    }
    match get_str(v, "p")? {
        "direct" => Ok(Provenance::DirectInference),
        "minref" => Ok(Provenance::MinimalReferenceClass),
        "strength" => Ok(Provenance::StrengthRule),
        "dempster" => Ok(Provenance::Dempster),
        "independence" => {
            let Some(Value::Arr(items)) = v.get("parts") else {
                return Err("independence provenance missing parts".to_string());
            };
            let parts: Result<Vec<Box<Provenance>>, String> = items
                .iter()
                .map(|item| parse_provenance(item, depth + 1).map(Box::new))
                .collect();
            Ok(Provenance::Independence(parts?))
        }
        "uniquenames" => Ok(Provenance::UniqueNames),
        "nesteddefault" => Ok(Provenance::NestedDefault),
        "maxent" => Ok(Provenance::MaxEnt),
        "unary" => Ok(Provenance::UnaryExact {
            max_n: get_usize(v, "max_n")?,
        }),
        "enum" => Ok(Provenance::Enumeration {
            max_n: get_usize(v, "max_n")?,
            visited: get_u64(v, "visited")?,
            branched: get_u64(v, "branched")?,
            orbits: get_u64(v, "orbits")?,
        }),
        "entailed" => Ok(Provenance::Entailed),
        "mc" => Ok(Provenance::MonteCarlo {
            drawn: get_u64(v, "drawn")?,
            accepted: get_u64(v, "accepted")?,
            n_points: get_usize(v, "n_points")?,
        }),
        other => Err(format!("unknown provenance `{other}`")),
    }
}

fn denom_entry_json(key: &DenomKey, count: ScaledCount) -> String {
    format!(
        r#"{{"denom":{{"kb":"{:016x}","vocab":"{:016x}","n":{},"tau_num":{},"tau_den":{},"budget":{},"symmetry":{},"coeff":"{}","exp2":{}}}}}"#,
        key.kb_fingerprint,
        key.vocab_fingerprint,
        key.n,
        key.tau.0,
        key.tau.1,
        key.budget,
        key.symmetry,
        count.coeff,
        count.exp2
    )
}

fn parse_denom_entry(v: &Value) -> Result<(DenomKey, ScaledCount), String> {
    let key = DenomKey {
        kb_fingerprint: parse_hex_u64(get_str(v, "kb")?)?,
        vocab_fingerprint: parse_hex_u64(get_str(v, "vocab")?)?,
        n: get_usize(v, "n")?,
        tau: (get_i128(v, "tau_num")?, get_i128(v, "tau_den")?),
        budget: get_u64(v, "budget")?,
        symmetry: v
            .get("symmetry")
            .and_then(Value::as_bool)
            .ok_or_else(|| "denom missing symmetry".to_string())?,
    };
    let coeff: u128 = get_str(v, "coeff")?
        .parse()
        .map_err(|_| "denom coeff is not a u128".to_string())?;
    let exp2 = get_u64(v, "exp2")?;
    // `new` re-normalizes, reproducing the exported representation
    // exactly (exports are already normalized).
    Ok((key, ScaledCount::new(coeff, exp2)))
}

// ---------------------------------------------------------------------
// Field helpers.

fn hex_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_hex_f64(s: &str) -> Result<f64, String> {
    let bits = u64::from_str_radix(s, 16).map_err(|_| format!("bad f64 bit pattern `{s}`"))?;
    Ok(f64::from_bits(bits))
}

fn parse_hex_u64(s: &str) -> Result<u64, String> {
    u64::from_str_radix(s, 16).map_err(|_| format!("bad hex value `{s}`"))
}

fn opt_int(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |n| n.to_string())
}

fn get_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field `{key}`"))
}

fn get_usize(v: &Value, key: &str) -> Result<usize, String> {
    usize::try_from(get_u64(v, key)?).map_err(|_| format!("field `{key}` out of range"))
}

fn get_i128(v: &Value, key: &str) -> Result<i128, String> {
    match v.get(key) {
        Some(Value::Int(i)) => Ok(*i),
        _ => Err(format!("missing integer field `{key}`")),
    }
}

fn opt_u64_field(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Int(_)) => Ok(Some(get_u64(v, key)?)),
        Some(_) => Err(format!("field `{key}` must be an integer or null")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rw_core::AnswerCache;
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rwsnap-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn warm_registry() -> KbRegistry {
        let reg = KbRegistry::new(Arc::new(AnswerCache::new()));
        reg.load(
            "med",
            &KbSource::Text("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)".to_string()),
            None,
            ScanParams::default(),
        )
        .unwrap();
        let (line, ok) = reg.get("med").unwrap().answer_json_line("Hep(Eric)");
        assert!(ok, "{line}");
        reg
    }

    #[test]
    fn save_load_roundtrip_restores_kbs_and_cache() {
        let dir = temp_dir("roundtrip");
        let reg = warm_registry();
        let saved = save(&dir, &reg).unwrap();
        assert_eq!(saved.kbs, 1);
        assert!(saved.answers >= 1, "{saved:?}");

        let fresh = KbRegistry::new(Arc::new(AnswerCache::new()));
        let loaded = load(&dir, &fresh).unwrap().expect("snapshot present");
        assert_eq!(loaded.kbs, 1);
        assert_eq!(loaded.answers, saved.answers);
        // The restored KB answers warm: the first query is a cache hit.
        let (line, ok) = fresh.get("med").unwrap().answer_json_line("Hep(Eric)");
        assert!(ok, "{line}");
        assert!(line.contains(r#""cache_hit":true"#), "{line}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_a_clean_cold_start() {
        let dir = temp_dir("missing");
        let reg = KbRegistry::new(Arc::new(AnswerCache::new()));
        assert!(load(&dir, &reg).unwrap().is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn wrong_version_is_rejected_structurally() {
        let dir = temp_dir("version");
        let reg = warm_registry();
        save(&dir, &reg).unwrap();
        let path = dir.join(REGISTRY_FILE);
        let content = fs::read_to_string(&path).unwrap();
        fs::write(&path, content.replace("{\"rwsnap\":1,", "{\"rwsnap\":99,")).unwrap();
        let fresh = KbRegistry::new(Arc::new(AnswerCache::new()));
        let err = load(&dir, &fresh).unwrap_err();
        assert_eq!(err.code(), "wrong-version");
        assert!(fresh.is_empty(), "rejected snapshot must not restore KBs");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_tampering_is_rejected_before_commit() {
        let dir = temp_dir("fp");
        let reg = warm_registry();
        save(&dir, &reg).unwrap();
        let path = dir.join(REGISTRY_FILE);
        // Tamper with the recorded fingerprint, then re-seal so the
        // checksum passes and the fingerprint check itself must catch it.
        let content = fs::read_to_string(&path).unwrap();
        let fp = reg.get("med").unwrap().fingerprint;
        let mut body: String = content
            .lines()
            .take(content.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        body = body.replace(
            &format!("{fp:016x}"),
            &format!("{:016x}", fp.wrapping_add(1)),
        );
        seal(&mut body);
        fs::write(&path, body).unwrap();
        let fresh = KbRegistry::new(Arc::new(AnswerCache::new()));
        let err = load(&dir, &fresh).unwrap_err();
        assert_eq!(err.code(), "fingerprint-mismatch");
        assert!(fresh.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
