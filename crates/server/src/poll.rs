//! A std-only readiness API: `ppoll(2)` through a direct syscall.
//!
//! The event loop in [`crate::server`] multiplexes thousands of
//! nonblocking sockets on one thread, which needs exactly one kernel
//! facility the standard library does not expose: "block until any of
//! these fds is ready". The workspace is dependency-free by design (no
//! `libc`, no `mio`), so this module issues the `ppoll` syscall
//! directly with `core::arch::asm!` — three dozen lines of `unsafe`
//! confined behind a safe slice-based wrapper, on the two Linux
//! architectures the workspace targets (x86_64, aarch64).
//!
//! `ppoll` rather than `epoll` deliberately: one syscall per loop
//! iteration with no kernel-side registration state to keep in sync,
//! O(fds) per wakeup. At the 10k-connection scale this serving layer
//! targets, scanning 10k pollfds costs microseconds — far below one
//! random-worlds answer — and the stateless API keeps the loop simple
//! enough to reason about connection lifecycles exactly.

use std::io;
use std::time::Duration;

/// Readable readiness (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (`POLLERR`; always polled, only returned).
pub const POLLERR: i16 = 0x008;
/// Peer hangup (`POLLHUP`; always polled, only returned).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (`POLLNVAL`; always polled, only returned).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the poll set — binary-compatible with the kernel's
/// `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch (from
    /// [`std::os::fd::AsRawFd::as_raw_fd`]).
    pub fd: i32,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]; error/hangup are
    /// implicit).
    pub events: i16,
    /// Returned events, filled by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// A poll entry asking for `events` on `fd`.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// True when any of `mask`'s bits came back in `revents`.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// True on error/hangup/invalid-fd — the connection is dead
    /// regardless of what was asked for.
    pub fn failed(&self) -> bool {
        self.ready(POLLERR | POLLNVAL)
    }
}

/// The kernel's `struct timespec` for the `ppoll` timeout.
#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

/// Raw `ppoll`: negative return values are `-errno`.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sys_ppoll(fds: *mut PollFd, nfds: usize, timeout: *const Timespec) -> isize {
    const SYS_PPOLL: usize = 271;
    let ret: isize;
    // SAFETY: `ppoll(fds, nfds, timeout, NULL, 0)` with `fds` pointing
    // at `nfds` valid `PollFd` entries (guaranteed by the safe wrapper,
    // which passes a `&mut [PollFd]`) and a null sigmask. The kernel
    // writes only `revents` within the slice. rcx/r11 are clobbered by
    // the `syscall` instruction itself.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_PPOLL as isize => ret,
            in("rdi") fds,
            in("rsi") nfds,
            in("rdx") timeout,
            in("r10") 0usize,
            in("r8") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// Raw `ppoll`: negative return values are `-errno`.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn sys_ppoll(fds: *mut PollFd, nfds: usize, timeout: *const Timespec) -> isize {
    const SYS_PPOLL: usize = 73;
    let ret: isize;
    // SAFETY: as in the x86_64 variant; aarch64 passes the syscall
    // number in x8 and arguments in x0..x4.
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") SYS_PPOLL,
            inlateout("x0") fds as isize => ret,
            in("x1") nfds,
            in("x2") timeout,
            in("x3") 0usize,
            in("x4") 0usize,
            options(nostack),
        );
    }
    ret
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
compile_error!(
    "rw-server's readiness loop needs the ppoll syscall; \
     only linux x86_64/aarch64 are wired up (add the syscall stanza for this target)"
);

/// Blocks until at least one entry of `fds` is ready, the `timeout`
/// elapses (`None` = wait forever), or a signal interrupts. Returns the
/// number of entries with nonzero `revents` (0 on timeout). `EINTR` is
/// retried internally; every other kernel error surfaces as
/// [`io::Error`].
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let ts = timeout.map(|d| Timespec {
        tv_sec: d.as_secs() as i64,
        tv_nsec: i64::from(d.subsec_nanos()),
    });
    loop {
        let ts_ptr = ts.as_ref().map_or(std::ptr::null(), |t| t as *const _);
        let ret = sys_ppoll(fds.as_mut_ptr(), fds.len(), ts_ptr);
        const EINTR: isize = 4;
        match ret {
            n if n >= 0 => return Ok(n as usize),
            n if -n == EINTR => continue,
            n => return Err(io::Error::from_raw_os_error(-n as i32)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn timeout_expires_with_no_ready_fds() {
        let (a, _b) = UnixStream::pair().expect("pair");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let start = std::time::Instant::now();
        let n = poll(&mut fds, Some(Duration::from_millis(30))).expect("poll");
        assert_eq!(n, 0);
        assert!(!fds[0].ready(POLLIN));
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn written_bytes_make_the_reader_readable() {
        let (a, mut b) = UnixStream::pair().expect("pair");
        b.write_all(b"x").expect("write");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_millis(1000))).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN));
        assert!(!fds[0].failed());
    }

    #[test]
    fn an_idle_socket_is_immediately_writable() {
        let (a, _b) = UnixStream::pair().expect("pair");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = poll(&mut fds, Some(Duration::from_millis(1000))).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLOUT));
    }

    #[test]
    fn peer_close_reports_hangup() {
        let (a, b) = UnixStream::pair().expect("pair");
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_millis(1000))).expect("poll");
        assert_eq!(n, 1);
        // Linux reports EOF on a stream socket as POLLIN|POLLHUP.
        assert!(fds[0].ready(POLLIN | POLLHUP));
    }

    #[test]
    fn a_bad_fd_comes_back_as_pollnval_not_an_error() {
        let mut fds = [PollFd::new(987_654, POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_millis(50))).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLNVAL));
        assert!(fds[0].failed());
    }
}
