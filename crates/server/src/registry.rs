//! The registry of named, loaded knowledge bases.
//!
//! A persistent server answers queries against KBs that were loaded
//! once and stay resident — the whole point of the serving layer is to
//! stop re-parsing and re-fingerprinting the KB on every invocation the
//! way one-shot `rwq query` does. Each [`LoadedKb`] carries its parsed
//! [`KnowledgeBase`], its canonical fingerprint (computed once at load),
//! and a pinned [`RandomWorlds`] engine wired to the server's shared
//! [`AnswerCache`]. Exact and approximate (Monte-Carlo) sessions can
//! coexist against the same statements: the engine-config fingerprint
//! inside every cache key keeps their keyspaces disjoint.

use crate::format;
use crate::proto::{ApproxParams, KbSource, ProtoError, ScanParams};
use rw_core::{AnswerCache, DenomCache, McConfig, RandomWorlds};
use rw_logic::KnowledgeBase;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// One resident knowledge base: statements, fingerprint, and the engine
/// that answers against it. Shared by reference between connection
/// handlers and queue workers.
#[derive(Debug)]
pub struct LoadedKb {
    /// The registry name.
    pub name: String,
    /// The parsed statements.
    pub kb: KnowledgeBase,
    /// [`rw_logic::canon::kb_fingerprint`], computed once at load.
    pub fingerprint: u64,
    /// The pinned engine (cache installed; Monte-Carlo stage when the
    /// load requested `approx`).
    pub engine: RandomWorlds,
    /// True when the engine answers non-theorem queries by sampling.
    pub approx: bool,
    /// The `.rwkb` source text the KB was parsed from, retained so a
    /// snapshot can re-create this exact KB (and re-verify its
    /// fingerprint) on reload. `None` only for KBs inserted pre-parsed
    /// without text — those cannot be snapshotted.
    pub source: Option<String>,
    /// The Monte-Carlo parameters the load requested, if any.
    pub approx_params: Option<ApproxParams>,
    /// The enumeration-scan settings the engine was pinned with.
    pub scan: ScanParams,
}

impl LoadedKb {
    /// Builds a resident KB around a shared cache. The engine pins its
    /// stage cascade once (the per-query default-rebuild is for
    /// configurable one-shot use); the sampler runs single-threaded —
    /// the server's worker pool is the parallelism, and worker count
    /// never changes sampled answers anyway.
    pub fn new(
        name: String,
        kb: KnowledgeBase,
        source: Option<String>,
        approx: Option<&ApproxParams>,
        scan: ScanParams,
        cache: Arc<AnswerCache>,
        denoms: Arc<DenomCache>,
    ) -> LoadedKb {
        let mut engine = RandomWorlds::new().with_denom_cache(denoms);
        if let Some(params) = approx {
            let defaults = McConfig::default();
            engine.approx = Some(McConfig {
                seed: params.seed.unwrap_or(defaults.seed),
                threads: 1,
                max_samples: params.samples.unwrap_or(defaults.max_samples),
                target_ci: params.ci.unwrap_or(defaults.target_ci),
                ..defaults
            });
        }
        // Scan knobs must land before the stage cascade is pinned — the
        // enumeration stage captures its configuration at build time.
        engine.enum_symmetry = scan.symmetry;
        engine.enum_min_n = scan.min_n;
        engine.enum_max_n = scan.max_n;
        let stages = engine.default_stages();
        let engine = engine.with_solvers(stages).with_cache(cache);
        let fingerprint = rw_logic::canon::kb_fingerprint(&kb);
        LoadedKb {
            name,
            approx: approx.is_some(),
            kb,
            fingerprint,
            engine,
            source,
            approx_params: approx.cloned(),
            scan,
        }
    }

    /// Answers one textual query as a serving JSON line plus a success
    /// flag — identical bytes to `rwq batch` on the same engine
    /// configuration (the golden-corpus contract).
    pub fn answer_json_line(&self, query: &str) -> (String, bool) {
        match self
            .engine
            .answer_fingerprinted(&self.kb, query, self.fingerprint)
        {
            Ok(response) => (crate::json::response_line(query, &response), true),
            Err(e) => (crate::json::error_line(query, &e.to_string()), false),
        }
    }

    /// The answer including the full [`rw_core::Response`] (for callers
    /// that aggregate traces).
    pub fn answer(&self, query: &str) -> Result<rw_core::Response, rw_core::EngineError> {
        self.engine
            .answer_fingerprinted(&self.kb, query, self.fingerprint)
    }

    /// One entry of the `list` response.
    pub fn describe_json(&self) -> String {
        format!(
            r#"{{"kb":"{}","fingerprint":"{:016x}","statements":{},"approx":{}}}"#,
            crate::json::escape(&self.name),
            self.fingerprint,
            self.kb.conjuncts().len(),
            self.approx
        )
    }
}

/// Named KBs behind an `RwLock`: queries (the hot path) take the read
/// lock for a single `Arc` clone; load/unload take the write lock.
pub struct KbRegistry {
    kbs: RwLock<HashMap<String, Arc<LoadedKb>>>,
    cache: Arc<AnswerCache>,
    /// Shared `#worlds` denominator cache: one count per
    /// `(KB, vocab, N, τ, budget, mode)` across every resident KB and
    /// reload — safe because entries are pure functions of their key.
    denoms: Arc<DenomCache>,
}

impl KbRegistry {
    /// An empty registry whose KBs will share `cache`.
    pub fn new(cache: Arc<AnswerCache>) -> KbRegistry {
        KbRegistry {
            kbs: RwLock::new(HashMap::new()),
            cache,
            denoms: Arc::new(DenomCache::new()),
        }
    }

    /// The shared answer cache.
    pub fn cache(&self) -> &Arc<AnswerCache> {
        &self.cache
    }

    /// The shared denominator cache (for `stats` reporting).
    pub fn denoms(&self) -> &Arc<DenomCache> {
        &self.denoms
    }

    /// Loads (or replaces) a named KB from a request source. Replacement
    /// is safe with a shared cache: keys embed the KB fingerprint, so a
    /// different KB under the same name can never be served the old
    /// entries.
    pub fn load(
        &self,
        name: &str,
        source: &KbSource,
        approx: Option<&ApproxParams>,
        scan: ScanParams,
    ) -> Result<Arc<LoadedKb>, ProtoError> {
        // Both sources resolve to text first so the loaded KB always
        // retains its `.rwkb` source — the snapshot layer re-parses and
        // re-fingerprints that text on restore.
        let structured = |e: format::LoadError| ProtoError {
            code: crate::proto::ErrorCode::LoadFailed,
            message: format!("cannot load KB `{name}`: {e}"),
        };
        let text = match source {
            KbSource::Path(p) => {
                std::fs::read_to_string(p).map_err(|e| structured(format::LoadError::from(e)))?
            }
            KbSource::Text(t) => t.clone(),
        };
        let kb = format::parse_kb(&text).map_err(structured)?;
        let loaded = Arc::new(LoadedKb::new(
            name.to_string(),
            kb,
            Some(text),
            approx,
            scan,
            Arc::clone(&self.cache),
            Arc::clone(&self.denoms),
        ));
        self.kbs
            .write()
            .expect("registry lock poisoned")
            .insert(name.to_string(), Arc::clone(&loaded));
        Ok(loaded)
    }

    /// Inserts an already-parsed KB (the `rwq serve <file>` preload path).
    pub fn insert(&self, name: &str, kb: KnowledgeBase) -> Arc<LoadedKb> {
        self.insert_scan(name, kb, ScanParams::default())
    }

    /// [`Self::insert`] with explicit enumeration-scan settings — the
    /// preload path for `rwq serve <file> --symmetry/--min-n/--max-n`.
    pub fn insert_scan(&self, name: &str, kb: KnowledgeBase, scan: ScanParams) -> Arc<LoadedKb> {
        self.insert_scan_source(name, kb, scan, None)
    }

    /// [`Self::insert_scan`] retaining the `.rwkb` source text, so the
    /// preloaded KB participates in snapshots like wire-loaded ones.
    pub fn insert_scan_source(
        &self,
        name: &str,
        kb: KnowledgeBase,
        scan: ScanParams,
        source: Option<String>,
    ) -> Arc<LoadedKb> {
        let loaded = Arc::new(LoadedKb::new(
            name.to_string(),
            kb,
            source,
            None,
            scan,
            Arc::clone(&self.cache),
            Arc::clone(&self.denoms),
        ));
        self.kbs
            .write()
            .expect("registry lock poisoned")
            .insert(name.to_string(), Arc::clone(&loaded));
        loaded
    }

    /// Every resident KB, sorted by name — the stable order snapshot
    /// files are written in.
    pub fn snapshot_entries(&self) -> Vec<Arc<LoadedKb>> {
        let kbs = self.kbs.read().expect("registry lock poisoned");
        let mut entries: Vec<Arc<LoadedKb>> = kbs.values().cloned().collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }

    /// Drops a named KB; `false` if it was not loaded. In-flight queries
    /// holding the `Arc` finish against the departing KB.
    pub fn unload(&self, name: &str) -> bool {
        self.kbs
            .write()
            .expect("registry lock poisoned")
            .remove(name)
            .is_some()
    }

    /// The resident KB under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<LoadedKb>> {
        self.kbs
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// How many KBs are resident.
    pub fn len(&self) -> usize {
        self.kbs.read().expect("registry lock poisoned").len()
    }

    /// True when no KB is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `list` response entries, sorted by name for a stable wire
    /// order.
    pub fn list_json(&self) -> String {
        let kbs = self.kbs.read().expect("registry lock poisoned");
        let mut entries: Vec<&Arc<LoadedKb>> = kbs.values().collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        let body: Vec<String> = entries.iter().map(|k| k.describe_json()).collect();
        format!(r#"{{"ok":true,"op":"list","kbs":[{}]}}"#, body.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::KbSource;

    fn registry() -> KbRegistry {
        KbRegistry::new(Arc::new(AnswerCache::new()))
    }

    #[test]
    fn load_query_unload_roundtrip() {
        let reg = registry();
        let src = KbSource::Text("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)".to_string());
        let loaded = reg.load("med", &src, None, ScanParams::default()).unwrap();
        assert_eq!(loaded.kb.conjuncts().len(), 2);
        assert!(!loaded.approx);
        let (line, ok) = reg.get("med").unwrap().answer_json_line("Hep(Eric)");
        assert!(ok, "{line}");
        assert!(line.contains(r#""value":0.8"#), "{line}");
        assert!(reg.unload("med"));
        assert!(!reg.unload("med"));
        assert!(reg.get("med").is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn loads_share_the_cache_across_kb_names() {
        let reg = registry();
        let src = KbSource::Text("P(C)".to_string());
        reg.load("a", &src, None, ScanParams::default()).unwrap();
        reg.load("b", &src, None, ScanParams::default()).unwrap();
        // Identical statements + identical engine config = one keyspace:
        // the second name's first query hits what the first computed.
        let (first, ok) = reg.get("a").unwrap().answer_json_line("P(C)");
        assert!(ok, "{first}");
        assert!(first.contains(r#""cache_hit":false"#), "{first}");
        let (second, ok) = reg.get("b").unwrap().answer_json_line("P(C)");
        assert!(ok, "{second}");
        assert!(second.contains(r#""cache_hit":true"#), "{second}");
        assert_eq!(reg.cache().hits(), 1);
    }

    #[test]
    fn approx_kbs_sample_and_keep_their_own_keyspace() {
        let reg = registry();
        let src =
            KbSource::Text("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); Jaun(Tom)".to_string());
        reg.load("exact", &src, None, ScanParams::default())
            .unwrap();
        let params = ApproxParams {
            seed: Some(42),
            ..ApproxParams::default()
        };
        let loaded = reg
            .load("mc", &src, Some(&params), ScanParams::default())
            .unwrap();
        assert!(loaded.approx);
        let (line, ok) = loaded.answer_json_line("Hep(Eric) & Hep(Tom)");
        assert!(ok, "{line}");
        assert!(line.contains(r#""type":"approximate""#), "{line}");
        // The exact KB must not see the sampled entry.
        let (exact_line, ok) = reg
            .get("exact")
            .unwrap()
            .answer_json_line("Hep(Eric) & Jaun(Eric)");
        assert!(ok, "{exact_line}");
        assert!(exact_line.contains(r#""cache_hit":false"#), "{exact_line}");
    }

    #[test]
    fn replacing_a_kb_changes_the_keyspace_not_the_entries() {
        let reg = registry();
        reg.load(
            "m",
            &KbSource::Text("P(C)".to_string()),
            None,
            ScanParams::default(),
        )
        .unwrap();
        let (line, _) = reg.get("m").unwrap().answer_json_line("P(C)");
        assert!(line.contains(r#""value":1"#), "{line}");
        // Replace with contradicting statements under the same name: the
        // fingerprint changes, so the old cached belief cannot leak.
        reg.load(
            "m",
            &KbSource::Text("!P(C)".to_string()),
            None,
            ScanParams::default(),
        )
        .unwrap();
        let (line, _) = reg.get("m").unwrap().answer_json_line("P(C)");
        assert!(line.contains(r#""value":0"#), "{line}");
        assert!(line.contains(r#""cache_hit":false"#), "{line}");
    }

    #[test]
    fn symmetry_loads_answer_with_orbit_counts_and_key_apart() {
        let reg = registry();
        let src = KbSource::Text("Likes(A, B)".to_string());
        reg.load("plain", &src, None, ScanParams::default())
            .unwrap();
        let scan = ScanParams {
            symmetry: true,
            min_n: None,
            max_n: Some(12),
        };
        reg.load("deep", &src, None, scan).unwrap();
        let (plain_line, ok) = reg.get("plain").unwrap().answer_json_line("Likes(B, A)");
        assert!(ok, "{plain_line}");
        assert!(!plain_line.contains(r#""orbits""#), "{plain_line}");
        let (deep_line, ok) = reg.get("deep").unwrap().answer_json_line("Likes(B, A)");
        assert!(ok, "{deep_line}");
        assert!(deep_line.contains(r#""orbits""#), "{deep_line}");
        assert!(deep_line.contains(r#""max_n":12"#), "{deep_line}");
        // Different scan configuration = different keyspace: the deep
        // answer was computed, not served from the plain KB's entry.
        assert!(deep_line.contains(r#""cache_hit":false"#), "{deep_line}");
        // The shared denominator cache filled on both paths.
        assert!(!reg.denoms().is_empty());
    }

    #[test]
    fn load_failures_are_structured() {
        let reg = registry();
        let err = reg
            .load(
                "bad",
                &KbSource::Text("||broken".to_string()),
                None,
                ScanParams::default(),
            )
            .unwrap_err();
        assert_eq!(err.code, crate::proto::ErrorCode::LoadFailed);
        assert!(err.message.contains("bad"), "{err}");
        let err = reg
            .load(
                "missing",
                &KbSource::Path("/nonexistent.rwkb".to_string()),
                None,
                ScanParams::default(),
            )
            .unwrap_err();
        assert_eq!(err.code, crate::proto::ErrorCode::LoadFailed);
        assert!(reg.is_empty());
    }

    #[test]
    fn list_is_sorted_and_machine_readable() {
        let reg = registry();
        reg.load(
            "zeta",
            &KbSource::Text("P(C)".to_string()),
            None,
            ScanParams::default(),
        )
        .unwrap();
        reg.load(
            "alpha",
            &KbSource::Text("Q(C); R(C)".to_string()),
            None,
            ScanParams::default(),
        )
        .unwrap();
        let line = reg.list_json();
        let alpha = line.find(r#""kb":"alpha""#).unwrap();
        let zeta = line.find(r#""kb":"zeta""#).unwrap();
        assert!(alpha < zeta, "{line}");
        assert!(line.contains(r#""statements":2"#), "{line}");
        assert!(
            line.starts_with(r#"{"ok":true,"op":"list","kbs":["#),
            "{line}"
        );
    }
}
