//! The persistent TCP serving loop — a single-threaded readiness event
//! loop in front of the worker pool.
//!
//! ```text
//!                 ┌──────────────────────────── rw-server ────────────────────────────┐
//!                 │              event loop (one thread, ppoll)                       │
//!  client A ─TCP─▶│ ┌─────────┐  read → frame → dispatch        ┌─────────────┐       │
//!  client B ─TCP─▶│ │ conns:  │ ───────────────┬─ control ops ──│ answered    │       │
//!  client C ─TCP─▶│ │ nonblk  │                └─ query/sleep ─▶│ bounded     │ worker│
//!     ⋮           │ │ sockets │                                 │ JobQueue    │─▶pool │
//!  client N ─TCP─▶│ │ + state │ ◀─ ordered slots ◀─ completions ◀─ (reject    │  +    │
//!                 │ └─────────┘    → write-back     + wake pipe    when full) │ engine│
//!                 └───────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Every connection is a nonblocking socket plus a small state machine
//! ([`crate::conn::Conn`]): read buffer → [`crate::conn::LineFramer`] →
//! per-request **response slot** → write buffer. One `ppoll` call
//! ([`crate::poll`]) multiplexes all of them, so concurrency is bounded
//! by fds (see [`ServerConfig::max_conns`]), not by threads — no
//! per-connection stack, no 200ms read-timeout polling.
//!
//! Requests **pipeline**: a client may stream many lines without
//! waiting, and each is dispatched as it is framed. Cheap control
//! requests (`load`/`unload`/`list`/`stats`/`metrics`/`ping`) are
//! answered inline on the loop thread — they stay responsive even when
//! every worker is busy and the queue is full. `query`/`sleep` work is
//! admitted to the **bounded** queue and picked up by the worker pool;
//! when the queue is full the request is *rejected immediately* with a
//! structured `overloaded` error — backpressure instead of unbounded
//! buffering. Completions return through a vector + self-wake pipe, and
//! the per-connection slot queue guarantees answers flush in request
//! order no matter how workers interleave.
//!
//! Overload and lifecycle behaviors, all on the loop thread:
//!
//! - **fd exhaustion** (`EMFILE`/`ENFILE` from `accept`): shed the
//!   oldest idle connection and retry, or — with none to shed — pause
//!   accepting with exponential backoff. Counted as `accept.errors`.
//! - **connection ceiling** ([`ServerConfig::max_conns`]): accepted and
//!   refused with one `overloaded` error line, so clients see a
//!   structured answer instead of hanging in the backlog.
//! - **idle timeout** ([`ServerConfig::idle_timeout_ms`]): connections
//!   with nothing pending in either direction are evicted (counted as
//!   `conns.idle_closed`).
//! - **graceful drain** (`shutdown` op or [`Server::stop`]): reading
//!   stops, in-flight requests complete and flush, new connections are
//!   refused with `shutting-down`, and the loop exits when every
//!   connection has drained (hard deadline: 10s).
//!
//! Everything is std-only: `std::net` sockets, a direct-syscall `ppoll`
//! ([`crate::poll`]), `std::thread::scope` workers, `Mutex`/`Condvar`
//! queue.

use crate::conn::{Conn, Frame};
use crate::poll::{self, PollFd, POLLHUP, POLLIN, POLLOUT};
use crate::proto::{self, ErrorCode, ProtoError, Request};
use crate::queue::{JobQueue, PushError};
use crate::registry::{KbRegistry, LoadedKb};
use rw_core::{AnswerCache, StageTotals};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a [`Server`] is built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
    /// Shards of the shared [`AnswerCache`].
    pub cache_shards: usize,
    /// Admission-queue capacity: queries beyond this many pending are
    /// rejected with an `overloaded` error.
    pub max_queue: usize,
    /// Open-connection ceiling: connections beyond this are accepted
    /// and refused with one `overloaded` error line.
    pub max_conns: usize,
    /// Evict connections idle (nothing pending in either direction) for
    /// this long, in milliseconds; `0` disables eviction.
    pub idle_timeout_ms: u64,
    /// Honor the `sleep` test op (never set in production; lets tests
    /// occupy workers deterministically to exercise backpressure).
    pub test_ops: bool,
    /// Structured JSONL slow-query log: any request at or over
    /// [`ServerConfig::slow_ms`] appends one line with the query, the KB
    /// fingerprint and the full span tree. `None` disables it.
    pub slow_log: Option<PathBuf>,
    /// Slow-query threshold in milliseconds (`0` logs every request).
    pub slow_ms: u64,
    /// Per-request JSONL access log (`None` disables it). Cheap enough
    /// to leave on: one line per answered query.
    pub access_log: Option<PathBuf>,
    /// Durability directory: the KB registry and cache contents are
    /// checkpointed here (see [`crate::snapshot`]) periodically and on
    /// drain, and reloaded warm on startup. `None` disables snapshots.
    pub snapshot_dir: Option<PathBuf>,
    /// Milliseconds between periodic cache checkpoints while serving
    /// (only meaningful with [`ServerConfig::snapshot_dir`]).
    pub snapshot_interval_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            cache_shards: 16,
            max_queue: 1024,
            max_conns: 10_000,
            idle_timeout_ms: 0,
            test_ops: false,
            slow_log: None,
            slow_ms: 100,
            access_log: None,
            snapshot_dir: None,
            snapshot_interval_ms: 5000,
        }
    }
}

/// Per-connection request-line cap. A line beyond this is answered with
/// one `bad-request` error and skipped (the connection resynchronizes
/// at the next newline); with the fixed-size chunk reads this bounds a
/// connection's buffering no matter what the client streams. Inline
/// `load` texts for realistic KBs are kilobytes, so 4 MiB is generous.
pub const MAX_LINE: usize = 4 << 20;

/// Hard ceiling on a graceful drain: connections that have not
/// delivered everything they owe within this window are force-closed so
/// [`Server::run`] always returns.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Largest accept burst per loop iteration — bounds time spent away
/// from established connections when a connect storm hits.
const ACCEPT_BURST: usize = 256;

/// Read chunks consumed per connection per iteration (fairness: one
/// fast writer may not monopolize the loop).
const READS_PER_TICK: usize = 16;

/// Lifetime counters the `stats` op reports.
#[derive(Default)]
struct Totals {
    answered: u64,
    failed: u64,
    stages: Vec<StageTotals>,
}

enum Work {
    Query { kb: Arc<LoadedKb>, query: String },
    Sleep { ms: u64 },
}

struct Job {
    work: Work,
    /// The connection whose response slot `seq` this job answers.
    conn: u64,
    /// The reserved slot in that connection's ordered response queue.
    seq: u64,
    /// When the job was admitted — the worker reports the pop-side delta
    /// as queue wait and backdates the request span to it.
    enqueued: Instant,
    /// Process-unique id tying this request's span tree, access-log line
    /// and slow-log line together.
    trace_id: u64,
}

/// A finished job on its way back from a worker to the event loop.
struct Completion {
    conn: u64,
    seq: u64,
    line: String,
}

/// How the event loop should deliver a request's answer.
enum Handled {
    /// Answered on the loop thread: fill the slot now.
    Inline {
        line: String,
        /// The request asked the server to shut down; close this
        /// connection once the acknowledgment flushes.
        shutdown: bool,
    },
    /// Admitted to the worker queue; the slot fills on completion.
    Queued,
}

impl Handled {
    fn inline(line: String) -> Handled {
        Handled::Inline {
            line,
            shutdown: false,
        }
    }
}

/// A bound, resident serving process: KB registry, shared cache, worker
/// pool and admission queue. [`Server::run`] blocks until a `shutdown`
/// request (or [`Server::stop`]) arrives and the graceful drain
/// finishes.
pub struct Server {
    listener: TcpListener,
    registry: KbRegistry,
    queue: JobQueue<Job>,
    /// One slot per worker (the `batch.rs` per-worker-shard pattern):
    /// the hot path locks only its own uncontended slot; `stats` merges
    /// them on demand.
    totals: Vec<Mutex<Totals>>,
    /// Worker → event-loop handoff: finished jobs land here and a byte
    /// on the wake pipe interrupts the loop's `ppoll`.
    completions: Mutex<Vec<Completion>>,
    /// Write end of the wake pipe, present while [`Server::run`] lives.
    wake: Mutex<Option<UnixStream>>,
    rejected: AtomicU64,
    accept_errors: AtomicU64,
    /// Open connections, mirrored by the event loop for `metrics`.
    conns_open: AtomicU64,
    stop: AtomicBool,
    /// Why the drain began: 0 = not draining, 1 = `shutdown` op /
    /// [`Server::stop`], 2 = SIGTERM, 3 = SIGINT. First writer wins.
    drain_reason: std::sync::atomic::AtomicU8,
    started: Instant,
    threads: usize,
    max_conns: usize,
    idle_timeout_ms: u64,
    test_ops: bool,
    slow_log: Option<Mutex<std::fs::File>>,
    slow_ms: u64,
    access_log: Option<Mutex<std::fs::File>>,
    snapshot_dir: Option<PathBuf>,
    snapshot_interval_ms: u64,
}

impl Server {
    /// Binds the listener and builds the serving state; no thread runs
    /// until [`Server::run`].
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let threads = match config.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        let open = |path: &PathBuf| {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
        };
        let slow_log = config
            .slow_log
            .as_ref()
            .map(open)
            .transpose()?
            .map(Mutex::new);
        let access_log = config
            .access_log
            .as_ref()
            .map(open)
            .transpose()?
            .map(Mutex::new);
        Ok(Server {
            listener,
            registry: KbRegistry::new(Arc::new(AnswerCache::with_shards(config.cache_shards))),
            queue: JobQueue::new(config.max_queue),
            totals: (0..threads)
                .map(|_| Mutex::new(Totals::default()))
                .collect(),
            completions: Mutex::new(Vec::new()),
            wake: Mutex::new(None),
            rejected: AtomicU64::new(0),
            accept_errors: AtomicU64::new(0),
            conns_open: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            drain_reason: std::sync::atomic::AtomicU8::new(0),
            started: Instant::now(),
            threads,
            max_conns: config.max_conns.max(1),
            idle_timeout_ms: config.idle_timeout_ms,
            test_ops: config.test_ops,
            slow_log,
            slow_ms: config.slow_ms,
            access_log,
            snapshot_dir: config.snapshot_dir,
            snapshot_interval_ms: config.snapshot_interval_ms.max(100),
        })
    }

    /// The bound address (the actual port when the config asked for 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The KB registry (for preloading before [`Server::run`]).
    pub fn registry(&self) -> &KbRegistry {
        &self.registry
    }

    /// Worker threads the pool will run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The admission-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// The open-connection ceiling.
    pub fn max_conns(&self) -> usize {
        self.max_conns
    }

    /// The idle-eviction timeout in milliseconds (0 = never evict).
    pub fn idle_timeout_ms(&self) -> u64 {
        self.idle_timeout_ms
    }

    /// Requests shutdown: the event loop drains gracefully (in-flight
    /// requests complete, new accepts are refused) and [`Server::run`]
    /// returns.
    pub fn stop(&self) {
        self.begin_stop(1);
    }

    /// Starts the drain, recording why (first reason wins).
    fn begin_stop(&self, reason: u8) {
        let _ = self
            .drain_reason
            .compare_exchange(0, reason, Ordering::SeqCst, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        self.wake_loop();
    }

    /// Why the server is draining (or drained), when it is:
    /// `"shutdown"` (the wire op or [`Server::stop`]), `"SIGTERM"`, or
    /// `"SIGINT"`.
    pub fn drain_reason(&self) -> Option<&'static str> {
        match self.drain_reason.load(Ordering::SeqCst) {
            1 => Some("shutdown"),
            2 => Some("SIGTERM"),
            3 => Some("SIGINT"),
            _ => None,
        }
    }

    /// Restores a snapshot from the configured directory, if any. Call
    /// before [`Server::run`] (and before preloading KBs, so an explicit
    /// preload wins over a snapshotted KB of the same name). `None`
    /// means snapshots are disabled or none exists yet; a structured
    /// error means the snapshot was rejected and the server starts cold.
    pub fn load_snapshot(
        &self,
    ) -> Option<Result<crate::snapshot::SnapshotStats, crate::snapshot::SnapshotError>> {
        let dir = self.snapshot_dir.as_ref()?;
        match crate::snapshot::load(dir, &self.registry) {
            Ok(None) => None,
            Ok(Some(stats)) => Some(Ok(stats)),
            Err(e) => Some(Err(e)),
        }
    }

    /// One checkpoint of the registry + caches, counting the outcome.
    /// Save failures are reported to metrics, never fatal: durability
    /// must not take down serving.
    fn save_snapshot(&self) {
        let Some(dir) = &self.snapshot_dir else {
            return;
        };
        if let Err(e) = crate::snapshot::save(dir, &self.registry) {
            Self::count("snapshot.save_errors");
            // Surfacing once per failure on stderr keeps the operator
            // informed without touching the stdout JSONL contract.
            eprintln!(
                "{}",
                crate::json::fatal_line(&format!("snapshot save failed: {e}"))
            );
        }
    }

    /// Writes one byte into the wake pipe so a blocked `ppoll` returns
    /// now. Best-effort: a full pipe already guarantees a wakeup, and a
    /// missing pipe means no loop is running.
    fn wake_loop(&self) {
        if let Some(stream) = self.wake.lock().expect("wake lock poisoned").as_ref() {
            let mut writer = stream;
            let _ = writer.write(&[1]);
        }
    }

    /// Serves until shutdown, then drains. Workers and the event loop
    /// all live in one scope, so returning means everything is joined.
    pub fn run(&self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        *self.wake.lock().expect("wake lock poisoned") = Some(wake_tx);
        let result = std::thread::scope(|scope| {
            for worker in 0..self.threads {
                scope.spawn(move || self.worker_loop(worker));
            }
            let result = self.event_loop(&wake_rx);
            // Workers drain everything already admitted, then exit.
            self.queue.close();
            result
        });
        *self.wake.lock().expect("wake lock poisoned") = None;
        // Final checkpoint after the scope: workers are joined, so every
        // admitted query's cache entry is captured.
        self.save_snapshot();
        result
    }

    /// The readiness loop: one `ppoll` over the wake pipe, the listener
    /// and every connection, then one pass of completions → accepts →
    /// per-connection IO. Runs until a graceful drain empties the
    /// connection table (or the drain deadline forces it).
    fn event_loop(&self, wake_rx: &UnixStream) -> std::io::Result<()> {
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_id: u64 = 0;
        // fd-exhaustion backoff: accepting pauses until the deadline,
        // doubling on repeat up to one second.
        let mut accept_pause: Option<Instant> = None;
        let mut backoff = Duration::from_millis(10);
        let mut drain_deadline: Option<Instant> = None;
        let idle_timeout =
            (self.idle_timeout_ms > 0).then(|| Duration::from_millis(self.idle_timeout_ms));
        let mut fds: Vec<PollFd> = Vec::new();
        let mut ids: Vec<u64> = Vec::new();
        let mut chunk = [0u8; 8192];
        let mut frames: Vec<Frame> = Vec::new();
        let mut last_snapshot = Instant::now();
        let snapshot_interval = Duration::from_millis(self.snapshot_interval_ms);

        loop {
            // ---- lifecycle: signals, drain, closes, idle eviction ----
            if let Some(signo) = crate::signal::take() {
                // A supervisor's SIGTERM (or an operator's Ctrl-C) is a
                // drain request, not a death sentence: same graceful
                // path as the `shutdown` op.
                let reason = if signo == crate::signal::SIGINT { 3 } else { 2 };
                self.begin_stop(reason);
            }
            if self.stop.load(Ordering::SeqCst) && drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + DRAIN_DEADLINE);
                Self::count("conns.drain");
                match self.drain_reason() {
                    Some("SIGTERM") | Some("SIGINT") => Self::count("conns.drain.signal"),
                    _ => Self::count("conns.drain.shutdown"),
                }
                // Stop reading everywhere; finish what each connection
                // is owed, then close it.
                for conn in conns.values_mut() {
                    conn.closing = true;
                }
            }
            if self.snapshot_dir.is_some() && last_snapshot.elapsed() >= snapshot_interval {
                self.save_snapshot();
                last_snapshot = Instant::now();
            }
            conns.retain(|_, c| !(c.closing && c.drained()));
            if let Some(deadline) = drain_deadline {
                if conns.is_empty() || Instant::now() >= deadline {
                    break;
                }
            }
            if let Some(timeout) = idle_timeout {
                let now = Instant::now();
                let evicted: Vec<u64> = conns
                    .iter()
                    .filter(|(_, c)| {
                        c.is_idle() && !c.closing && now.duration_since(c.last_activity) >= timeout
                    })
                    .map(|(&id, _)| id)
                    .collect();
                for id in evicted {
                    conns.remove(&id);
                    Self::count("conns.idle_closed");
                }
            }
            self.conns_open.store(conns.len() as u64, Ordering::Relaxed);
            if rw_obs::enabled() {
                rw_obs::registry()
                    .gauge("conns.open")
                    .set(conns.len() as u64);
            }

            // ---- build the poll set ----
            fds.clear();
            ids.clear();
            fds.push(PollFd::new(wake_rx.as_raw_fd(), POLLIN));
            if accept_pause.is_some_and(|until| Instant::now() >= until) {
                accept_pause = None;
            }
            // The listener stays polled during drain: connects are
            // answered with a structured refusal instead of hanging in
            // the backlog until the listener drops.
            let listener_idx = if accept_pause.is_none() {
                fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
                Some(fds.len() - 1)
            } else {
                None
            };
            let conn_base = fds.len();
            for (&id, conn) in &conns {
                let mut events = 0i16;
                if !conn.closing && !conn.read_paused() {
                    events |= POLLIN;
                }
                if conn.wants_write() {
                    events |= POLLOUT;
                }
                // events == 0 still reports POLLERR/POLLHUP, which is
                // exactly what a quiesced connection needs watched.
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                ids.push(id);
            }
            // The wake pipe handles every urgent wakeup (completions,
            // stop); the timeout only bounds deadline latency.
            let timeout = if drain_deadline.is_some() || accept_pause.is_some() {
                Duration::from_millis(10)
            } else if let Some(t) = idle_timeout {
                t.clamp(Duration::from_millis(10), Duration::from_millis(250))
            } else {
                Duration::from_millis(500)
            };
            poll::poll(&mut fds, Some(timeout))?;

            // ---- drain the wake pipe, apply completions ----
            if fds[0].ready(POLLIN) {
                let mut wake = wake_rx;
                while matches!(wake.read(&mut chunk), Ok(n) if n > 0) {}
            }
            let done =
                std::mem::take(&mut *self.completions.lock().expect("completions lock poisoned"));
            for completion in done {
                let Some(conn) = conns.get_mut(&completion.conn) else {
                    // The connection died while its query ran; the
                    // answer is simply dropped.
                    continue;
                };
                conn.inflight = conn.inflight.saturating_sub(1);
                conn.fill_slot(completion.seq, completion.line);
                conn.last_activity = Instant::now();
                if conn.flush().is_err() {
                    conns.remove(&completion.conn);
                }
            }

            // ---- accept ----
            if listener_idx.is_some_and(|i| fds[i].ready(POLLIN)) {
                for _ in 0..ACCEPT_BURST {
                    match self.listener.accept() {
                        Ok((stream, _peer)) => {
                            backoff = Duration::from_millis(10);
                            let _ = stream.set_nodelay(true);
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            if drain_deadline.is_some() {
                                Self::refuse(
                                    stream,
                                    ProtoError {
                                        code: ErrorCode::ShuttingDown,
                                        message: "server is shutting down".to_string(),
                                    },
                                );
                                continue;
                            }
                            if conns.len() >= self.max_conns {
                                Self::refuse(
                                    stream,
                                    ProtoError {
                                        code: ErrorCode::Overloaded,
                                        message: format!(
                                            "connection limit reached ({} open); retry later",
                                            self.max_conns
                                        ),
                                    },
                                );
                                Self::count("conns.refused");
                                continue;
                            }
                            let id = next_id;
                            next_id += 1;
                            conns.insert(id, Conn::new(stream, MAX_LINE));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) => {
                            self.accept_errors.fetch_add(1, Ordering::Relaxed);
                            Self::count("accept.errors");
                            const EMFILE: i32 = 24;
                            const ENFILE: i32 = 23;
                            if matches!(e.raw_os_error(), Some(EMFILE) | Some(ENFILE)) {
                                // fd exhaustion: shed the oldest idle
                                // connection and retry the accept; with
                                // nothing to shed, pause accepting with
                                // exponential backoff (established
                                // connections keep full service).
                                let oldest = conns
                                    .iter()
                                    .filter(|(_, c)| c.is_idle() && !c.closing)
                                    .min_by_key(|(_, c)| c.last_activity)
                                    .map(|(&id, _)| id);
                                match oldest {
                                    Some(id) => {
                                        conns.remove(&id);
                                        Self::count("conns.idle_closed");
                                        continue;
                                    }
                                    None => {
                                        accept_pause = Some(Instant::now() + backoff);
                                        backoff = (backoff * 2).min(Duration::from_secs(1));
                                        break;
                                    }
                                }
                            }
                            // Transient (ECONNABORTED & co): the failed
                            // accept consumed the pending connection;
                            // return to poll rather than spin here.
                            break;
                        }
                    }
                }
            }

            // ---- per-connection IO ----
            for (slot, &id) in fds[conn_base..].iter().zip(ids.iter()) {
                let Some(conn) = conns.get_mut(&id) else {
                    continue; // shed or closed earlier this iteration
                };
                if slot.failed() {
                    conns.remove(&id);
                    continue;
                }
                if slot.ready(POLLOUT) && conn.flush().is_err() {
                    conns.remove(&id);
                    continue;
                }
                if conn.closing || !slot.ready(POLLIN | POLLHUP) {
                    continue;
                }
                frames.clear();
                let mut eof = false;
                let mut gone = false;
                for _ in 0..READS_PER_TICK {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(n) => {
                            conn.last_activity = Instant::now();
                            conn.framer.push(&chunk[..n], &mut frames);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            gone = true;
                            break;
                        }
                    }
                }
                if gone {
                    conns.remove(&id);
                    continue;
                }
                if eof {
                    // Half-close: a final line without a trailing
                    // newline still deserves its answer; everything
                    // owed flushes before the connection closes.
                    if let Some(line) = conn.framer.finish() {
                        frames.push(Frame::Line(line));
                    }
                    conn.closing = true;
                }
                let mut acked_shutdown = false;
                for frame in frames.drain(..) {
                    let seq = conn.alloc_slot();
                    match frame {
                        Frame::Oversized => {
                            let error = ProtoError::bad_request(format!(
                                "request line exceeds {MAX_LINE} bytes"
                            ));
                            conn.fill_slot(seq, error.line());
                        }
                        Frame::Line(line) => match self.handle_line(&line, id, seq) {
                            Handled::Inline { line, shutdown } => {
                                conn.fill_slot(seq, line);
                                acked_shutdown |= shutdown;
                            }
                            Handled::Queued => conn.inflight += 1,
                        },
                    }
                }
                if acked_shutdown {
                    conn.closing = true;
                }
                if conn.flush().is_err() {
                    conns.remove(&id);
                }
            }
        }
        self.conns_open.store(0, Ordering::Relaxed);
        if rw_obs::enabled() {
            rw_obs::registry().gauge("conns.open").set(0);
        }
        Ok(())
    }

    /// Best-effort one-line rejection for a connection the loop will not
    /// admit (ceiling reached or draining); the socket is dropped after.
    fn refuse(mut stream: TcpStream, error: ProtoError) {
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
        let _ = stream.write_all(format!("{}\n", error.line()).as_bytes());
    }

    /// Increments a registry counter when observability is recording.
    fn count(name: &str) {
        if rw_obs::enabled() {
            rw_obs::registry().counter(name).inc();
        }
    }

    fn worker_loop(&self, worker: usize) {
        while let Some(job) = self.queue.pop() {
            let line = match &job.work {
                Work::Query { kb, query } => {
                    let queue_wait = job.enqueued.elapsed();
                    if rw_obs::enabled() {
                        rw_obs::registry()
                            .histogram("queue.wait_us")
                            .record_us(queue_wait.as_micros() as u64);
                    }
                    // The span tree: request ⊃ {queue-wait, answer ⊃ stage:*}.
                    // The request span is backdated to admission time, so the
                    // queue-wait child always nests inside it; stage spans
                    // come from the response trace after the answer span has
                    // closed.
                    let recorder = rw_obs::SpanRecorder::new(job.trace_id);
                    let started = Instant::now();
                    let (result, answer_id) = {
                        let request = recorder.span_started_at("request", job.enqueued);
                        recorder.add(
                            Some(request.id()),
                            "queue-wait",
                            queue_wait.as_micros() as u64,
                            0,
                        );
                        let answer = recorder.span("answer");
                        let answer_id = answer.id();
                        (kb.answer(query), answer_id)
                    };
                    if let Ok(response) = &result {
                        for step in response.trace.steps() {
                            recorder.add(
                                Some(answer_id),
                                &format!("stage:{}", step.stage),
                                step.elapsed.as_micros() as u64,
                                0,
                            );
                        }
                    }
                    let elapsed = started.elapsed();
                    {
                        let mut totals = self.totals[worker].lock().expect("totals lock poisoned");
                        StageTotals::absorb_result(&mut totals.stages, &result);
                        match &result {
                            Ok(_) => totals.answered += 1,
                            Err(_) => totals.failed += 1,
                        }
                    }
                    self.log_request(kb, query, &result, queue_wait, elapsed, recorder);
                    crate::json::result_line(query, &result)
                }
                Work::Sleep { ms } => {
                    // Test-only: occupy this worker slot for a bounded time.
                    std::thread::sleep(Duration::from_millis((*ms).min(10_000)));
                    r#"{"ok":true,"op":"sleep"}"#.to_string()
                }
            };
            self.complete(job.conn, job.seq, line);
        }
    }

    /// Hands a finished job back to the event loop and wakes it.
    fn complete(&self, conn: u64, seq: u64, line: String) {
        self.completions
            .lock()
            .expect("completions lock poisoned")
            .push(Completion { conn, seq, line });
        self.wake_loop();
    }

    /// Answers one request line: control ops inline, `query`/`sleep`
    /// through the admission queue into slot `seq` of connection `conn`.
    fn handle_line(&self, line: &str, conn: u64, seq: u64) -> Handled {
        let request = match proto::parse_request(line) {
            Ok(r) => r,
            Err(e) => return Handled::inline(e.line()),
        };
        match request {
            Request::Ping => Handled::inline(r#"{"ok":true,"op":"ping"}"#.to_string()),
            Request::List => Handled::inline(self.registry.list_json()),
            Request::Stats => Handled::inline(self.stats_json()),
            Request::Metrics => Handled::inline(self.metrics_json()),
            Request::Shutdown => {
                self.stop();
                Handled::Inline {
                    line: r#"{"ok":true,"op":"shutdown"}"#.to_string(),
                    shutdown: true,
                }
            }
            Request::Unload { kb } => {
                if self.registry.unload(&kb) {
                    Handled::inline(format!(
                        r#"{{"ok":true,"op":"unload","kb":"{}"}}"#,
                        crate::json::escape(&kb)
                    ))
                } else {
                    Handled::inline(Self::unknown_kb(&kb).line())
                }
            }
            Request::Load {
                kb,
                source,
                approx,
                scan,
            } => match self.registry.load(&kb, &source, approx.as_ref(), scan) {
                Ok(loaded) => Handled::inline(format!(
                    r#"{{"ok":true,"op":"load","kb":"{}","fingerprint":"{:016x}","statements":{},"approx":{}}}"#,
                    crate::json::escape(&kb),
                    loaded.fingerprint,
                    loaded.kb.conjuncts().len(),
                    loaded.approx
                )),
                Err(e) => Handled::inline(e.line()),
            },
            Request::Query { kb, query } => {
                let Some(loaded) = self.registry.get(&kb) else {
                    return Handled::inline(Self::unknown_kb(&kb).line());
                };
                self.admit(Work::Query { kb: loaded, query }, conn, seq)
            }
            Request::Sleep { ms } => {
                if !self.test_ops {
                    return Handled::inline(
                        ProtoError::bad_request("`sleep` is a test-only op").line(),
                    );
                }
                self.admit(Work::Sleep { ms }, conn, seq)
            }
        }
    }

    /// Admits work to the queue; a full queue is answered immediately
    /// with `overloaded` — the event loop never blocks on admission.
    fn admit(&self, work: Work, conn: u64, seq: u64) -> Handled {
        let job = Job {
            work,
            conn,
            seq,
            enqueued: Instant::now(),
            trace_id: rw_obs::next_trace_id(),
        };
        match self.queue.push(job) {
            Ok(()) => Handled::Queued,
            Err(PushError::Full) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                if rw_obs::enabled() {
                    rw_obs::registry().counter("queue.rejected").inc();
                }
                Handled::inline(
                    ProtoError {
                        code: ErrorCode::Overloaded,
                        message: format!(
                            "admission queue full ({} pending); retry later",
                            self.queue.capacity()
                        ),
                    }
                    .line(),
                )
            }
            Err(PushError::Closed) => Handled::inline(
                ProtoError {
                    code: ErrorCode::ShuttingDown,
                    message: "server is shutting down".to_string(),
                }
                .line(),
            ),
        }
    }

    /// Writes the per-request access-log line and — at or over the slow
    /// threshold — the slow-query line with the full span tree. Logging
    /// happens after the response line is already determined, so it can
    /// never change answer bytes.
    fn log_request(
        &self,
        kb: &LoadedKb,
        query: &str,
        result: &Result<rw_core::Response, rw_core::EngineError>,
        queue_wait: Duration,
        elapsed: Duration,
        recorder: rw_obs::SpanRecorder,
    ) {
        if self.access_log.is_none() && self.slow_log.is_none() {
            return;
        }
        let trace_id = recorder.trace_id();
        let ok = result.is_ok();
        let cache_hit = matches!(result, Ok(r) if r.cached);
        if let Some(file) = &self.access_log {
            let line = format!(
                r#"{{"ts_us":{},"trace_id":{},"kb":"{}","query":"{}","ok":{},"cache_hit":{},"queue_wait_us":{},"elapsed_us":{}}}"#,
                Self::unix_micros(),
                trace_id,
                crate::json::escape(&kb.name),
                crate::json::escape(query),
                ok,
                cache_hit,
                queue_wait.as_micros(),
                elapsed.as_micros(),
            );
            Self::append(file, &line);
        }
        if let Some(file) = &self.slow_log {
            if elapsed >= Duration::from_millis(self.slow_ms) {
                let spans = recorder.finish();
                let line = format!(
                    r#"{{"ts_us":{},"trace_id":{},"kb":"{}","fingerprint":"{:016x}","query":"{}","ok":{},"elapsed_us":{},"spans":{}}}"#,
                    Self::unix_micros(),
                    trace_id,
                    crate::json::escape(&kb.name),
                    kb.fingerprint,
                    crate::json::escape(query),
                    ok,
                    elapsed.as_micros(),
                    rw_obs::spans_json(&spans),
                );
                Self::append(file, &line);
            }
        }
    }

    /// One appended JSONL line; a failed write is dropped silently (the
    /// serving path must never fail because a log disk filled up).
    fn append(file: &Mutex<std::fs::File>, line: &str) {
        let mut file = file.lock().expect("log file lock poisoned");
        let _ = writeln!(file, "{line}");
    }

    /// Wall-clock microseconds since the Unix epoch (log timestamps).
    fn unix_micros() -> u128 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros())
            .unwrap_or(0)
    }

    /// The `metrics` op: the full observability-registry snapshot, with
    /// the admission-queue depth and open-connection gauges refreshed at
    /// snapshot time.
    fn metrics_json(&self) -> String {
        let registry = rw_obs::registry();
        registry.gauge("queue.depth").set(self.queue.depth() as u64);
        registry
            .gauge("conns.open")
            .set(self.conns_open.load(Ordering::Relaxed));
        format!(
            r#"{{"ok":true,"op":"metrics","uptime_us":{},"metrics":{}}}"#,
            self.started.elapsed().as_micros(),
            registry.snapshot().to_json(),
        )
    }

    fn unknown_kb(name: &str) -> ProtoError {
        ProtoError {
            code: ErrorCode::UnknownKb,
            message: format!("no KB named `{name}` is loaded (use the `load` op)"),
        }
    }

    fn stats_json(&self) -> String {
        let cache = self.registry.cache();
        // Merge the per-worker shards (cold path: only `stats` pays).
        let mut merged = Totals::default();
        for slot in &self.totals {
            let totals = slot.lock().expect("totals lock poisoned");
            merged.answered += totals.answered;
            merged.failed += totals.failed;
            for st in &totals.stages {
                match merged.stages.iter_mut().find(|t| t.stage == st.stage) {
                    Some(t) => {
                        t.answered += st.answered;
                        t.declined += st.declined;
                        t.budget_exhausted += st.budget_exhausted;
                        t.elapsed += st.elapsed;
                    }
                    None => merged.stages.push(st.clone()),
                }
            }
        }
        let denoms = self.registry.denoms();
        format!(
            r#"{{"ok":true,"op":"stats","uptime_us":{},"kbs":{},"queries":{{"answered":{},"failed":{},"rejected":{}}},"cache":{{"hits":{},"misses":{},"entries":{},"shards":{}}},"denoms":{{"hits":{},"misses":{},"entries":{}}},"queue":{{"depth":{},"capacity":{},"workers":{}}},"stages":[{}]}}"#,
            self.started.elapsed().as_micros(),
            self.registry.len(),
            merged.answered,
            merged.failed,
            self.rejected.load(Ordering::Relaxed),
            cache.hits(),
            cache.misses(),
            cache.len(),
            cache.shard_count(),
            denoms.hits(),
            denoms.misses(),
            denoms.len(),
            self.queue.depth(),
            self.queue.capacity(),
            self.threads,
            crate::json::stage_totals_json(&merged.stages),
        )
    }
}
