//! The persistent TCP serving loop.
//!
//! ```text
//!                    ┌────────────────────────── rw-server ──────────────────────────┐
//!  client A ──TCP──▶ │ conn handler A ─┐                                             │
//!  client B ──TCP──▶ │ conn handler B ─┼─▶ bounded JobQueue ─▶ worker pool ─▶ engine  │
//!  client C ──TCP──▶ │ conn handler C ─┘      (reject when      (scoped      + shared │
//!                    │        ▲                 full:            threads)     cache   │
//!                    │        └─── one reply channel per job ◀──────┘                 │
//!                    └───────────────────────────────────────────────────────────────┘
//! ```
//!
//! Each accepted connection gets a handler thread that reads JSONL
//! requests in order and writes exactly one response line per request —
//! per-connection lock-step, so a client's answers can never interleave
//! or reorder. Control requests (`load`/`unload`/`list`/`stats`/`ping`)
//! are cheap and answered inline; `query` work is admitted to a
//! **bounded** queue and picked up by the worker pool. When the queue is
//! full the request is *rejected immediately* with a structured
//! `overloaded` error — backpressure instead of unbounded buffering.
//!
//! Everything is std-only: `std::net` sockets, `std::thread::scope`
//! workers (the `batch.rs` pattern, with a queue instead of an atomic
//! index because work arrives over time), `Mutex`/`Condvar` queue.

use crate::proto::{self, ErrorCode, ProtoError, Request};
use crate::queue::{JobQueue, PushError};
use crate::registry::{KbRegistry, LoadedKb};
use rw_core::{AnswerCache, StageTotals};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How a [`Server`] is built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
    /// Shards of the shared [`AnswerCache`].
    pub cache_shards: usize,
    /// Admission-queue capacity: queries beyond this many pending are
    /// rejected with an `overloaded` error.
    pub max_queue: usize,
    /// Honor the `sleep` test op (never set in production; lets tests
    /// occupy workers deterministically to exercise backpressure).
    pub test_ops: bool,
    /// Structured JSONL slow-query log: any request at or over
    /// [`ServerConfig::slow_ms`] appends one line with the query, the KB
    /// fingerprint and the full span tree. `None` disables it.
    pub slow_log: Option<PathBuf>,
    /// Slow-query threshold in milliseconds (`0` logs every request).
    pub slow_ms: u64,
    /// Per-request JSONL access log (`None` disables it). Cheap enough
    /// to leave on: one line per answered query.
    pub access_log: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            cache_shards: 16,
            max_queue: 1024,
            test_ops: false,
            slow_log: None,
            slow_ms: 100,
            access_log: None,
        }
    }
}

/// Per-connection request-line cap. A line beyond this is answered with
/// one `bad-request` error and skipped (the connection resynchronizes
/// at the next newline); with the fixed-size chunk reads this bounds a
/// connection's buffering no matter what the client streams. Inline
/// `load` texts for realistic KBs are kilobytes, so 4 MiB is generous.
pub const MAX_LINE: usize = 4 << 20;

/// Lifetime counters the `stats` op reports.
#[derive(Default)]
struct Totals {
    answered: u64,
    failed: u64,
    stages: Vec<StageTotals>,
}

enum Work {
    Query { kb: Arc<LoadedKb>, query: String },
    Sleep { ms: u64 },
}

struct Job {
    work: Work,
    reply: mpsc::Sender<String>,
    /// When the job was admitted — the worker reports the pop-side delta
    /// as queue wait.
    enqueued: Instant,
    /// Process-unique id tying this request's span tree, access-log line
    /// and slow-log line together.
    trace_id: u64,
}

/// A bound, resident serving process: KB registry, shared cache, worker
/// pool and admission queue. [`Server::run`] blocks until a `shutdown`
/// request (or [`Server::stop`]) arrives.
pub struct Server {
    listener: TcpListener,
    registry: KbRegistry,
    queue: JobQueue<Job>,
    /// One slot per worker (the `batch.rs` per-worker-shard pattern):
    /// the hot path locks only its own uncontended slot; `stats` merges
    /// them on demand.
    totals: Vec<Mutex<Totals>>,
    rejected: AtomicU64,
    stop: AtomicBool,
    started: Instant,
    threads: usize,
    test_ops: bool,
    slow_log: Option<Mutex<std::fs::File>>,
    slow_ms: u64,
    access_log: Option<Mutex<std::fs::File>>,
}

impl Server {
    /// Binds the listener and builds the serving state; no thread runs
    /// until [`Server::run`].
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let threads = match config.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        let open = |path: &PathBuf| {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
        };
        let slow_log = config
            .slow_log
            .as_ref()
            .map(open)
            .transpose()?
            .map(Mutex::new);
        let access_log = config
            .access_log
            .as_ref()
            .map(open)
            .transpose()?
            .map(Mutex::new);
        Ok(Server {
            listener,
            registry: KbRegistry::new(Arc::new(AnswerCache::with_shards(config.cache_shards))),
            queue: JobQueue::new(config.max_queue),
            totals: (0..threads)
                .map(|_| Mutex::new(Totals::default()))
                .collect(),
            rejected: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            started: Instant::now(),
            threads,
            test_ops: config.test_ops,
            slow_log,
            slow_ms: config.slow_ms,
            access_log,
        })
    }

    /// The bound address (the actual port when the config asked for 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The KB registry (for preloading before [`Server::run`]).
    pub fn registry(&self) -> &KbRegistry {
        &self.registry
    }

    /// Worker threads the pool will run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The admission-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Requests shutdown: the accept loop, handlers and workers wind
    /// down and [`Server::run`] returns.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Serves until shutdown. Workers, connection handlers and the
    /// accept loop all live in one scope, so returning means everything
    /// is joined.
    pub fn run(&self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            for worker in 0..self.threads {
                scope.spawn(move || self.worker_loop(worker));
            }
            while !self.stop.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        scope.spawn(move || self.handle_connection(stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    // Transient accept errors (e.g. a connection reset
                    // before accept) must not kill the server.
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            // Workers drain admitted jobs, then exit; handlers notice the
            // stop flag on their next read timeout.
            self.queue.close();
        });
        Ok(())
    }

    fn worker_loop(&self, worker: usize) {
        while let Some(job) = self.queue.pop() {
            let line = match &job.work {
                Work::Query { kb, query } => {
                    let queue_wait = job.enqueued.elapsed();
                    if rw_obs::enabled() {
                        rw_obs::registry()
                            .histogram("queue.wait_us")
                            .record_us(queue_wait.as_micros() as u64);
                    }
                    // The span tree: request ⊃ {queue-wait, answer ⊃ stage:*}.
                    // Queue wait elapsed before the request span opened, so
                    // it is attached manually; stage spans come from the
                    // response trace after the answer span has closed.
                    let recorder = rw_obs::SpanRecorder::new(job.trace_id);
                    let started = Instant::now();
                    let (result, answer_id) = {
                        let request = recorder.span("request");
                        recorder.add(
                            Some(request.id()),
                            "queue-wait",
                            queue_wait.as_micros() as u64,
                            0,
                        );
                        let answer = recorder.span("answer");
                        let answer_id = answer.id();
                        (kb.answer(query), answer_id)
                    };
                    if let Ok(response) = &result {
                        for step in response.trace.steps() {
                            recorder.add(
                                Some(answer_id),
                                &format!("stage:{}", step.stage),
                                step.elapsed.as_micros() as u64,
                                0,
                            );
                        }
                    }
                    let elapsed = started.elapsed();
                    {
                        let mut totals = self.totals[worker].lock().expect("totals lock poisoned");
                        StageTotals::absorb_result(&mut totals.stages, &result);
                        match &result {
                            Ok(_) => totals.answered += 1,
                            Err(_) => totals.failed += 1,
                        }
                    }
                    self.log_request(kb, query, &result, queue_wait, elapsed, recorder);
                    crate::json::result_line(query, &result)
                }
                Work::Sleep { ms } => {
                    // Test-only: occupy this worker slot for a bounded time.
                    std::thread::sleep(Duration::from_millis((*ms).min(10_000)));
                    r#"{"ok":true,"op":"sleep"}"#.to_string()
                }
            };
            // A vanished requester (disconnected mid-wait) is not an
            // error; the answer is simply dropped.
            let _ = job.reply.send(line);
        }
    }

    /// Reads request lines until EOF/shutdown, writing one response line
    /// per request. Raw bytes are decoded lossily so even non-UTF-8
    /// garbage yields a structured parse error instead of a disconnect.
    ///
    /// The loop reads fixed-size chunks and assembles lines itself (a
    /// `read_until` could grow without bound on a fast newline-free
    /// stream): per-connection memory is capped at [`MAX_LINE`] + one
    /// chunk. An oversized line is answered with one `bad-request`
    /// error, and the connection resynchronizes at the next newline.
    fn handle_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let _ = stream.set_nodelay(true);
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        // One response line per request; `true` asks to close.
        let mut respond = |response: &str, shutdown: bool| -> bool {
            writer
                .write_all(format!("{response}\n").as_bytes())
                .and_then(|()| writer.flush())
                .is_err()
                || shutdown
        };
        let mut pending: Vec<u8> = Vec::new();
        let mut discarding = false; // inside an oversized (already answered) line
        let mut chunk = [0u8; 8192];
        'conn: loop {
            match stream.read(&mut chunk) {
                // EOF: the client closed its half. A final line without a
                // trailing newline still deserves its answer.
                Ok(0) => {
                    let line = String::from_utf8_lossy(&pending).trim().to_string();
                    if !discarding && !line.is_empty() {
                        let (response, _) = self.handle_line(&line);
                        let _ = respond(&response, false);
                    }
                    break;
                }
                Ok(n) => {
                    let mut rest = &chunk[..n];
                    while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
                        let (head, tail) = rest.split_at(pos);
                        rest = &tail[1..];
                        if discarding {
                            // The tail end of an oversized line: its
                            // error was already sent, just resync.
                            discarding = false;
                            continue;
                        }
                        pending.extend_from_slice(head);
                        // The cap applies even when the newline arrives
                        // in the same chunk as the overflowing tail.
                        if pending.len() > MAX_LINE {
                            pending.clear();
                            let error = ProtoError::bad_request(format!(
                                "request line exceeds {MAX_LINE} bytes"
                            ));
                            if respond(&error.line(), false) {
                                break 'conn;
                            }
                            continue;
                        }
                        let line = String::from_utf8_lossy(&pending).trim().to_string();
                        pending.clear();
                        if line.is_empty() {
                            continue;
                        }
                        let (response, shutdown) = self.handle_line(&line);
                        if respond(&response, shutdown) {
                            break 'conn;
                        }
                    }
                    if discarding {
                        continue;
                    }
                    if pending.len() + rest.len() > MAX_LINE {
                        discarding = true;
                        pending.clear();
                        let error = ProtoError::bad_request(format!(
                            "request line exceeds {MAX_LINE} bytes"
                        ));
                        if respond(&error.line(), false) {
                            break;
                        }
                    } else {
                        pending.extend_from_slice(rest);
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    if self.stop.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    }

    /// Answers one request line; the bool asks the connection to close
    /// (shutdown acknowledged).
    fn handle_line(&self, line: &str) -> (String, bool) {
        let request = match proto::parse_request(line) {
            Ok(r) => r,
            Err(e) => return (e.line(), false),
        };
        match request {
            Request::Ping => (r#"{"ok":true,"op":"ping"}"#.to_string(), false),
            Request::List => (self.registry.list_json(), false),
            Request::Stats => (self.stats_json(), false),
            Request::Metrics => (self.metrics_json(), false),
            Request::Shutdown => {
                self.stop();
                (r#"{"ok":true,"op":"shutdown"}"#.to_string(), true)
            }
            Request::Unload { kb } => {
                if self.registry.unload(&kb) {
                    (
                        format!(
                            r#"{{"ok":true,"op":"unload","kb":"{}"}}"#,
                            crate::json::escape(&kb)
                        ),
                        false,
                    )
                } else {
                    (Self::unknown_kb(&kb).line(), false)
                }
            }
            Request::Load {
                kb,
                source,
                approx,
                scan,
            } => match self.registry.load(&kb, &source, approx.as_ref(), scan) {
                Ok(loaded) => (
                    format!(
                        r#"{{"ok":true,"op":"load","kb":"{}","fingerprint":"{:016x}","statements":{},"approx":{}}}"#,
                        crate::json::escape(&kb),
                        loaded.fingerprint,
                        loaded.kb.conjuncts().len(),
                        loaded.approx
                    ),
                    false,
                ),
                Err(e) => (e.line(), false),
            },
            Request::Query { kb, query } => {
                let Some(loaded) = self.registry.get(&kb) else {
                    return (Self::unknown_kb(&kb).line(), false);
                };
                (self.submit(Work::Query { kb: loaded, query }), false)
            }
            Request::Sleep { ms } => {
                if !self.test_ops {
                    return (
                        ProtoError::bad_request("`sleep` is a test-only op").line(),
                        false,
                    );
                }
                (self.submit(Work::Sleep { ms }), false)
            }
        }
    }

    /// Admits work to the queue and waits for the worker's answer; a
    /// full queue is answered immediately with `overloaded`.
    fn submit(&self, work: Work) -> String {
        let (reply, answer) = mpsc::channel();
        let job = Job {
            work,
            reply,
            enqueued: Instant::now(),
            trace_id: rw_obs::next_trace_id(),
        };
        match self.queue.push(job) {
            // A lost reply channel means shutdown won the race — tell
            // the client the truth (`overloaded` would invite retries
            // against a dying process).
            Ok(()) => answer.recv().unwrap_or_else(|_| {
                ProtoError {
                    code: ErrorCode::ShuttingDown,
                    message: "server shut down before answering".to_string(),
                }
                .line()
            }),
            Err(PushError::Full) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                if rw_obs::enabled() {
                    rw_obs::registry().counter("queue.rejected").inc();
                }
                ProtoError {
                    code: ErrorCode::Overloaded,
                    message: format!(
                        "admission queue full ({} pending); retry later",
                        self.queue.capacity()
                    ),
                }
                .line()
            }
            Err(PushError::Closed) => ProtoError {
                code: ErrorCode::ShuttingDown,
                message: "server is shutting down".to_string(),
            }
            .line(),
        }
    }

    /// Writes the per-request access-log line and — at or over the slow
    /// threshold — the slow-query line with the full span tree. Logging
    /// happens after the response line is already determined, so it can
    /// never change answer bytes.
    fn log_request(
        &self,
        kb: &LoadedKb,
        query: &str,
        result: &Result<rw_core::Response, rw_core::EngineError>,
        queue_wait: Duration,
        elapsed: Duration,
        recorder: rw_obs::SpanRecorder,
    ) {
        if self.access_log.is_none() && self.slow_log.is_none() {
            return;
        }
        let trace_id = recorder.trace_id();
        let ok = result.is_ok();
        let cache_hit = matches!(result, Ok(r) if r.cached);
        if let Some(file) = &self.access_log {
            let line = format!(
                r#"{{"ts_us":{},"trace_id":{},"kb":"{}","query":"{}","ok":{},"cache_hit":{},"queue_wait_us":{},"elapsed_us":{}}}"#,
                Self::unix_micros(),
                trace_id,
                crate::json::escape(&kb.name),
                crate::json::escape(query),
                ok,
                cache_hit,
                queue_wait.as_micros(),
                elapsed.as_micros(),
            );
            Self::append(file, &line);
        }
        if let Some(file) = &self.slow_log {
            if elapsed >= Duration::from_millis(self.slow_ms) {
                let spans = recorder.finish();
                let line = format!(
                    r#"{{"ts_us":{},"trace_id":{},"kb":"{}","fingerprint":"{:016x}","query":"{}","ok":{},"elapsed_us":{},"spans":{}}}"#,
                    Self::unix_micros(),
                    trace_id,
                    crate::json::escape(&kb.name),
                    kb.fingerprint,
                    crate::json::escape(query),
                    ok,
                    elapsed.as_micros(),
                    rw_obs::spans_json(&spans),
                );
                Self::append(file, &line);
            }
        }
    }

    /// One appended JSONL line; a failed write is dropped silently (the
    /// serving path must never fail because a log disk filled up).
    fn append(file: &Mutex<std::fs::File>, line: &str) {
        let mut file = file.lock().expect("log file lock poisoned");
        let _ = writeln!(file, "{line}");
    }

    /// Wall-clock microseconds since the Unix epoch (log timestamps).
    fn unix_micros() -> u128 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros())
            .unwrap_or(0)
    }

    /// The `metrics` op: the full observability-registry snapshot, with
    /// the admission-queue depth gauge refreshed at snapshot time.
    fn metrics_json(&self) -> String {
        let registry = rw_obs::registry();
        registry.gauge("queue.depth").set(self.queue.depth() as u64);
        format!(
            r#"{{"ok":true,"op":"metrics","uptime_us":{},"metrics":{}}}"#,
            self.started.elapsed().as_micros(),
            registry.snapshot().to_json(),
        )
    }

    fn unknown_kb(name: &str) -> ProtoError {
        ProtoError {
            code: ErrorCode::UnknownKb,
            message: format!("no KB named `{name}` is loaded (use the `load` op)"),
        }
    }

    fn stats_json(&self) -> String {
        let cache = self.registry.cache();
        // Merge the per-worker shards (cold path: only `stats` pays).
        let mut merged = Totals::default();
        for slot in &self.totals {
            let totals = slot.lock().expect("totals lock poisoned");
            merged.answered += totals.answered;
            merged.failed += totals.failed;
            for st in &totals.stages {
                match merged.stages.iter_mut().find(|t| t.stage == st.stage) {
                    Some(t) => {
                        t.answered += st.answered;
                        t.declined += st.declined;
                        t.budget_exhausted += st.budget_exhausted;
                        t.elapsed += st.elapsed;
                    }
                    None => merged.stages.push(st.clone()),
                }
            }
        }
        let denoms = self.registry.denoms();
        format!(
            r#"{{"ok":true,"op":"stats","uptime_us":{},"kbs":{},"queries":{{"answered":{},"failed":{},"rejected":{}}},"cache":{{"hits":{},"misses":{},"entries":{},"shards":{}}},"denoms":{{"hits":{},"misses":{},"entries":{}}},"queue":{{"depth":{},"capacity":{},"workers":{}}},"stages":[{}]}}"#,
            self.started.elapsed().as_micros(),
            self.registry.len(),
            merged.answered,
            merged.failed,
            self.rejected.load(Ordering::Relaxed),
            cache.hits(),
            cache.misses(),
            cache.len(),
            cache.shard_count(),
            denoms.hits(),
            denoms.misses(),
            denoms.len(),
            self.queue.depth(),
            self.queue.capacity(),
            self.threads,
            crate::json::stage_totals_json(&merged.stages),
        )
    }
}
