//! Std-only SIGTERM/SIGINT handling: `rt_sigaction(2)` through a
//! direct syscall, mirroring [`crate::poll`]'s approach.
//!
//! A production backend must not die mid-request when its supervisor
//! sends SIGTERM — it should stop accepting, finish what it owes, and
//! exit (the PR-9 graceful drain). The standard library exposes no
//! signal API and the workspace is dependency-free by design, so this
//! module installs a minimal handler directly: the handler body is a
//! single atomic store (the only thing that is async-signal-safe
//! anyway), and the serving event loops check [`take`] once per
//! iteration — their poll timeout bounds the reaction latency to at
//! most one tick.
//!
//! On x86_64 the kernel requires userspace to supply the signal-return
//! trampoline (`SA_RESTORER`): a two-instruction stub issuing
//! `rt_sigreturn` is assembled below. On aarch64 the kernel falls back
//! to its own vDSO trampoline when no restorer is given, so none is
//! installed there.

use std::io;
use std::sync::atomic::{AtomicI32, Ordering};

/// `SIGINT` — interactive interrupt (Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` — the polite supervisor shutdown request.
pub const SIGTERM: i32 = 15;

/// Restart interrupted syscalls so in-flight reads/writes on other
/// threads don't surface spurious `EINTR` failures.
const SA_RESTART: usize = 0x1000_0000;

/// The last delivery, 0 when none is pending.
static PENDING: AtomicI32 = AtomicI32::new(0);

/// The handler: an atomic store and nothing else (async-signal-safe).
extern "C" fn on_signal(signo: i32) {
    PENDING.store(signo, Ordering::SeqCst);
}

/// Consumes a pending signal, if one arrived since the last call.
pub fn take() -> Option<i32> {
    match PENDING.swap(0, Ordering::SeqCst) {
        0 => None,
        signo => Some(signo),
    }
}

/// The kernel's `struct sigaction` as `rt_sigaction` expects it on
/// x86_64 and aarch64: handler, flags, restorer, then an 8-byte mask.
#[repr(C)]
struct KernelSigaction {
    handler: usize,
    flags: usize,
    restorer: usize,
    mask: u64,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod arch {
    /// x86_64 userspace owns the signal trampoline: `SA_RESTORER` must
    /// be set and point at a stub that issues `rt_sigreturn` (NR 15).
    pub const SA_RESTORER: usize = 0x0400_0000;

    core::arch::global_asm!(
        ".global __rwq_sigrestore",
        "__rwq_sigrestore:",
        "mov rax, 15",
        "syscall",
    );

    extern "C" {
        pub fn __rwq_sigrestore();
    }

    /// Raw `rt_sigaction`: negative return values are `-errno`.
    pub fn sys_rt_sigaction(
        signum: i32,
        act: *const super::KernelSigaction,
        oldact: *mut super::KernelSigaction,
        sigsetsize: usize,
    ) -> isize {
        const SYS_RT_SIGACTION: usize = 13;
        let ret: isize;
        // SAFETY: `rt_sigaction(signum, act, oldact, 8)` with `act`
        // pointing at a fully initialized `KernelSigaction` whose
        // restorer is the stub above. The kernel only reads `act` and
        // writes `oldact` (null here). rcx/r11 are clobbered by
        // `syscall` itself.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_RT_SIGACTION as isize => ret,
                in("rdi") signum as usize,
                in("rsi") act,
                in("rdx") oldact,
                in("r10") sigsetsize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod arch {
    /// aarch64 leaves the trampoline to the kernel's vDSO: no
    /// `SA_RESTORER` flag, restorer field zero.
    pub const SA_RESTORER: usize = 0;

    /// Raw `rt_sigaction`: negative return values are `-errno`.
    pub fn sys_rt_sigaction(
        signum: i32,
        act: *const super::KernelSigaction,
        oldact: *mut super::KernelSigaction,
        sigsetsize: usize,
    ) -> isize {
        const SYS_RT_SIGACTION: usize = 134;
        let ret: isize;
        // SAFETY: as in the x86_64 variant; aarch64 passes the syscall
        // number in x8 and arguments in x0..x3.
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") SYS_RT_SIGACTION,
                inlateout("x0") signum as isize => ret,
                in("x1") act,
                in("x2") oldact,
                in("x3") sigsetsize,
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
compile_error!(
    "rw-server's drain-on-signal needs the rt_sigaction syscall; \
     only linux x86_64/aarch64 are wired up (add the syscall stanza for this target)"
);

fn install_one(signo: i32) -> io::Result<()> {
    #[cfg(target_arch = "x86_64")]
    let (restorer, restorer_flag) = (
        arch::__rwq_sigrestore as *const () as usize,
        arch::SA_RESTORER,
    );
    #[cfg(target_arch = "aarch64")]
    let (restorer, restorer_flag) = (0usize, arch::SA_RESTORER);

    let act = KernelSigaction {
        handler: on_signal as *const () as usize,
        flags: SA_RESTART | restorer_flag,
        restorer,
        mask: 0,
    };
    let ret = arch::sys_rt_sigaction(signo, &act, std::ptr::null_mut(), 8);
    if ret < 0 {
        return Err(io::Error::from_raw_os_error(-ret as i32));
    }
    Ok(())
}

/// Installs the drain handler for SIGTERM and SIGINT. Idempotent;
/// call once per serving process before entering the event loop.
pub fn install() -> io::Result<()> {
    install_one(SIGTERM)?;
    install_one(SIGINT)
}

/// The human-readable name of a handled signal (for drain banners).
pub fn name(signo: i32) -> &'static str {
    match signo {
        SIGTERM => "SIGTERM",
        SIGINT => "SIGINT",
        _ => "signal",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    /// One test owns the process-global handler state: install, send
    /// ourselves a real SIGTERM, and observe the flag — the process
    /// surviving delivery is what validates the restorer trampoline.
    #[test]
    fn sigterm_sets_the_flag_and_the_process_survives() {
        install().expect("install handler");
        let _ = take(); // drain any stale state
        let status = std::process::Command::new("kill")
            .args(["-TERM", &std::process::id().to_string()])
            .status()
            .expect("spawn kill");
        assert!(status.success(), "kill -TERM failed: {status:?}");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match take() {
                Some(signo) => {
                    assert_eq!(signo, SIGTERM);
                    break;
                }
                None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
                None => panic!("SIGTERM never observed"),
            }
        }
        // A second take is empty: delivery was consumed exactly once.
        assert_eq!(take(), None);
    }
}
