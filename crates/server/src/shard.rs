//! `rwq shard` — a consistent-hashing front over N backend servers,
//! with health probes and structured failover.
//!
//! ```text
//!                       ┌───────────── rwq shard ─────────────┐
//!  client A ──TCP──▶    │ event loop (ppoll, same conn state  │     ┌─ backend 0
//!  client B ──TCP──▶    │ machines as rw-server)              │──┬─▶│  rwq serve
//!     ⋮                 │   query  → hash(kb ⊕ canonical(q))  │  │  └───────────
//!  client N ──TCP──▶    │          → ring walk → forward      │  ├─▶ backend 1
//!                       │   load/unload → broadcast to all    │  │
//!                       │   probes: ping every backend        │  └─▶ backend 2
//!                       └─────────────────────────────────────┘
//! ```
//!
//! Queries are routed by **consistent hashing on the canonical query
//! key**: the KB name plus [`rw_logic::canon::canonical_formula`] of the
//! query, so syntactic variants of one query — commuted conjunctions,
//! renamed binders — land on the *same* backend and hit its
//! [`rw_core::AnswerCache`]. The hash walks a ring of virtual nodes
//! ([`ShardConfig::vnodes`] per backend); removing a backend reassigns
//! only its arc, not the whole keyspace.
//!
//! Failure handling is layered, cheapest first:
//!
//! - **Pooled connections**: each worker keeps one connection per
//!   backend; a stale pooled connection (backend restarted) costs one
//!   reconnect, not an error.
//! - **Retry with exponential backoff** ([`ShardConfig::retry`],
//!   [`ShardConfig::retry_backoff_ms`]): transient connect failures are
//!   retried against the same backend before it is given up on.
//! - **Failover**: when the ring-primary backend cannot serve — it is
//!   unreachable after retries, or answered with `shutting-down`
//!   (graceful drain is a *re-route*, never a client-visible error) —
//!   the query moves to the ring successor and the response is
//!   annotated with `"failover":true`. Answer bytes are otherwise
//!   untouched: the fingerprint-keyed cache keyspace makes any backend's
//!   answer for a key byte-identical to any other's.
//! - **Health probes**: a probe thread pings every backend each
//!   [`ShardConfig::probe_interval_ms`]; probed-down backends are
//!   skipped during routing (tried last, as a final resort) until a
//!   probe sees them answer again.
//!
//! The serving surface is the same JSONL protocol as `rwq serve`:
//! `ping`/`stats`/`metrics`/`shutdown` answer inline (with shard-level
//! stats: per-backend health and forward/failover/error counters),
//! `load`/`unload` broadcast to every backend, `list` is served by the
//! first healthy backend, and `query` forwards as above. The event loop
//! is the same readiness design as [`crate::server`] — one `ppoll` over
//! nonblocking sockets, bounded admission queue, ordered response
//! slots, graceful drain on `shutdown`/SIGTERM/SIGINT.

use crate::client::Client;
use crate::conn::{Conn, Frame};
use crate::poll::{self, PollFd, POLLHUP, POLLIN, POLLOUT};
use crate::proto::{self, ErrorCode, ProtoError, Request};
use crate::queue::{JobQueue, PushError};
use crate::server::MAX_LINE;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How a [`Shard`] front is built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Bind address for the client-facing listener; port 0 picks a free
    /// port (see [`Shard::local_addr`]).
    pub addr: String,
    /// Backend `rwq serve` addresses (`host:port`); at least one.
    pub backends: Vec<String>,
    /// Forwarding worker threads (`0` = two per backend, clamped to
    /// `[2, 16]`).
    pub threads: usize,
    /// Admission-queue capacity: requests beyond this many pending are
    /// rejected with an `overloaded` error.
    pub max_queue: usize,
    /// Open-connection ceiling, as in [`crate::server::ServerConfig`].
    pub max_conns: usize,
    /// Milliseconds between health probes of each backend.
    pub probe_interval_ms: u64,
    /// Reconnect attempts against one backend after a transient
    /// failure, before failing over to the ring successor.
    pub retry: u32,
    /// First retry backoff in milliseconds; doubles per attempt.
    pub retry_backoff_ms: u64,
    /// Virtual nodes per backend on the hash ring.
    pub vnodes: usize,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            threads: 0,
            max_queue: 1024,
            max_conns: 10_000,
            probe_interval_ms: 250,
            retry: 2,
            retry_backoff_ms: 50,
            vnodes: 64,
        }
    }
}

/// TCP handshake bound when forwarding — a dead backend fails fast.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);
/// Read/write bound on a forwarded request (covers slow exact queries).
const FORWARD_TIMEOUT: Duration = Duration::from_secs(30);
/// Handshake + ping bound for a health probe.
const PROBE_TIMEOUT: Duration = Duration::from_millis(500);
/// Hard ceiling on a graceful drain, as in [`crate::server`].
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);
/// Largest accept burst per loop iteration.
const ACCEPT_BURST: usize = 256;
/// Read chunks consumed per connection per iteration.
const READS_PER_TICK: usize = 16;

/// One backend's address and live counters.
struct Backend {
    /// The configured address string (reported in `stats`).
    addr: String,
    /// The resolved socket address connections go to.
    sock: SocketAddr,
    /// Last known health: probes and forwarding outcomes both write it.
    healthy: AtomicBool,
    /// Queries this backend answered.
    forwarded: AtomicU64,
    /// Queries this backend was primary for but could not serve.
    failovers: AtomicU64,
    /// Times this backend was unreachable (after retries) or draining.
    errors: AtomicU64,
}

/// Where a queued request line must go.
enum Route {
    /// Consistent-hash to the ring primary, fail over along successors.
    Query { hash: u64 },
    /// To every backend (`load`/`unload` keep registries in lock-step).
    Broadcast,
    /// To the first backend that answers (`list`: registries match).
    First,
}

/// A request line admitted to the forwarding queue.
struct Job {
    line: String,
    route: Route,
    conn: u64,
    seq: u64,
}

/// A finished forward on its way back to the event loop.
struct Completion {
    conn: u64,
    seq: u64,
    line: String,
}

/// How the event loop should deliver a request's answer.
enum Handled {
    /// Answered on the loop thread: fill the slot now.
    Inline {
        line: String,
        /// The request asked the shard to shut down; close this
        /// connection once the acknowledgment flushes.
        shutdown: bool,
    },
    /// Admitted to the forwarding queue; the slot fills on completion.
    Queued,
}

impl Handled {
    fn inline(line: String) -> Handled {
        Handled::Inline {
            line,
            shutdown: false,
        }
    }
}

/// A bound sharding front: client listener, hash ring, backend table,
/// forwarding worker pool and health-probe thread. [`Shard::run`]
/// blocks until a `shutdown` request (or [`Shard::stop`], or a handled
/// signal) arrives and the graceful drain finishes.
pub struct Shard {
    listener: TcpListener,
    backends: Vec<Backend>,
    /// `(hash, backend index)` virtual nodes, sorted by hash.
    ring: Vec<(u64, usize)>,
    queue: JobQueue<Job>,
    completions: Mutex<Vec<Completion>>,
    wake: Mutex<Option<UnixStream>>,
    stop: AtomicBool,
    /// Why the drain began: 0 = not draining, 1 = `shutdown` op /
    /// [`Shard::stop`], 2 = SIGTERM, 3 = SIGINT. First writer wins.
    drain_reason: AtomicU8,
    started: Instant,
    threads: usize,
    max_conns: usize,
    probe_interval_ms: u64,
    retry: u32,
    retry_backoff_ms: u64,
    conns_open: AtomicU64,
    forwarded: AtomicU64,
    failovers: AtomicU64,
    retries: AtomicU64,
    rejected: AtomicU64,
    accept_errors: AtomicU64,
}

impl Shard {
    /// Binds the client-facing listener, resolves every backend and
    /// builds the hash ring; no thread runs until [`Shard::run`].
    pub fn bind(config: ShardConfig) -> std::io::Result<Shard> {
        if config.backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a shard needs at least one backend address",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let mut backends = Vec::with_capacity(config.backends.len());
        for addr in &config.backends {
            let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("backend `{addr}` resolves to no address"),
                )
            })?;
            backends.push(Backend {
                addr: addr.clone(),
                sock,
                healthy: AtomicBool::new(true),
                forwarded: AtomicU64::new(0),
                failovers: AtomicU64::new(0),
                errors: AtomicU64::new(0),
            });
        }
        let vnodes = config.vnodes.max(1);
        let mut ring = Vec::with_capacity(backends.len() * vnodes);
        for (idx, backend) in backends.iter().enumerate() {
            for v in 0..vnodes {
                let point = rw_logic::canon::fnv1a(format!("{}#{v}", backend.addr).as_bytes());
                ring.push((point, idx));
            }
        }
        ring.sort_unstable();
        let threads = match config.threads {
            0 => (backends.len() * 2).clamp(2, 16),
            n => n,
        };
        Ok(Shard {
            listener,
            backends,
            ring,
            queue: JobQueue::new(config.max_queue),
            completions: Mutex::new(Vec::new()),
            wake: Mutex::new(None),
            stop: AtomicBool::new(false),
            drain_reason: AtomicU8::new(0),
            started: Instant::now(),
            threads,
            max_conns: config.max_conns.max(1),
            probe_interval_ms: config.probe_interval_ms.max(20),
            retry: config.retry,
            retry_backoff_ms: config.retry_backoff_ms.max(1),
            conns_open: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            accept_errors: AtomicU64::new(0),
        })
    }

    /// The bound client-facing address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Forwarding worker threads the pool will run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured backend addresses, in ring-construction order.
    pub fn backend_addrs(&self) -> Vec<String> {
        self.backends.iter().map(|b| b.addr.clone()).collect()
    }

    /// Requests shutdown: the event loop drains gracefully and
    /// [`Shard::run`] returns. Backends are *not* shut down.
    pub fn stop(&self) {
        self.begin_stop(1);
    }

    /// Starts the drain, recording why (first reason wins).
    fn begin_stop(&self, reason: u8) {
        let _ = self
            .drain_reason
            .compare_exchange(0, reason, Ordering::SeqCst, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        self.wake_loop();
    }

    /// Why the shard is draining (or drained), when it is: `"shutdown"`,
    /// `"SIGTERM"`, or `"SIGINT"`.
    pub fn drain_reason(&self) -> Option<&'static str> {
        match self.drain_reason.load(Ordering::SeqCst) {
            1 => Some("shutdown"),
            2 => Some("SIGTERM"),
            3 => Some("SIGINT"),
            _ => None,
        }
    }

    /// Writes one byte into the wake pipe so a blocked `ppoll` returns
    /// now. Best-effort, as in [`crate::server`].
    fn wake_loop(&self) {
        if let Some(stream) = self.wake.lock().expect("wake lock poisoned").as_ref() {
            let mut writer = stream;
            let _ = writer.write(&[1]);
        }
    }

    /// Serves until shutdown, then drains. Workers, the probe thread
    /// and the event loop all live in one scope, so returning means
    /// everything is joined.
    pub fn run(&self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        *self.wake.lock().expect("wake lock poisoned") = Some(wake_tx);
        // One synchronous probe round before serving: a backend that is
        // down at startup should not cost the first queries its retry
        // budget.
        for backend in &self.backends {
            backend
                .healthy
                .store(Self::probe(&backend.sock), Ordering::SeqCst);
        }
        let result = std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| self.worker_loop());
            }
            scope.spawn(|| self.probe_loop());
            let result = self.event_loop(&wake_rx);
            // Workers drain everything already admitted, then exit; the
            // probe thread sees `stop` and returns.
            self.queue.close();
            result
        });
        *self.wake.lock().expect("wake lock poisoned") = None;
        result
    }

    // ---- routing ----

    /// The routing key hash: KB name ⊕ canonical query form, so
    /// syntactic variants of one query land on one backend (and hit its
    /// cache). A query that does not parse hashes its trimmed text —
    /// every backend produces identical error bytes for it anyway.
    fn route_hash(kb: &str, query: &str) -> u64 {
        let mut vocab = rw_logic::Vocabulary::new();
        let key = match rw_logic::parse_formula(&mut vocab, query) {
            Ok(f) => rw_logic::canon::canonical_formula(&vocab, &f),
            Err(_) => query.trim().to_string(),
        };
        rw_logic::canon::fnv1a(format!("{kb}\u{1f}{key}").as_bytes())
    }

    /// Backend indices in ring order from `hash`'s successor: element 0
    /// is the primary, the rest are the failover chain. Every backend
    /// appears exactly once.
    fn candidates(&self, hash: u64) -> Vec<usize> {
        let start = self.ring.partition_point(|&(h, _)| h < hash) % self.ring.len();
        let mut out = Vec::with_capacity(self.backends.len());
        for i in 0..self.ring.len() {
            let idx = self.ring[(start + i) % self.ring.len()].1;
            if !out.contains(&idx) {
                out.push(idx);
                if out.len() == self.backends.len() {
                    break;
                }
            }
        }
        out
    }

    /// `order`, stably partitioned healthy-first: probed-down backends
    /// are still tried, but only as a last resort.
    fn healthy_first(&self, order: Vec<usize>) -> Vec<usize> {
        let (healthy, down): (Vec<usize>, Vec<usize>) = order
            .into_iter()
            .partition(|&i| self.backends[i].healthy.load(Ordering::SeqCst));
        healthy.into_iter().chain(down).collect()
    }

    // ---- forwarding (worker threads) ----

    fn worker_loop(&self) {
        // One pooled connection per backend per worker: the hot path
        // reuses a warm connection; a stale one (backend restarted)
        // costs a reconnect, not an error.
        let mut pool: Vec<Option<Client>> = (0..self.backends.len()).map(|_| None).collect();
        while let Some(job) = self.queue.pop() {
            let line = match job.route {
                Route::Query { hash } => self.forward_query(hash, &job.line, &mut pool),
                Route::Broadcast => self.forward_broadcast(&job.line, &mut pool),
                Route::First => self.forward_first(&job.line, &mut pool),
            };
            self.complete(job.conn, job.seq, line);
        }
    }

    /// Routes one query: primary first, then the failover chain. A
    /// non-primary answer is annotated with `"failover":true`; the
    /// answer bytes are otherwise exactly what the backend produced.
    fn forward_query(&self, hash: u64, line: &str, pool: &mut [Option<Client>]) -> String {
        let started = Instant::now();
        let candidates = self.candidates(hash);
        let primary = candidates[0];
        for idx in self.healthy_first(candidates) {
            let Some(resp) = self.forward_to(idx, line, pool) else {
                continue;
            };
            self.forwarded.fetch_add(1, Ordering::Relaxed);
            self.backends[idx].forwarded.fetch_add(1, Ordering::Relaxed);
            if rw_obs::enabled() {
                let registry = rw_obs::registry();
                registry.counter("shard.forwarded").inc();
                registry
                    .histogram("shard.forward_us")
                    .record_us(started.elapsed().as_micros() as u64);
            }
            if idx != primary {
                self.failovers.fetch_add(1, Ordering::Relaxed);
                self.backends[primary]
                    .failovers
                    .fetch_add(1, Ordering::Relaxed);
                Self::count("shard.failover");
                return annotate_failover(&resp);
            }
            return resp;
        }
        Self::count("shard.no_backend");
        ProtoError {
            code: ErrorCode::Overloaded,
            message: "no backend available; retry later".to_string(),
        }
        .line()
    }

    /// `load`/`unload` go to every backend so registries stay in
    /// lock-step. An explicit protocol error (parse failure, unknown
    /// KB) is deterministic across backends and wins; otherwise any
    /// acknowledgment does — an unreachable backend rejoins with the
    /// same KBs via its snapshot, or is probed out until then.
    fn forward_broadcast(&self, line: &str, pool: &mut [Option<Client>]) -> String {
        let mut ok_line: Option<String> = None;
        let mut err_line: Option<String> = None;
        for idx in 0..self.backends.len() {
            if let Some(resp) = self.forward_to(idx, line, pool) {
                if resp.starts_with(r#"{"ok":false"#) {
                    err_line.get_or_insert(resp);
                } else {
                    ok_line = Some(resp);
                }
            }
        }
        if let Some(line) = err_line {
            return line;
        }
        if let Some(line) = ok_line {
            return line;
        }
        Self::count("shard.no_backend");
        ProtoError {
            code: ErrorCode::Overloaded,
            message: "no backend reachable; retry later".to_string(),
        }
        .line()
    }

    /// `list`: any backend's answer is every backend's answer.
    fn forward_first(&self, line: &str, pool: &mut [Option<Client>]) -> String {
        let order = self.healthy_first((0..self.backends.len()).collect());
        for idx in order {
            if let Some(resp) = self.forward_to(idx, line, pool) {
                return resp;
            }
        }
        Self::count("shard.no_backend");
        ProtoError {
            code: ErrorCode::Overloaded,
            message: "no backend reachable; retry later".to_string(),
        }
        .line()
    }

    /// One attempt chain against one backend: pooled connection, then
    /// fresh connects with exponential backoff. `None` means the
    /// backend cannot serve right now — unreachable after retries, or
    /// draining — and the caller should move on.
    fn forward_to(&self, idx: usize, line: &str, pool: &mut [Option<Client>]) -> Option<String> {
        let backend = &self.backends[idx];
        if let Some(client) = pool[idx].as_mut() {
            match client.request_line(line) {
                Ok(resp) => {
                    if is_draining(&resp) {
                        pool[idx] = None;
                        self.note_draining(idx);
                        return None;
                    }
                    return Some(resp);
                }
                // A stale pooled connection (backend restarted between
                // requests) is normal: drop it and reconnect below.
                Err(_) => pool[idx] = None,
            }
        }
        let mut backoff = Duration::from_millis(self.retry_backoff_ms);
        for attempt in 0..=self.retry {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                Self::count("shard.retries");
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(2));
            }
            let Ok(client) = Client::connect_timeout(&backend.sock, CONNECT_TIMEOUT) else {
                continue;
            };
            let _ = client.set_timeouts(Some(FORWARD_TIMEOUT));
            let mut client = client;
            match client.request_line(line) {
                Ok(resp) => {
                    if is_draining(&resp) {
                        self.note_draining(idx);
                        return None;
                    }
                    backend.healthy.store(true, Ordering::SeqCst);
                    pool[idx] = Some(client);
                    return Some(resp);
                }
                Err(_) => continue,
            }
        }
        backend.healthy.store(false, Ordering::SeqCst);
        backend.errors.fetch_add(1, Ordering::Relaxed);
        Self::count("shard.backend_errors");
        None
    }

    /// A backend answered `shutting-down`: it is draining, not broken.
    /// Mark it down so routing skips it; probes will notice when its
    /// replacement comes back up.
    fn note_draining(&self, idx: usize) {
        let backend = &self.backends[idx];
        backend.healthy.store(false, Ordering::SeqCst);
        backend.errors.fetch_add(1, Ordering::Relaxed);
        Self::count("shard.backend.draining");
    }

    // ---- health probes ----

    /// Pings every backend each probe interval, flipping health bits
    /// and the `shard.backends.healthy` gauge. Exits when the drain
    /// begins.
    fn probe_loop(&self) {
        let interval = Duration::from_millis(self.probe_interval_ms);
        loop {
            for backend in &self.backends {
                let healthy = Self::probe(&backend.sock);
                let was = backend.healthy.swap(healthy, Ordering::SeqCst);
                Self::count("shard.health.probes");
                if !healthy {
                    Self::count("shard.health.failures");
                }
                if was != healthy {
                    Self::count(if healthy {
                        "shard.backend.up"
                    } else {
                        "shard.backend.down"
                    });
                }
            }
            if rw_obs::enabled() {
                let up = self
                    .backends
                    .iter()
                    .filter(|b| b.healthy.load(Ordering::SeqCst))
                    .count();
                rw_obs::registry()
                    .gauge("shard.backends.healthy")
                    .set(up as u64);
            }
            // Sleep in small slices so a drain is honored promptly.
            let mut waited = Duration::ZERO;
            while waited < interval {
                if self.stop.load(Ordering::SeqCst) {
                    return;
                }
                let step = Duration::from_millis(20).min(interval - waited);
                std::thread::sleep(step);
                waited += step;
            }
        }
    }

    /// One health probe: connect, ping, expect an `ok` answer. A
    /// draining backend refuses with `"ok":false` and probes unhealthy.
    fn probe(sock: &SocketAddr) -> bool {
        let Ok(client) = Client::connect_timeout(sock, PROBE_TIMEOUT) else {
            return false;
        };
        if client.set_timeouts(Some(PROBE_TIMEOUT)).is_err() {
            return false;
        }
        let mut client = client;
        matches!(
            client.request_line(r#"{"op":"ping"}"#),
            Ok(resp) if resp.starts_with(r#"{"ok":true"#)
        )
    }

    // ---- event loop (same readiness design as crate::server) ----

    /// Hands a finished forward back to the event loop and wakes it.
    fn complete(&self, conn: u64, seq: u64, line: String) {
        self.completions
            .lock()
            .expect("completions lock poisoned")
            .push(Completion { conn, seq, line });
        self.wake_loop();
    }

    /// Answers one request line: control ops inline, everything that
    /// touches a backend through the admission queue.
    fn handle_line(&self, line: &str, conn: u64, seq: u64) -> Handled {
        let request = match proto::parse_request(line) {
            Ok(r) => r,
            Err(e) => return Handled::inline(e.line()),
        };
        match request {
            Request::Ping => Handled::inline(r#"{"ok":true,"op":"ping"}"#.to_string()),
            Request::Stats => Handled::inline(self.stats_json()),
            Request::Metrics => Handled::inline(self.metrics_json()),
            Request::Shutdown => {
                self.stop();
                Handled::Inline {
                    line: r#"{"ok":true,"op":"shutdown"}"#.to_string(),
                    shutdown: true,
                }
            }
            Request::Sleep { .. } => {
                Handled::inline(ProtoError::bad_request("`sleep` is a test-only op").line())
            }
            Request::Query { ref kb, ref query } => self.admit(
                Route::Query {
                    hash: Self::route_hash(kb, query),
                },
                line,
                conn,
                seq,
            ),
            Request::Load { .. } | Request::Unload { .. } => {
                self.admit(Route::Broadcast, line, conn, seq)
            }
            Request::List => self.admit(Route::First, line, conn, seq),
        }
    }

    /// Admits a request line to the forwarding queue; a full queue is
    /// answered immediately with `overloaded`.
    fn admit(&self, route: Route, line: &str, conn: u64, seq: u64) -> Handled {
        let job = Job {
            line: line.to_string(),
            route,
            conn,
            seq,
        };
        match self.queue.push(job) {
            Ok(()) => Handled::Queued,
            Err(PushError::Full) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Self::count("queue.rejected");
                Handled::inline(
                    ProtoError {
                        code: ErrorCode::Overloaded,
                        message: format!(
                            "admission queue full ({} pending); retry later",
                            self.queue.capacity()
                        ),
                    }
                    .line(),
                )
            }
            Err(PushError::Closed) => Handled::inline(
                ProtoError {
                    code: ErrorCode::ShuttingDown,
                    message: "server is shutting down".to_string(),
                }
                .line(),
            ),
        }
    }

    /// The readiness loop; structurally the same as
    /// [`crate::server::Server`]'s, minus idle eviction and snapshots
    /// (the shard holds no KB state worth persisting).
    fn event_loop(&self, wake_rx: &UnixStream) -> std::io::Result<()> {
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_id: u64 = 0;
        let mut accept_pause: Option<Instant> = None;
        let mut backoff = Duration::from_millis(10);
        let mut drain_deadline: Option<Instant> = None;
        let mut fds: Vec<PollFd> = Vec::new();
        let mut ids: Vec<u64> = Vec::new();
        let mut chunk = [0u8; 8192];
        let mut frames: Vec<Frame> = Vec::new();

        loop {
            // ---- lifecycle: signals, drain, closes ----
            if let Some(signo) = crate::signal::take() {
                let reason = if signo == crate::signal::SIGINT { 3 } else { 2 };
                self.begin_stop(reason);
            }
            if self.stop.load(Ordering::SeqCst) && drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + DRAIN_DEADLINE);
                Self::count("shard.drain");
                for conn in conns.values_mut() {
                    conn.closing = true;
                }
            }
            conns.retain(|_, c| !(c.closing && c.drained()));
            if let Some(deadline) = drain_deadline {
                if conns.is_empty() || Instant::now() >= deadline {
                    break;
                }
            }
            self.conns_open.store(conns.len() as u64, Ordering::Relaxed);
            if rw_obs::enabled() {
                rw_obs::registry()
                    .gauge("conns.open")
                    .set(conns.len() as u64);
            }

            // ---- build the poll set ----
            fds.clear();
            ids.clear();
            fds.push(PollFd::new(wake_rx.as_raw_fd(), POLLIN));
            if accept_pause.is_some_and(|until| Instant::now() >= until) {
                accept_pause = None;
            }
            let listener_idx = if accept_pause.is_none() {
                fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
                Some(fds.len() - 1)
            } else {
                None
            };
            let conn_base = fds.len();
            for (&id, conn) in &conns {
                let mut events = 0i16;
                if !conn.closing && !conn.read_paused() {
                    events |= POLLIN;
                }
                if conn.wants_write() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                ids.push(id);
            }
            let timeout = if drain_deadline.is_some() || accept_pause.is_some() {
                Duration::from_millis(10)
            } else {
                Duration::from_millis(500)
            };
            poll::poll(&mut fds, Some(timeout))?;

            // ---- drain the wake pipe, apply completions ----
            if fds[0].ready(POLLIN) {
                let mut wake = wake_rx;
                while matches!(wake.read(&mut chunk), Ok(n) if n > 0) {}
            }
            let done =
                std::mem::take(&mut *self.completions.lock().expect("completions lock poisoned"));
            for completion in done {
                let Some(conn) = conns.get_mut(&completion.conn) else {
                    continue;
                };
                conn.inflight = conn.inflight.saturating_sub(1);
                conn.fill_slot(completion.seq, completion.line);
                conn.last_activity = Instant::now();
                if conn.flush().is_err() {
                    conns.remove(&completion.conn);
                }
            }

            // ---- accept ----
            if listener_idx.is_some_and(|i| fds[i].ready(POLLIN)) {
                for _ in 0..ACCEPT_BURST {
                    match self.listener.accept() {
                        Ok((stream, _peer)) => {
                            backoff = Duration::from_millis(10);
                            let _ = stream.set_nodelay(true);
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            if drain_deadline.is_some() {
                                Self::refuse(
                                    stream,
                                    ProtoError {
                                        code: ErrorCode::ShuttingDown,
                                        message: "server is shutting down".to_string(),
                                    },
                                );
                                continue;
                            }
                            if conns.len() >= self.max_conns {
                                Self::refuse(
                                    stream,
                                    ProtoError {
                                        code: ErrorCode::Overloaded,
                                        message: format!(
                                            "connection limit reached ({} open); retry later",
                                            self.max_conns
                                        ),
                                    },
                                );
                                Self::count("conns.refused");
                                continue;
                            }
                            let id = next_id;
                            next_id += 1;
                            conns.insert(id, Conn::new(stream, MAX_LINE));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) => {
                            self.accept_errors.fetch_add(1, Ordering::Relaxed);
                            Self::count("accept.errors");
                            const EMFILE: i32 = 24;
                            const ENFILE: i32 = 23;
                            if matches!(e.raw_os_error(), Some(EMFILE) | Some(ENFILE)) {
                                let oldest = conns
                                    .iter()
                                    .filter(|(_, c)| c.is_idle() && !c.closing)
                                    .min_by_key(|(_, c)| c.last_activity)
                                    .map(|(&id, _)| id);
                                match oldest {
                                    Some(id) => {
                                        conns.remove(&id);
                                        Self::count("conns.idle_closed");
                                        continue;
                                    }
                                    None => {
                                        accept_pause = Some(Instant::now() + backoff);
                                        backoff = (backoff * 2).min(Duration::from_secs(1));
                                        break;
                                    }
                                }
                            }
                            break;
                        }
                    }
                }
            }

            // ---- per-connection IO ----
            for (slot, &id) in fds[conn_base..].iter().zip(ids.iter()) {
                let Some(conn) = conns.get_mut(&id) else {
                    continue;
                };
                if slot.failed() {
                    conns.remove(&id);
                    continue;
                }
                if slot.ready(POLLOUT) && conn.flush().is_err() {
                    conns.remove(&id);
                    continue;
                }
                if conn.closing || !slot.ready(POLLIN | POLLHUP) {
                    continue;
                }
                frames.clear();
                let mut eof = false;
                let mut gone = false;
                for _ in 0..READS_PER_TICK {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(n) => {
                            conn.last_activity = Instant::now();
                            conn.framer.push(&chunk[..n], &mut frames);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            gone = true;
                            break;
                        }
                    }
                }
                if gone {
                    conns.remove(&id);
                    continue;
                }
                if eof {
                    if let Some(line) = conn.framer.finish() {
                        frames.push(Frame::Line(line));
                    }
                    conn.closing = true;
                }
                let mut acked_shutdown = false;
                for frame in frames.drain(..) {
                    let seq = conn.alloc_slot();
                    match frame {
                        Frame::Oversized => {
                            let error = ProtoError::bad_request(format!(
                                "request line exceeds {MAX_LINE} bytes"
                            ));
                            conn.fill_slot(seq, error.line());
                        }
                        Frame::Line(line) => match self.handle_line(&line, id, seq) {
                            Handled::Inline { line, shutdown } => {
                                conn.fill_slot(seq, line);
                                acked_shutdown |= shutdown;
                            }
                            Handled::Queued => conn.inflight += 1,
                        },
                    }
                }
                if acked_shutdown {
                    conn.closing = true;
                }
                if conn.flush().is_err() {
                    conns.remove(&id);
                }
            }
        }
        self.conns_open.store(0, Ordering::Relaxed);
        if rw_obs::enabled() {
            rw_obs::registry().gauge("conns.open").set(0);
        }
        Ok(())
    }

    /// Best-effort one-line rejection, as in [`crate::server`].
    fn refuse(mut stream: TcpStream, error: ProtoError) {
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
        let _ = stream.write_all(format!("{}\n", error.line()).as_bytes());
    }

    /// Increments a registry counter when observability is recording.
    fn count(name: &str) {
        if rw_obs::enabled() {
            rw_obs::registry().counter(name).inc();
        }
    }

    /// The `stats` op: shard-level routing totals plus one entry per
    /// backend with its health bit and counters.
    fn stats_json(&self) -> String {
        let backends: Vec<String> = self
            .backends
            .iter()
            .map(|b| {
                format!(
                    r#"{{"addr":"{}","healthy":{},"forwarded":{},"failovers":{},"errors":{}}}"#,
                    crate::json::escape(&b.addr),
                    b.healthy.load(Ordering::SeqCst),
                    b.forwarded.load(Ordering::Relaxed),
                    b.failovers.load(Ordering::Relaxed),
                    b.errors.load(Ordering::Relaxed),
                )
            })
            .collect();
        format!(
            r#"{{"ok":true,"op":"stats","uptime_us":{},"shard":{{"forwarded":{},"failovers":{},"retries":{},"rejected":{},"backends":[{}]}},"queue":{{"depth":{},"capacity":{},"workers":{}}}}}"#,
            self.started.elapsed().as_micros(),
            self.forwarded.load(Ordering::Relaxed),
            self.failovers.load(Ordering::Relaxed),
            self.retries.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            backends.join(","),
            self.queue.depth(),
            self.queue.capacity(),
            self.threads,
        )
    }

    /// The `metrics` op: the observability-registry snapshot with the
    /// queue-depth and open-connection gauges refreshed.
    fn metrics_json(&self) -> String {
        let registry = rw_obs::registry();
        registry.gauge("queue.depth").set(self.queue.depth() as u64);
        registry
            .gauge("conns.open")
            .set(self.conns_open.load(Ordering::Relaxed));
        format!(
            r#"{{"ok":true,"op":"metrics","uptime_us":{},"metrics":{}}}"#,
            self.started.elapsed().as_micros(),
            registry.snapshot().to_json(),
        )
    }
}

/// Whether a backend response line is a drain refusal: those re-route,
/// they never reach a client. Answer lines escape embedded quotes, so
/// the raw `"code":"shutting-down"` substring cannot occur in one.
fn is_draining(resp: &str) -> bool {
    resp.starts_with(r#"{"ok":false"#) && resp.contains(r#""code":"shutting-down""#)
}

/// Appends `"failover":true` to a response object so clients (and the
/// soak harness) can see a query was served by a ring successor. The
/// annotation is additive: stripping it recovers the backend's bytes.
fn annotate_failover(line: &str) -> String {
    match line.strip_suffix('}') {
        Some(body) => format!("{body},\"failover\":true}}"),
        None => line.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use std::sync::Arc;

    fn shard_of(backends: &[&str]) -> Shard {
        // Bind-only construction: listener on an ephemeral port, ring
        // built, nothing running.
        Shard::bind(ShardConfig {
            backends: backends.iter().map(|s| s.to_string()).collect(),
            ..ShardConfig::default()
        })
        .expect("bind shard")
    }

    #[test]
    fn bind_rejects_empty_backends() {
        match Shard::bind(ShardConfig::default()) {
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput),
            Ok(_) => panic!("a backend-less shard must not bind"),
        }
    }

    #[test]
    fn candidates_cover_all_backends_deterministically() {
        let shard = shard_of(&["127.0.0.1:19001", "127.0.0.1:19002", "127.0.0.1:19003"]);
        for query in ["Hep(Eric)", "Jaun(Tom)", "Hep(Eric) & Jaun(Eric)"] {
            let hash = Shard::route_hash("med", query);
            let a = shard.candidates(hash);
            let b = shard.candidates(hash);
            assert_eq!(a, b, "ring walk must be deterministic");
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "every backend appears once");
        }
    }

    #[test]
    fn route_hash_is_syntax_invariant() {
        // Commuted conjunction and double negation canonicalize to the
        // same routing key — one backend, one warm cache.
        let a = Shard::route_hash("med", "Hep(Eric) & Jaun(Eric)");
        let b = Shard::route_hash("med", "Jaun(Eric) & Hep(Eric)");
        let c = Shard::route_hash("med", "!!(Hep(Eric) & Jaun(Eric))");
        assert_eq!(a, b);
        assert_eq!(a, c);
        // A different KB name must be free to land elsewhere.
        assert_ne!(a, Shard::route_hash("other", "Hep(Eric) & Jaun(Eric)"));
    }

    #[test]
    fn failover_annotation_is_additive() {
        let line = r#"{"ok":true,"op":"query","belief":{"value":0.8}}"#;
        let annotated = annotate_failover(line);
        assert_eq!(
            annotated,
            r#"{"ok":true,"op":"query","belief":{"value":0.8},"failover":true}"#
        );
        assert_eq!(crate::json::strip_failover(&annotated), line);
    }

    #[test]
    fn drain_refusals_are_recognized() {
        assert!(is_draining(
            r#"{"ok":false,"error":"server is shutting down","code":"shutting-down"}"#
        ));
        assert!(!is_draining(r#"{"ok":true,"op":"ping"}"#));
        // A query echoing the substring inside a JSON string is escaped
        // by the answer renderer and must not look like a drain.
        assert!(!is_draining(
            r#"{"ok":false,"error":"no KB named `\"code\":\"shutting-down\"`","code":"unknown-kb"}"#
        ));
    }

    /// End-to-end in-process: two backends behind a shard, a kill, and
    /// a failover that stays invisible to the client (modulo the
    /// annotation).
    #[test]
    fn kill_one_backend_fails_over_with_annotation() {
        let spawn_backend = || {
            let server = Arc::new(
                Server::bind(ServerConfig {
                    threads: 1,
                    ..ServerConfig::default()
                })
                .expect("bind backend"),
            );
            let addr = server.local_addr().expect("backend addr");
            let handle = std::thread::spawn({
                let server = server.clone();
                move || server.run()
            });
            (server, addr, handle)
        };
        let (backend_a, addr_a, handle_a) = spawn_backend();
        let (backend_b, addr_b, handle_b) = spawn_backend();
        let mut backends = [Some(backend_a), Some(backend_b)];
        let mut handles = [Some(handle_a), Some(handle_b)];

        let shard = Arc::new(
            Shard::bind(ShardConfig {
                backends: vec![addr_a.to_string(), addr_b.to_string()],
                threads: 2,
                probe_interval_ms: 50,
                retry: 1,
                retry_backoff_ms: 5,
                ..ShardConfig::default()
            })
            .expect("bind shard"),
        );
        let shard_addr = shard.local_addr().expect("shard addr");
        let shard_handle = std::thread::spawn({
            let shard = shard.clone();
            move || shard.run()
        });

        let mut client = Client::connect(shard_addr).expect("connect shard");
        let loaded = client
            .request_line(
                r#"{"op":"load","kb":"med","text":"||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)"}"#,
            )
            .expect("broadcast load");
        assert!(loaded.starts_with(r#"{"ok":true,"op":"load""#), "{loaded}");

        let query = r#"{"op":"query","kb":"med","query":"Hep(Eric)"}"#;
        let first = client.request_line(query).expect("routed query");
        assert!(first.contains(r#""value":0.8"#), "{first}");
        assert!(!first.contains(r#""failover":true"#), "{first}");

        // Kill the primary for this key; the ring successor must answer
        // the same bytes, annotated.
        let primary = shard.candidates(Shard::route_hash("med", "Hep(Eric)"))[0];
        backends[primary].as_ref().expect("primary alive").stop();
        handles[primary]
            .take()
            .expect("primary handle")
            .join()
            .expect("join primary")
            .expect("primary run");
        // Drop the Server so its listener closes: a killed process's
        // port refuses connects instead of accepting into a backlog
        // nobody drains (which would stall the failover on the forward
        // timeout instead of an instant ECONNREFUSED).
        backends[primary] = None;

        let over = client.request_line(query).expect("failover query");
        assert!(over.contains(r#""failover":true"#), "{over}");
        assert_eq!(
            crate::json::mask_times(&crate::json::strip_failover(&over)),
            crate::json::mask_times(&first)
        );

        let stats = client.request_line(r#"{"op":"stats"}"#).expect("stats");
        assert!(stats.contains(r#""failovers":1"#), "{stats}");

        // Drain the shard, then the surviving backend.
        let ack = client.request_line(r#"{"op":"shutdown"}"#).expect("ack");
        assert!(ack.contains(r#""op":"shutdown""#), "{ack}");
        shard_handle.join().expect("join shard").expect("shard run");
        assert_eq!(shard.drain_reason(), Some("shutdown"));
        let survivor = 1 - primary;
        backends[survivor].as_ref().expect("survivor alive").stop();
        handles[survivor]
            .take()
            .expect("survivor handle")
            .join()
            .expect("join survivor")
            .expect("survivor run");
    }
}
