//! The `rw-server` wire protocol: JSONL requests, typed and validated.
//!
//! Every request is one JSON object per line; every request gets exactly
//! one JSON object line back. Responses reuse the serving JSON of
//! [`crate::json`] for query results (so the server path is
//! byte-identical to `rwq query`/`batch` on the same engine), and carry
//! `{"ok":false,"error":...,"code":...}` for protocol-level failures —
//! a malformed line is answered with a structured error, never a
//! disconnect.
//!
//! The workspace builds offline with no external crates, so this module
//! includes a small recursive-descent JSON parser ([`Value::parse`])
//! with a recursion-depth cap: hostile input (unclosed nesting, huge
//! numbers, bad escapes) yields an `Err`, not a stack overflow.

use std::fmt;

// ---------------------------------------------------------------------
// JSON values
// ---------------------------------------------------------------------

/// A parsed JSON value. Integers without fraction/exponent are kept as
/// [`Value::Int`] so 64-bit ids (sampler seeds) survive exactly instead
/// of rounding through an `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer literal (no `.`/`e`), kept exact.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

/// A JSON syntax error with its byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure in the input line.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting deeper than this is rejected: requests are flat, and the cap
/// turns a deliberately deep line into an error instead of a stack
/// overflow in the recursive parser.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", b as char))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(format!("expected `{lit}`"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return self.err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(format!("unexpected `{}`", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(entries)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err("expected `,` or `}`");
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err("expected `,` or `]`");
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // A leading surrogate must be followed by a
                            // `\uXXXX` trailing surrogate.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return self.err("unpaired surrogate escape");
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return self.err("invalid trailing surrogate");
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp)
                        } else {
                            char::from_u32(hi)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return self.err("invalid unicode escape"),
                        }
                    }
                    _ => return self.err("invalid escape"),
                },
                Some(c) if c < 0x20 => return self.err("raw control character in string"),
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences from the raw
                    // bytes (the input is a &str, so they are valid).
                    let start = self.pos - 1;
                    let len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    if start + len > self.bytes.len() {
                        return self.err("truncated UTF-8 sequence");
                    }
                    self.pos = start + len;
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..start + len]).map_err(|_| {
                            JsonError {
                                at: start,
                                message: "invalid UTF-8".to_string(),
                            }
                        })?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return self.err("expected 4 hex digits"),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Value::Float(f)),
            _ => {
                self.pos = start;
                self.err(format!("invalid number `{text}`"))
            }
        }
    }
}

impl Value {
    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error (the protocol is strictly one value per line).
    pub fn parse(s: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing characters after the JSON value");
        }
        Ok(v)
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The exact unsigned integer payload, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Protocol errors
// ---------------------------------------------------------------------

/// Machine-readable failure classes carried in the `"code"` field of an
/// `{"ok":false,...}` response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not a valid request (bad JSON, missing fields, bad
    /// types, unknown op).
    BadRequest,
    /// The named KB is not loaded.
    UnknownKb,
    /// The KB failed to load (unreadable path or parse error).
    LoadFailed,
    /// The admission queue is full; retry later.
    Overloaded,
    /// The server is shutting down; do not retry here, fail over.
    ShuttingDown,
}

impl ErrorCode {
    /// The stable wire keyword.
    pub fn keyword(&self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownKb => "unknown-kb",
            ErrorCode::LoadFailed => "load-failed",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }
}

/// A protocol-level failure: rendered as one structured JSONL error
/// response, never a disconnect.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtoError {
    /// The failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    /// A [`ErrorCode::BadRequest`] error.
    pub fn bad_request(message: impl Into<String>) -> ProtoError {
        ProtoError {
            code: ErrorCode::BadRequest,
            message: message.into(),
        }
    }

    /// The `{"ok":false,"error":...,"code":...}` response line.
    pub fn line(&self) -> String {
        format!(
            r#"{{"ok":false,"error":"{}","code":"{}"}}"#,
            crate::json::escape(&self.message),
            self.code.keyword()
        )
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.message, self.code.keyword())
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// Where a `load` request takes its KB statements from.
#[derive(Clone, Debug, PartialEq)]
pub enum KbSource {
    /// A server-side `.rwkb` file path.
    Path(String),
    /// Inline `.rwkb` source text.
    Text(String),
}

/// Optional Monte-Carlo knobs on a `load` request: a KB loaded with
/// `"approx"` answers non-theorem queries by sampling (mirrors the
/// `--approx`/`--samples`/`--mc-seed`/`--ci` CLI flags).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ApproxParams {
    /// Total draw cap (`--samples`).
    pub samples: Option<u64>,
    /// Sampler seed (`--mc-seed`).
    pub seed: Option<u64>,
    /// Target CI half-width in (0, 0.5) (`--ci`).
    pub ci: Option<f64>,
}

/// Optional exact-counting knobs on a `load` request: the symmetry mode
/// and the rising-`N` scan window (mirror the `--symmetry`/`--min-n`/
/// `--max-n` CLI flags). Validated at parse time: window values must lie
/// in `[2, 64]` with `min_n ≤ max_n`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanParams {
    /// Enable symmetry-reduced orbit counting (`--symmetry`).
    pub symmetry: bool,
    /// Scan floor (`--min-n`).
    pub min_n: Option<usize>,
    /// Scan ceiling (`--max-n`).
    pub max_n: Option<usize>,
}

impl ScanParams {
    /// True when every knob is at its default (nothing to serialize).
    pub fn is_default(&self) -> bool {
        *self == ScanParams::default()
    }
}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `{"op":"ping"}`: liveness check.
    Ping,
    /// `{"op":"load","kb":NAME,"path"|"text":...[,"approx":{...}]
    /// [,"symmetry":true][,"min_n":N][,"max_n":N]}`: load (or replace) a
    /// named KB.
    Load {
        /// Registry name for the KB.
        kb: String,
        /// Where the statements come from.
        source: KbSource,
        /// `Some` = answer non-theorem queries by Monte-Carlo sampling.
        approx: Option<ApproxParams>,
        /// Exact-counting mode and scan window.
        scan: ScanParams,
    },
    /// `{"op":"unload","kb":NAME}`: drop a named KB.
    Unload {
        /// Registry name.
        kb: String,
    },
    /// `{"op":"list"}`: enumerate loaded KBs.
    List,
    /// `{"op":"query","kb":NAME,"query":TEXT}`: answer one query.
    Query {
        /// Registry name of the loaded KB.
        kb: String,
        /// The `L≈` query text.
        query: String,
    },
    /// `{"op":"stats"}`: serving counters (cache, stages, queue, uptime).
    Stats,
    /// `{"op":"metrics"}`: the full observability-registry snapshot
    /// (counters, gauges, latency histograms with p50/p90/p99).
    Metrics,
    /// `{"op":"sleep","ms":N}`: a worker-occupying no-op, only honored
    /// when [`crate::ServerConfig::test_ops`] is set — exists so tests
    /// can fill the admission queue deterministically.
    Sleep {
        /// How long the worker holds the slot.
        ms: u64,
    },
    /// `{"op":"shutdown"}`: stop the server after responding.
    Shutdown,
}

fn required_str(v: &Value, key: &str, op: &str) -> Result<String, ProtoError> {
    match v.get(key) {
        Some(Value::Str(s)) if !s.is_empty() => Ok(s.clone()),
        Some(Value::Str(_)) => Err(ProtoError::bad_request(format!(
            "`{op}` requires a non-empty `{key}`"
        ))),
        Some(_) => Err(ProtoError::bad_request(format!(
            "`{op}` field `{key}` must be a string"
        ))),
        None => Err(ProtoError::bad_request(format!(
            "`{op}` requires a `{key}` field"
        ))),
    }
}

fn optional_u64(v: &Value, key: &str, ctx: &str) -> Result<Option<u64>, ProtoError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(n) => n.as_u64().map(Some).ok_or_else(|| {
            ProtoError::bad_request(format!("{ctx} field `{key}` must be an unsigned integer"))
        }),
    }
}

fn parse_approx(v: &Value) -> Result<Option<ApproxParams>, ProtoError> {
    let approx = match v.get("approx") {
        None | Some(Value::Null) | Some(Value::Bool(false)) => return Ok(None),
        // `"approx":true` = sampling with all-default knobs.
        Some(Value::Bool(true)) => return Ok(Some(ApproxParams::default())),
        Some(obj @ Value::Obj(_)) => obj,
        Some(_) => {
            return Err(ProtoError::bad_request(
                "`load` field `approx` must be an object or boolean",
            ))
        }
    };
    let samples = optional_u64(approx, "samples", "`approx`")?;
    if samples == Some(0) {
        return Err(ProtoError::bad_request("`approx.samples` must be positive"));
    }
    let seed = optional_u64(approx, "seed", "`approx`")?;
    let ci = match approx.get("ci") {
        None | Some(Value::Null) => None,
        Some(n) => match n.as_f64() {
            Some(ci) if ci > 0.0 && ci < 0.5 => Some(ci),
            _ => {
                return Err(ProtoError::bad_request(
                    "`approx.ci` must be a half-width in (0, 0.5)",
                ))
            }
        },
    };
    Ok(Some(ApproxParams { samples, seed, ci }))
}

/// Parses and validates the `symmetry`/`min_n`/`max_n` knobs of a `load`
/// request against the engine's scan ceiling.
fn parse_scan(v: &Value) -> Result<ScanParams, ProtoError> {
    let symmetry = match v.get("symmetry") {
        None | Some(Value::Null) => false,
        Some(Value::Bool(b)) => *b,
        Some(_) => {
            return Err(ProtoError::bad_request(
                "`load` field `symmetry` must be a boolean",
            ))
        }
    };
    let window = |key: &str| -> Result<Option<usize>, ProtoError> {
        match optional_u64(v, key, "`load`")? {
            None => Ok(None),
            Some(n) if (2..=rw_core::solvers::MAX_SCAN_N as u64).contains(&n) => {
                Ok(Some(n as usize))
            }
            Some(n) => Err(ProtoError::bad_request(format!(
                "`load` field `{key}` must lie in [2, {}], got {n}",
                rw_core::solvers::MAX_SCAN_N
            ))),
        }
    };
    let min_n = window("min_n")?;
    let max_n = window("max_n")?;
    if let (Some(lo), Some(hi)) = (min_n, max_n) {
        if lo > hi {
            return Err(ProtoError::bad_request(format!(
                "`load` requires `min_n` <= `max_n`, got {lo} > {hi}"
            )));
        }
    }
    Ok(ScanParams {
        symmetry,
        min_n,
        max_n,
    })
}

/// Parses one request line. Anything that is not a well-formed, typed
/// request yields a [`ProtoError`] (rendered to the client as a
/// structured error response).
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let v = Value::parse(line.trim())
        .map_err(|e| ProtoError::bad_request(format!("not a JSON request: {e}")))?;
    if !matches!(v, Value::Obj(_)) {
        return Err(ProtoError::bad_request(
            "a request must be a JSON object with an `op` field",
        ));
    }
    let op = required_str(&v, "op", "request")?;
    match op.as_str() {
        "ping" => Ok(Request::Ping),
        "list" => Ok(Request::List),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        "sleep" => {
            let ms = optional_u64(&v, "ms", "`sleep`")?
                .ok_or_else(|| ProtoError::bad_request("`sleep` requires an `ms` field"))?;
            Ok(Request::Sleep { ms })
        }
        "unload" => Ok(Request::Unload {
            kb: required_str(&v, "kb", "unload")?,
        }),
        "query" => Ok(Request::Query {
            kb: required_str(&v, "kb", "query")?,
            query: required_str(&v, "query", "query")?,
        }),
        "load" => {
            let kb = required_str(&v, "kb", "load")?;
            let source = match (v.get("path"), v.get("text")) {
                (Some(_), Some(_)) => {
                    return Err(ProtoError::bad_request(
                        "`load` takes `path` or `text`, not both",
                    ))
                }
                (Some(_), None) => KbSource::Path(required_str(&v, "path", "load")?),
                (None, Some(_)) => KbSource::Text(required_str(&v, "text", "load")?),
                (None, None) => {
                    return Err(ProtoError::bad_request(
                        "`load` requires a `path` or `text` field",
                    ))
                }
            };
            Ok(Request::Load {
                kb,
                source,
                approx: parse_approx(&v)?,
                scan: parse_scan(&v)?,
            })
        }
        other => Err(ProtoError::bad_request(format!(
            "unknown op `{}` (expected ping|load|unload|list|query|stats|metrics|shutdown)",
            other
        ))),
    }
}

impl Request {
    /// The canonical wire form: parsing it back yields an equal request,
    /// and serializing again yields these exact bytes (the round-trip
    /// property the protocol test suite pins down).
    pub fn serialize(&self) -> String {
        use crate::json::escape;
        match self {
            Request::Ping => r#"{"op":"ping"}"#.to_string(),
            Request::List => r#"{"op":"list"}"#.to_string(),
            Request::Stats => r#"{"op":"stats"}"#.to_string(),
            Request::Metrics => r#"{"op":"metrics"}"#.to_string(),
            Request::Shutdown => r#"{"op":"shutdown"}"#.to_string(),
            Request::Sleep { ms } => format!(r#"{{"op":"sleep","ms":{ms}}}"#),
            Request::Unload { kb } => {
                format!(r#"{{"op":"unload","kb":"{}"}}"#, escape(kb))
            }
            Request::Query { kb, query } => format!(
                r#"{{"op":"query","kb":"{}","query":"{}"}}"#,
                escape(kb),
                escape(query)
            ),
            Request::Load {
                kb,
                source,
                approx,
                scan,
            } => {
                let mut out = format!(r#"{{"op":"load","kb":"{}""#, escape(kb));
                match source {
                    KbSource::Path(p) => out.push_str(&format!(r#","path":"{}""#, escape(p))),
                    KbSource::Text(t) => out.push_str(&format!(r#","text":"{}""#, escape(t))),
                }
                if let Some(a) = approx {
                    let mut fields = Vec::new();
                    if let Some(s) = a.samples {
                        fields.push(format!(r#""samples":{s}"#));
                    }
                    if let Some(s) = a.seed {
                        fields.push(format!(r#""seed":{s}"#));
                    }
                    if let Some(ci) = a.ci {
                        fields.push(format!(r#""ci":{ci}"#));
                    }
                    if fields.is_empty() {
                        out.push_str(r#","approx":true"#);
                    } else {
                        out.push_str(&format!(r#","approx":{{{}}}"#, fields.join(",")));
                    }
                }
                if scan.symmetry {
                    out.push_str(r#","symmetry":true"#);
                }
                if let Some(n) = scan.min_n {
                    out.push_str(&format!(r#","min_n":{n}"#));
                }
                if let Some(n) = scan.max_n {
                    out.push_str(&format!(r#","max_n":{n}"#));
                }
                out.push('}');
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_parse() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(Value::parse("4.5").unwrap(), Value::Float(4.5));
        assert_eq!(Value::parse("2e3").unwrap(), Value::Float(2000.0));
        assert_eq!(
            Value::parse(r#""a\nbé😀""#).unwrap(),
            Value::Str("a\nbé😀".to_string())
        );
        assert_eq!(
            Value::parse(r#"[1, "x", {"k": null}]"#).unwrap(),
            Value::Arr(vec![
                Value::Int(1),
                Value::Str("x".to_string()),
                Value::Obj(vec![("k".to_string(), Value::Null)]),
            ])
        );
        // Exact 64-bit integers survive (no f64 rounding).
        assert_eq!(
            Value::parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn malformed_values_error_rather_than_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "tru",
            r#""unterminated"#,
            r#""bad \q escape""#,
            r#""\ud83d alone""#,
            "1.2.3",
            "nan",
            "{} trailing",
            "\u{1}",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Deep nesting is capped, not stack-overflowed.
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = Value::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn requests_parse_and_validate() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            parse_request(r#"{"op":"query","kb":"med","query":"Hep(Eric)"}"#).unwrap(),
            Request::Query {
                kb: "med".to_string(),
                query: "Hep(Eric)".to_string()
            }
        );
        let load = parse_request(
            r#"{"op":"load","kb":"m","text":"P(C)","approx":{"samples":512,"seed":7,"ci":0.05}}"#,
        )
        .unwrap();
        assert_eq!(
            load,
            Request::Load {
                kb: "m".to_string(),
                source: KbSource::Text("P(C)".to_string()),
                approx: Some(ApproxParams {
                    samples: Some(512),
                    seed: Some(7),
                    ci: Some(0.05),
                }),
                scan: ScanParams::default(),
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"load","kb":"m","path":"kb.rwkb","approx":true}"#).unwrap(),
            Request::Load {
                kb: "m".to_string(),
                source: KbSource::Path("kb.rwkb".to_string()),
                approx: Some(ApproxParams::default()),
                scan: ScanParams::default(),
            }
        );
        assert_eq!(
            parse_request(
                r#"{"op":"load","kb":"m","text":"P(C)","symmetry":true,"min_n":4,"max_n":32}"#
            )
            .unwrap(),
            Request::Load {
                kb: "m".to_string(),
                source: KbSource::Text("P(C)".to_string()),
                approx: None,
                scan: ScanParams {
                    symmetry: true,
                    min_n: Some(4),
                    max_n: Some(32),
                },
            }
        );
    }

    #[test]
    fn scan_windows_are_validated() {
        for bad in [
            r#"{"op":"load","kb":"m","text":"P(C)","min_n":1}"#,
            r#"{"op":"load","kb":"m","text":"P(C)","max_n":65}"#,
            r#"{"op":"load","kb":"m","text":"P(C)","min_n":9,"max_n":8}"#,
            r#"{"op":"load","kb":"m","text":"P(C)","symmetry":"yes"}"#,
            r#"{"op":"load","kb":"m","text":"P(C)","max_n":-3}"#,
        ] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{bad}");
        }
    }

    #[test]
    fn bad_requests_carry_the_bad_request_code() {
        for bad in [
            "not json",
            "[1,2]",
            r#"{"kb":"x"}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"query","kb":"m"}"#,
            r#"{"op":"query","kb":"","query":"q"}"#,
            r#"{"op":"load","kb":"m"}"#,
            r#"{"op":"load","kb":"m","path":"a","text":"b"}"#,
            r#"{"op":"load","kb":"m","text":"P(C)","approx":{"ci":0.7}}"#,
            r#"{"op":"load","kb":"m","text":"P(C)","approx":{"samples":0}}"#,
            r#"{"op":"load","kb":"m","text":"P(C)","approx":{"seed":-1}}"#,
            r#"{"op":"sleep"}"#,
        ] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{bad}");
            let line = err.line();
            assert!(line.starts_with(r#"{"ok":false,"error":""#), "{line}");
            assert!(line.ends_with(r#""code":"bad-request"}"#), "{line}");
        }
    }

    #[test]
    fn serialize_parse_serialize_is_identity() {
        let requests = vec![
            Request::Ping,
            Request::List,
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
            Request::Sleep { ms: 250 },
            Request::Unload {
                kb: "a \"quoted\" name".to_string(),
            },
            Request::Query {
                kb: "med".to_string(),
                query: "||Hep(x) | Jaun(x)||_x ~=_1 0.8".to_string(),
            },
            Request::Load {
                kb: "m".to_string(),
                source: KbSource::Text("P(C); Q(C)\nR(C)".to_string()),
                approx: Some(ApproxParams {
                    samples: Some(u64::MAX),
                    seed: Some(12345),
                    ci: Some(0.125),
                }),
                scan: ScanParams::default(),
            },
            Request::Load {
                kb: "deep".to_string(),
                source: KbSource::Path("kb.rwkb".to_string()),
                approx: None,
                scan: ScanParams {
                    symmetry: true,
                    min_n: Some(2),
                    max_n: Some(40),
                },
            },
        ];
        for r in requests {
            let wire = r.serialize();
            let back = parse_request(&wire).unwrap();
            assert_eq!(back, r, "{wire}");
            assert_eq!(back.serialize(), wire);
        }
    }
}
