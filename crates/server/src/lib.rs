#![warn(missing_docs)]

//! `rw-server`: a persistent, multi-client serving layer over the
//! random-worlds engine.
//!
//! One-shot `rwq query` re-parses and re-fingerprints its knowledge base
//! on every invocation and throws the warm
//! [`AnswerCache`](rw_core::AnswerCache) away on exit. This crate keeps
//! all of that **resident**: a readiness event loop ([`mod@server`],
//! driven by a direct-syscall [`mod@poll`] over nonblocking sockets)
//! speaks the same JSONL request/response format as `rwq batch`,
//! multiplexing thousands of connections — each a small [`mod@conn`]
//! state machine — on one thread. A [`registry::KbRegistry`] holds named
//! loaded KBs (each with its fingerprint computed once and a pinned
//! engine — exact or Monte-Carlo), and a scoped-thread worker pool
//! behind a **bounded admission queue** answers queries through one
//! shared sharded cache; per-connection response slots keep pipelined
//! answers in request order. Overload is met with a structured
//! `{"ok":false,...,"code":"overloaded"}` rejection, never unbounded
//! buffering, and a `stats` request exposes cache counters, per-stage
//! totals, queue depth and uptime.
//!
//! ```no_run
//! use rw_server::{Client, Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! std::thread::spawn(move || server.run().unwrap());
//!
//! let mut client = Client::connect(addr).unwrap();
//! client.request_line(r#"{"op":"load","kb":"med","text":"||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)"}"#).unwrap();
//! let answer = client.request_line(r#"{"op":"query","kb":"med","query":"Hep(Eric)"}"#).unwrap();
//! assert!(answer.contains(r#""value":0.8"#));
//! ```
//!
//! The crate also hosts the two modules every serving surface shares —
//! [`json`] (the single JSON renderer that makes `rwq query`, `batch`
//! and the server path byte-identical on the golden corpus) and
//! [`mod@format`] (the `.rwkb` loader) — plus the wire [`proto`]col and a
//! line-oriented [`Client`].

pub mod client;
pub mod conn;
pub mod format;
pub mod json;
pub mod poll;
pub mod proto;
pub mod queue;
pub mod registry;
pub mod server;
pub mod shard;
pub mod signal;
pub mod snapshot;

pub use client::Client;
pub use format::{load_kb, parse_kb, LoadError};
pub use proto::{parse_request, ApproxParams, ErrorCode, KbSource, ProtoError, Request, Value};
pub use queue::{JobQueue, PushError};
pub use registry::{KbRegistry, LoadedKb};
pub use server::{Server, ServerConfig, MAX_LINE};
pub use shard::{Shard, ShardConfig};
pub use snapshot::{SnapshotError, SnapshotStats};
