//! The bounded admission queue between connection handlers and the
//! worker pool.
//!
//! Accepting work without bound turns a traffic spike into unbounded
//! memory growth and multi-second tail latencies; the serving layer
//! instead admits at most `capacity` jobs and **rejects** the rest with
//! a structured `overloaded` error the client can retry on. The queue is
//! a plain `Mutex<VecDeque>` plus a `Condvar` — std-only, like the rest
//! of the workspace — and closing it wakes every blocked worker so
//! shutdown never hangs.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — backpressure, the caller should answer
    /// with an `overloaded` error rather than buffer.
    Full,
    /// The queue was closed (server shutting down).
    Closed,
}

struct QueueState<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC job queue (see the module docs).
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `capacity` (≥ 1) pending jobs.
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting (admitted, not yet claimed by a worker).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").jobs.len()
    }

    /// Admits a job, or refuses immediately — never blocks the caller.
    pub fn push(&self, job: T) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.jobs.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available or the queue closes; `None` means
    /// the worker should exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: pending jobs are still drained by workers, new
    /// pushes fail with [`PushError::Closed`], and blocked workers wake.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn push_pop_is_fifo() {
        let q = JobQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let q = JobQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(PushError::Full));
        // Draining one slot readmits.
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = JobQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(1).unwrap();
        assert_eq!(q.push(2), Err(PushError::Full));
    }

    #[test]
    fn close_wakes_blocked_workers_and_drains_pending() {
        let q = JobQueue::new(4);
        q.push(7).unwrap();
        let drained = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while let Some(_job) = q.pop() {
                        drained.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            // Give the workers a moment to block, then close.
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.close();
        });
        assert_eq!(drained.load(Ordering::Relaxed), 1);
        assert_eq!(q.push(8), Err(PushError::Closed));
    }
}
