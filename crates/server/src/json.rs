//! Minimal JSON emission for the JSONL serving surface.
//!
//! The workspace has no external dependencies, so this module hand-rolls
//! the (tiny) JSON surface the serving paths need: string escaping and
//! the rendering of a [`rw_core::Response`] or error into one
//! self-contained object per line. It is the *single* renderer behind
//! `rwq query`'s JSON mode, `rwq batch` and the `rw-server` query
//! responses — one implementation is what makes the three paths
//! byte-identical on the golden corpus.

use rw_core::{BatchReport, Belief, EngineError, Response, StageStatus};
use std::fmt::Write as _;

/// Escapes `s` as the *contents* of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A finite JSON number (JSON has no NaN/∞; those become `null`).
fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The belief as a tagged JSON object.
pub fn belief_json(b: &Belief) -> String {
    match b {
        Belief::Point(v) => format!(r#"{{"type":"point","value":{}}}"#, number(*v)),
        Belief::Interval(lo, hi) => format!(
            r#"{{"type":"interval","lo":{},"hi":{}}}"#,
            number(*lo),
            number(*hi)
        ),
        Belief::NonRobust(vs) => {
            let candidates: Vec<String> = vs.iter().map(|v| number(*v)).collect();
            format!(
                r#"{{"type":"non-robust","candidates":[{}]}}"#,
                candidates.join(",")
            )
        }
        Belief::Approximate {
            value,
            ci_half_width,
        } => format!(
            r#"{{"type":"approximate","value":{},"ci_half_width":{}}}"#,
            number(*value),
            number(*ci_half_width)
        ),
        Belief::Undefined => r#"{"type":"undefined"}"#.to_string(),
    }
}

/// One successful JSONL result line (no trailing newline). `cache_hit`
/// mirrors [`Response::cached`]; `elapsed_us` is the total recorded stage
/// time (a cache hit's is the lookup alone).
pub fn response_line(query: &str, response: &Response) -> String {
    let mut trace = String::from("[");
    let mut total_us: u128 = 0;
    for (i, s) in response.trace.steps().iter().enumerate() {
        if i > 0 {
            trace.push(',');
        }
        let _ = write!(
            trace,
            r#"{{"stage":"{}","outcome":"{}""#,
            escape(&s.stage),
            s.status.keyword()
        );
        if let StageStatus::Declined(r) | StageStatus::BudgetExhausted(r) = &s.status {
            let _ = write!(trace, r#","reason":"{}""#, escape(r));
        }
        let _ = write!(trace, r#","elapsed_us":{}}}"#, s.elapsed.as_micros());
        total_us += s.elapsed.as_micros();
    }
    trace.push(']');
    let mc = counters_json(&response.provenance);
    format!(
        r#"{{"query":"{}","ok":true,"cache_hit":{},"elapsed_us":{},"belief":{}{},"provenance":"{}","trace":{}}}"#,
        escape(query),
        response.cached,
        total_us,
        belief_json(&response.belief),
        mc,
        escape(&response.provenance.to_string()),
        trace
    )
}

/// The provenance's effort counters as a `,"mc":{…}` / `,"enum":{…}`
/// JSON fragment (leading comma included), or the empty string when the
/// provenance carries none. Monte-Carlo answers report their sampler
/// counts; compiled branch-and-count answers report the numerator-side
/// visited/branched node counts, which are deterministic at any thread
/// count — oracle-mode enumeration reports no counts and gets no object.
pub fn counters_json(provenance: &rw_core::Provenance) -> String {
    match provenance {
        rw_core::Provenance::MonteCarlo {
            drawn,
            accepted,
            n_points,
        } => format!(r#","mc":{{"drawn":{drawn},"accepted":{accepted},"n_points":{n_points}}}"#),
        rw_core::Provenance::Enumeration {
            max_n,
            visited,
            branched,
            orbits,
        } if *visited > 0 || *orbits > 0 => {
            // `orbits` appears only in symmetry mode (and then visited is
            // 0), so default-mode lines keep their historical bytes.
            let orbits = if *orbits > 0 {
                format!(r#","orbits":{orbits}"#)
            } else {
                String::new()
            };
            format!(
                r#","enum":{{"max_n":{max_n},"visited":{visited},"branched":{branched}{orbits}}}"#
            )
        }
        _ => String::new(),
    }
}

/// One JSONL result line for either arm of a batch result.
pub fn result_line(query: &str, result: &Result<Response, EngineError>) -> String {
    match result {
        Ok(r) => response_line(query, r),
        Err(e) => error_line(query, &e.to_string()),
    }
}

/// The closing summary line of a `rwq batch` run: aggregate counts so a
/// consumer (or an operator reading the tail) sees `{answered, failed}`
/// without counting lines, plus cache/threading/timing detail and — when
/// the parallel executor ran — per-stage totals.
pub fn summary_line(report: &BatchReport) -> String {
    let mut out = format!(
        r#"{{"summary":{{"queries":{},"answered":{},"failed":{},"cache_hits":{},"cache_misses":{},"denoms":{{"hits":{},"misses":{}}},"threads":{},"wall_us":{},"cpu_us":{}"#,
        report.queries,
        report.answered,
        report.failed,
        report.cache_hits,
        report.cache_misses,
        report.denom_hits,
        report.denom_misses,
        report.threads,
        report.wall.as_micros(),
        report.cpu.as_micros()
    );
    if !report.stages.is_empty() {
        out.push_str(r#","stages":["#);
        out.push_str(&stage_totals_json(&report.stages));
        out.push(']');
    }
    out.push_str("}}");
    out
}

/// The body of a `"stages":[...]` array: one object per
/// [`rw_core::StageTotals`], in pipeline order.
pub fn stage_totals_json(stages: &[rw_core::StageTotals]) -> String {
    let mut out = String::new();
    for (i, s) in stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            r#"{{"stage":"{}","answered":{},"declined":{},"budget_exhausted":{},"elapsed_us":{}}}"#,
            escape(&s.stage),
            s.answered,
            s.declined,
            s.budget_exhausted,
            s.elapsed.as_micros()
        );
    }
    out
}

/// One failed JSONL result line (no trailing newline).
pub fn error_line(query: &str, error: &str) -> String {
    format!(
        r#"{{"query":"{}","ok":false,"error":"{}"}}"#,
        escape(query),
        escape(error)
    )
}

/// A batch-fatal JSONL line (no query context, e.g. the KB failed to
/// load) — keeps `rwq batch` stdout parseable as one JSON object per
/// line even on startup failure.
pub fn fatal_line(error: &str) -> String {
    format!(r#"{{"ok":false,"error":"{}"}}"#, escape(error))
}

/// Masks every `..._us":<digits>` wall-time value in a JSON line — the
/// only legitimately nondeterministic bytes in the serving output. Lets
/// callers (and the golden-corpus suite) compare runs for byte-identity
/// across thread counts, processes and reruns.
pub fn mask_times(s: &str) -> String {
    let mut out = String::new();
    let mut rest = s;
    while let Some(i) = rest.find("_us\":") {
        out.push_str(&rest[..i + 5]);
        rest = rest[i + 5..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// Removes every `,"failover":true` annotation a [`crate::shard::Shard`]
/// front added to a response line, recovering the backend's exact
/// bytes. With [`mask_times`], this is the soak suite's equality lens:
/// sharded serving must be byte-identical to single-node serving modulo
/// wall times and the failover marker.
pub fn strip_failover(s: &str) -> String {
    s.replace(r#","failover":true"#, "")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape(r"a\b"), r"a\\b");
        assert_eq!(escape("a\nb\tc"), r"a\nb\tc");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("Pr∞"), "Pr∞");
    }

    #[test]
    fn belief_variants_serialize() {
        assert_eq!(
            belief_json(&Belief::Point(0.5)),
            r#"{"type":"point","value":0.5}"#
        );
        assert_eq!(
            belief_json(&Belief::Interval(0.25, 0.75)),
            r#"{"type":"interval","lo":0.25,"hi":0.75}"#
        );
        assert_eq!(
            belief_json(&Belief::NonRobust(vec![0.0, 1.0])),
            r#"{"type":"non-robust","candidates":[0,1]}"#
        );
        assert_eq!(belief_json(&Belief::Undefined), r#"{"type":"undefined"}"#);
        assert_eq!(
            belief_json(&Belief::Point(f64::NAN)),
            r#"{"type":"point","value":null}"#
        );
    }

    #[test]
    fn approximate_beliefs_serialize_with_ci_and_mc_counts() {
        assert_eq!(
            belief_json(&Belief::Approximate {
                value: 0.64,
                ci_half_width: 0.02
            }),
            r#"{"type":"approximate","value":0.64,"ci_half_width":0.02}"#
        );
        let response = Response {
            belief: Belief::Approximate {
                value: 0.64,
                ci_half_width: 0.02,
            },
            provenance: rw_core::Provenance::MonteCarlo {
                drawn: 8192,
                accepted: 1024,
                n_points: 3,
            },
            trace: rw_core::Trace::default(),
            cached: false,
        };
        let line = response_line("Q(C)", &response);
        assert!(
            line.contains(r#""mc":{"drawn":8192,"accepted":1024,"n_points":3}"#),
            "{line}"
        );
        assert!(line.contains(r#""type":"approximate""#), "{line}");
    }

    #[test]
    fn compiled_counting_answers_carry_their_search_effort() {
        let mut response = Response {
            belief: Belief::Point(0.5),
            provenance: rw_core::Provenance::Enumeration {
                max_n: 6,
                visited: 1234,
                branched: 321,
                orbits: 0,
            },
            trace: rw_core::Trace::default(),
            cached: false,
        };
        let line = response_line("Likes(B, A)", &response);
        assert!(
            line.contains(r#""enum":{"max_n":6,"visited":1234,"branched":321}"#),
            "{line}"
        );
        // Symmetry-mode answers report orbit representatives instead of
        // search nodes.
        response.provenance = rw_core::Provenance::Enumeration {
            max_n: 40,
            visited: 0,
            branched: 0,
            orbits: 777,
        };
        let line = response_line("Likes(B, A)", &response);
        assert!(
            line.contains(r#""enum":{"max_n":40,"visited":0,"branched":0,"orbits":777}"#),
            "{line}"
        );
        // Oracle-mode enumeration (no effort counts) keeps the
        // historical line shape.
        response.provenance = rw_core::Provenance::Enumeration {
            max_n: 4,
            visited: 0,
            branched: 0,
            orbits: 0,
        };
        let line = response_line("Likes(B, A)", &response);
        assert!(!line.contains(r#""enum""#), "{line}");
    }

    #[test]
    fn mask_times_strips_only_wall_time_digits() {
        let line = r#"{"elapsed_us":123,"belief":{"value":0.5},"trace":[{"elapsed_us":7}]}"#;
        assert_eq!(
            mask_times(line),
            r#"{"elapsed_us":,"belief":{"value":0.5},"trace":[{"elapsed_us":}]}"#
        );
        assert_eq!(mask_times("no times here"), "no times here");
    }

    #[test]
    fn error_lines_are_well_formed() {
        assert_eq!(
            error_line("P(", "unexpected end"),
            r#"{"query":"P(","ok":false,"error":"unexpected end"}"#
        );
    }

    #[test]
    fn summary_lines_carry_counts_and_stage_totals() {
        use rw_core::StageTotals;
        use std::time::Duration;
        let mut report = BatchReport {
            queries: 3,
            answered: 2,
            failed: 1,
            cache_hits: 1,
            cache_misses: 2,
            denom_hits: 5,
            denom_misses: 3,
            threads: 4,
            wall: Duration::from_micros(120),
            cpu: Duration::from_micros(400),
            stages: Vec::new(),
        };
        let line = summary_line(&report);
        assert!(line.starts_with(r#"{"summary":{"#), "{line}");
        assert!(line.contains(r#""answered":2,"failed":1"#), "{line}");
        assert!(
            line.contains(r#""cache_hits":1,"cache_misses":2,"denoms":{"hits":5,"misses":3}"#),
            "{line}"
        );
        assert!(!line.contains(r#""stages""#), "{line}");
        report.stages.push(StageTotals {
            stage: "theorems".to_string(),
            answered: 2,
            declined: 0,
            budget_exhausted: 0,
            elapsed: Duration::from_micros(90),
        });
        let line = summary_line(&report);
        assert!(
            line.contains(r#""stages":[{"stage":"theorems","answered":2"#),
            "{line}"
        );
    }
}
