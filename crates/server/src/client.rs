//! A minimal line-oriented client for the serving protocol.
//!
//! Wraps one TCP connection: send a request line, read exactly one
//! response line. `rwq client` is a thin stdin/stdout loop over this,
//! and the e2e/soak suites drive servers through it. Lock-step
//! ([`Client::request_line`]) and pipelined ([`Client::send_line`] /
//! [`Client::recv_line`]) use are both supported — the server answers
//! one line per request, in order, either way.

use crate::proto::Request;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a serving address (e.g. `127.0.0.1:7878`).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connects with a bound on the TCP handshake — for health probes
    /// and proxy forwarding, where a dead backend must fail fast
    /// instead of hanging in `connect`.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Applies read/write timeouts to the connection (both halves share
    /// one socket), so a wedged peer cannot block the caller forever.
    pub fn set_timeouts(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)
    }

    /// Sends one raw request line (the newline is appended here).
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads one response line (without its newline). An unexpected EOF
    /// is an error — the server answers every request it read.
    pub fn recv_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\n', '\r']).to_string())
    }

    /// Lock-step request: send one line, read the one response.
    pub fn request_line(&mut self, line: &str) -> std::io::Result<String> {
        self.send_line(line)?;
        self.recv_line()
    }

    /// Lock-step request with a typed [`Request`].
    pub fn request(&mut self, request: &Request) -> std::io::Result<String> {
        self.request_line(&request.serialize())
    }
}
