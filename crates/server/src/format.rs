//! The `.rwkb` knowledge-base file format.
//!
//! A file is a sequence of `L≈` statements in the workspace's concrete
//! syntax, one per line (or several on a line separated by `;`). Lines
//! starting with `#` — and trailing `# …` fragments — are comments. Blank
//! lines separate nothing. Example:
//!
//! ```text
//! # 80% of jaundiced patients have hepatitis.
//! ||Hep(x) | Jaun(x)||_x ~=_1 0.8
//! Jaun(Eric)            # the patient at hand
//! ```
//!
//! Two *directive formats* compile to `L≈` through the same loader, so
//! the paper's §7.1 temporal scenarios and §3 default-reasoning suites
//! are first-class knowledge bases on every serving surface. A source
//! whose first non-comment line starts with `@` is dispatched on it:
//!
//! * `@temporal [causal|naive-shared|naive-distinct]` — the rest is
//!   the [`rw_temporal::dsl`] scenario syntax (`fluent`/`init`/`wait`/
//!   `step`/`observe`), compiled under the named frame representation;
//! * `@defaults` — the rest is the [`rw_defaults::statistical`] suite
//!   syntax (`fact`/`axiom`/`rule`), each rule compiled to its
//!   statistical reading `A(x) ->_i B(x)`.
//!
//! The module lives in `rw-server` (rather than the CLI) because every
//! serving surface loads KBs through it: `rwq query`/`batch` on their
//! files and the server's `load` request on both `path` and inline
//! `text` sources, so one parser defines what a knowledge base is.

use rw_logic::{KnowledgeBase, ParseError};
use std::fmt;
use std::path::Path;

/// Errors from loading a `.rwkb` file.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// Parse failure, tagged with the 1-based source line.
    Parse {
        /// 1-based line number in the source file.
        line: usize,
        /// The underlying parse error.
        error: ParseError,
    },
    /// The file contains no statements.
    Empty,
    /// A `@temporal`/`@defaults` directive source failed to parse or
    /// compile, tagged with the 1-based source line.
    Directive {
        /// 1-based line number in the source file.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "cannot read knowledge base: {e}"),
            LoadError::Parse { line, error } => write!(f, "line {line}: {error}"),
            LoadError::Empty => write!(f, "knowledge base contains no statements"),
            LoadError::Directive { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> LoadError {
        LoadError::Io(e)
    }
}

/// Strips a `#` comment, respecting nothing else (the `L≈` syntax has no
/// string literals, so `#` is unambiguous).
fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// The directive (`@…` first token) a source opens with, if any, with
/// the 1-based line it sits on.
fn leading_directive(src: &str) -> Option<(usize, &str)> {
    for (idx, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if !line.starts_with('@') {
            return None;
        }
        let word = line.split_whitespace().next().unwrap_or(line);
        return Some((idx + 1, word));
    }
    None
}

/// Compiles a directive source (`@temporal`/`@defaults`) down to `L≈`
/// statements and parses those. The compiled text is trusted output of
/// our own compilers, so a parse failure there is reported as a
/// directive error rather than a line-tagged statement error.
fn parse_directive_kb(src: &str, line: usize, word: &str) -> Result<KnowledgeBase, LoadError> {
    let compiled = match word {
        "@temporal" => {
            let (scenario, rep) =
                rw_temporal::parse_source(src).map_err(|e| LoadError::Directive {
                    line: e.line,
                    message: e.message,
                })?;
            rw_temporal::compile_source(&scenario, rep)
        }
        "@defaults" => rw_defaults::statistical::parse_source(src)
            .map_err(|e| LoadError::Directive {
                line: e.line,
                message: e.message,
            })?
            .to_l_source(),
        other => {
            return Err(LoadError::Directive {
                line,
                message: format!("unknown directive `{other}` (expected @temporal or @defaults)"),
            })
        }
    };
    KnowledgeBase::parse(&compiled).map_err(|error| LoadError::Directive {
        line,
        message: format!("compiled {word} source does not parse: {error}"),
    })
}

/// Parses `.rwkb` source text into a knowledge base.
///
/// A source whose first non-comment line starts with `@` is a directive
/// format (see the module docs); everything else is plain `L≈`.
///
/// ```
/// let kb = rw_server::format::parse_kb(
///     "# comment\n||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\n",
/// ).unwrap();
/// assert_eq!(kb.conjuncts().len(), 2);
/// ```
pub fn parse_kb(src: &str) -> Result<KnowledgeBase, LoadError> {
    if let Some((line, word)) = leading_directive(src) {
        return parse_directive_kb(src, line, word);
    }
    let mut kb = KnowledgeBase::new();
    let mut statements = 0usize;
    for (idx, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            kb.assert(stmt).map_err(|error| LoadError::Parse {
                line: idx + 1,
                error,
            })?;
            statements += 1;
        }
    }
    if statements == 0 {
        return Err(LoadError::Empty);
    }
    Ok(kb)
}

/// Loads a knowledge base from a file path.
pub fn load_kb(path: &Path) -> Result<KnowledgeBase, LoadError> {
    parse_kb(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_statements_and_comments() {
        let kb = parse_kb(
            "# header comment\n\
             ||Hep(x) | Jaun(x)||_x ~=_1 0.8\n\
             \n\
             Jaun(Eric)  # trailing comment\n",
        )
        .unwrap();
        assert_eq!(kb.conjuncts().len(), 2);
    }

    #[test]
    fn semicolons_split_statements_within_a_line() {
        let kb = parse_kb("P(C); Q(C)\n").unwrap();
        assert_eq!(kb.conjuncts().len(), 2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_kb("P(C)\n||broken\n").unwrap_err();
        match err {
            LoadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn empty_files_are_rejected() {
        assert!(matches!(
            parse_kb("# only comments\n\n"),
            Err(LoadError::Empty)
        ));
    }

    #[test]
    fn stray_semicolons_are_harmless() {
        let kb = parse_kb(";P(C);;\n").unwrap();
        assert_eq!(kb.conjuncts().len(), 1);
    }

    #[test]
    fn temporal_directive_compiles_to_a_kb() {
        let kb = parse_kb(
            "# one-step shooting\n\
             @temporal causal\n\
             fluent Loaded\n\
             fluent Alive\n\
             init Loaded\n\
             init Alive\n\
             step shoot requires Loaded causes !Alive\n",
        )
        .unwrap();
        // Effect axiom, frame statements for the unaffected polarities,
        // and the two init facts all survive compilation.
        assert!(kb.conjuncts().len() >= 4);
    }

    #[test]
    fn defaults_directive_compiles_to_a_kb() {
        let kb = parse_kb(
            "@defaults\n\
             fact Penguin(Tweety)\n\
             axiom forall x (Penguin(x) => Bird(x))\n\
             rule Bird(x) -> Fly(x)\n\
             rule Penguin(x) -> !Fly(x)\n",
        )
        .unwrap();
        assert_eq!(kb.conjuncts().len(), 4);
    }

    #[test]
    fn directive_errors_carry_full_source_line_numbers() {
        let err = parse_kb("# leading comment\n@temporal causal\nfluent Alive\nbogus line\n")
            .unwrap_err();
        match err {
            LoadError::Directive { line, .. } => assert_eq!(line, 4),
            other => panic!("expected directive error, got {other}"),
        }
    }

    #[test]
    fn unknown_directives_are_rejected() {
        let err = parse_kb("@mystery\nP(C)\n").unwrap_err();
        match err {
            LoadError::Directive { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("@mystery"), "message: {message}");
            }
            other => panic!("expected directive error, got {other}"),
        }
    }

    #[test]
    fn plain_sources_still_reject_at_signs_later_on() {
        // Only the *first* non-comment line dispatches; an `@` later in
        // a plain source is an ordinary parse error.
        let err = parse_kb("P(C)\n@temporal\n").unwrap_err();
        assert!(matches!(err, LoadError::Parse { line: 2, .. }));
    }
}
