//! The `.rwkb` knowledge-base file format.
//!
//! A file is a sequence of `L≈` statements in the workspace's concrete
//! syntax, one per line (or several on a line separated by `;`). Lines
//! starting with `#` — and trailing `# …` fragments — are comments. Blank
//! lines separate nothing. Example:
//!
//! ```text
//! # 80% of jaundiced patients have hepatitis.
//! ||Hep(x) | Jaun(x)||_x ~=_1 0.8
//! Jaun(Eric)            # the patient at hand
//! ```
//!
//! The module lives in `rw-server` (rather than the CLI) because every
//! serving surface loads KBs through it: `rwq query`/`batch` on their
//! files and the server's `load` request on both `path` and inline
//! `text` sources, so one parser defines what a knowledge base is.

use rw_logic::{KnowledgeBase, ParseError};
use std::fmt;
use std::path::Path;

/// Errors from loading a `.rwkb` file.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// Parse failure, tagged with the 1-based source line.
    Parse {
        /// 1-based line number in the source file.
        line: usize,
        /// The underlying parse error.
        error: ParseError,
    },
    /// The file contains no statements.
    Empty,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "cannot read knowledge base: {e}"),
            LoadError::Parse { line, error } => write!(f, "line {line}: {error}"),
            LoadError::Empty => write!(f, "knowledge base contains no statements"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> LoadError {
        LoadError::Io(e)
    }
}

/// Strips a `#` comment, respecting nothing else (the `L≈` syntax has no
/// string literals, so `#` is unambiguous).
fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Parses `.rwkb` source text into a knowledge base.
///
/// ```
/// let kb = rw_server::format::parse_kb(
///     "# comment\n||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\n",
/// ).unwrap();
/// assert_eq!(kb.conjuncts().len(), 2);
/// ```
pub fn parse_kb(src: &str) -> Result<KnowledgeBase, LoadError> {
    let mut kb = KnowledgeBase::new();
    let mut statements = 0usize;
    for (idx, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            kb.assert(stmt).map_err(|error| LoadError::Parse {
                line: idx + 1,
                error,
            })?;
            statements += 1;
        }
    }
    if statements == 0 {
        return Err(LoadError::Empty);
    }
    Ok(kb)
}

/// Loads a knowledge base from a file path.
pub fn load_kb(path: &Path) -> Result<KnowledgeBase, LoadError> {
    parse_kb(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_statements_and_comments() {
        let kb = parse_kb(
            "# header comment\n\
             ||Hep(x) | Jaun(x)||_x ~=_1 0.8\n\
             \n\
             Jaun(Eric)  # trailing comment\n",
        )
        .unwrap();
        assert_eq!(kb.conjuncts().len(), 2);
    }

    #[test]
    fn semicolons_split_statements_within_a_line() {
        let kb = parse_kb("P(C); Q(C)\n").unwrap();
        assert_eq!(kb.conjuncts().len(), 2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_kb("P(C)\n||broken\n").unwrap_err();
        match err {
            LoadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn empty_files_are_rejected() {
        assert!(matches!(
            parse_kb("# only comments\n\n"),
            Err(LoadError::Empty)
        ));
    }

    #[test]
    fn stray_semicolons_are_harmless() {
        let kb = parse_kb(";P(C);;\n").unwrap();
        assert_eq!(kb.conjuncts().len(), 1);
    }
}
