//! Concurrency soak: 8 clients × 100 mixed queries against one server.
//!
//! What a concurrent serving layer must never do: interleave bytes of
//! two responses on one connection, reorder a client's answers, or give
//! two clients different beliefs for the same query. Every query in the
//! mix is theorem-answerable (microseconds each), so the soak exercises
//! contention — shared cache, admission queue, worker pool — not solver
//! runtime, and finishes quickly even in debug builds (the CI job wraps
//! it in a hard timeout all the same).

use rw_server::{Client, Server, ServerConfig, Value};
use std::sync::Arc;

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 100;

/// Query mix with the belief each one must produce. Several surface
/// forms share a canonical form, so the shared cache sees plenty of
/// cross-client hits.
const MIX: &[(&str, f64)] = &[
    ("Hep(Eric)", 0.8),
    ("!Hep(Eric)", 0.2),
    ("Over60(Eric)", 0.4),
    // The independence product is compared bit-exactly, so spell it as
    // the product (0.8 × 0.4 ≠ the literal 0.32 in binary).
    ("Hep(Eric) & Over60(Eric)", 0.8 * 0.4),
    ("Over60(Eric) & Hep(Eric)", 0.8 * 0.4),
    ("Jaun(Eric)", 1.0),
    ("!!Jaun(Eric)", 1.0),
    ("Patient(Eric) & Jaun(Eric)", 1.0),
];

const KB: &str = "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); \
                  ||Over60(x) | Patient(x)||_x ~=_2 0.4; Patient(Eric)";

#[test]
fn eight_clients_hammering_one_server_stay_consistent() {
    let server = Arc::new(
        Server::bind(ServerConfig {
            threads: 4,
            cache_shards: 8,
            max_queue: 256,
            ..ServerConfig::default()
        })
        .expect("bind"),
    );
    server
        .registry()
        .insert("soak", rw_server::parse_kb(KB).expect("KB parses"));
    let addr = server.local_addr().expect("addr");
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("run"))
    };

    let failures: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client_id| {
                scope.spawn(move || -> Vec<String> {
                    let mut problems = Vec::new();
                    let mut c = Client::connect(addr).expect("connect");
                    for i in 0..QUERIES_PER_CLIENT {
                        // Each client walks the mix at its own stride, so
                        // the interleaving across clients varies.
                        let (query, expect) = MIX[(i * (client_id + 1) + client_id) % MIX.len()];
                        let line = format!(
                            r#"{{"op":"query","kb":"soak","query":"{}"}}"#,
                            query.replace('"', "\\\"")
                        );
                        let response = match c.request_line(&line) {
                            Ok(r) => r,
                            Err(e) => {
                                problems.push(format!("client {client_id} i={i}: io {e}"));
                                break;
                            }
                        };
                        // 1. Never corrupt: every line parses as one JSON
                        //    object (torn/interleaved writes would not).
                        let parsed = match Value::parse(&response) {
                            Ok(v) => v,
                            Err(e) => {
                                problems.push(format!(
                                    "client {client_id} i={i}: corrupt line {response:?}: {e}"
                                ));
                                continue;
                            }
                        };
                        // 2. Never reorder: the echoed query is the one
                        //    this client just asked.
                        if parsed.get("query").and_then(Value::as_str) != Some(query) {
                            problems.push(format!(
                                "client {client_id} i={i}: answer for wrong query: {response}"
                            ));
                            continue;
                        }
                        // 3. Deterministic answers: the belief is exactly
                        //    the expected point value, every time, for
                        //    every client — cache hit or not.
                        let value = parsed
                            .get("belief")
                            .and_then(|b| b.get("value"))
                            .and_then(Value::as_f64);
                        if value != Some(expect) {
                            problems
                                .push(format!("client {client_id} i={i}: {query} => {response}"));
                        }
                    }
                    problems
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    assert!(
        failures.is_empty(),
        "{} problems:\n{}",
        failures.len(),
        failures.join("\n")
    );

    // The shared cache must have been doing its job across clients: 800
    // queries over 7 canonical forms leave >0 (in practice, hundreds of)
    // hits, and the totals add up.
    let mut c = Client::connect(addr).expect("connect for stats");
    let stats = c.request_line(r#"{"op":"stats"}"#).expect("stats");
    let v = Value::parse(&stats).expect("stats parses");
    let answered = v
        .get("queries")
        .and_then(|q| q.get("answered"))
        .and_then(Value::as_u64)
        .expect("answered");
    assert_eq!(answered, (CLIENTS * QUERIES_PER_CLIENT) as u64, "{stats}");
    assert_eq!(
        v.get("queries")
            .and_then(|q| q.get("failed"))
            .and_then(Value::as_u64),
        Some(0),
        "{stats}"
    );
    let hits = v
        .get("cache")
        .and_then(|cache| cache.get("hits"))
        .and_then(Value::as_u64)
        .expect("hits");
    assert!(hits > 0, "shared cache reported no hits: {stats}");

    assert!(c
        .request_line(r#"{"op":"shutdown"}"#)
        .expect("shutdown")
        .contains("shutdown"));
    runner.join().expect("server thread");
}
