//! Concurrency soak: 8 clients × 100 mixed queries against one server.
//!
//! What a concurrent serving layer must never do: interleave bytes of
//! two responses on one connection, reorder a client's answers, or give
//! two clients different beliefs for the same query. Every query in the
//! mix is theorem-answerable (microseconds each), so the soak exercises
//! contention — shared cache, admission queue, worker pool — not solver
//! runtime, and finishes quickly even in debug builds (the CI job wraps
//! it in a hard timeout all the same).

use rw_server::{Client, Server, ServerConfig, Value};
use std::sync::{Arc, Barrier};

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 100;

/// Query mix with the belief each one must produce. Several surface
/// forms share a canonical form, so the shared cache sees plenty of
/// cross-client hits.
const MIX: &[(&str, f64)] = &[
    ("Hep(Eric)", 0.8),
    ("!Hep(Eric)", 0.2),
    ("Over60(Eric)", 0.4),
    // The independence product is compared bit-exactly, so spell it as
    // the product (0.8 × 0.4 ≠ the literal 0.32 in binary).
    ("Hep(Eric) & Over60(Eric)", 0.8 * 0.4),
    ("Over60(Eric) & Hep(Eric)", 0.8 * 0.4),
    ("Jaun(Eric)", 1.0),
    ("!!Jaun(Eric)", 1.0),
    ("Patient(Eric) & Jaun(Eric)", 1.0),
];

const KB: &str = "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); \
                  ||Over60(x) | Patient(x)||_x ~=_2 0.4; Patient(Eric)";

#[test]
fn eight_clients_hammering_one_server_stay_consistent() {
    let server = Arc::new(
        Server::bind(ServerConfig {
            threads: 4,
            cache_shards: 8,
            max_queue: 256,
            ..ServerConfig::default()
        })
        .expect("bind"),
    );
    server
        .registry()
        .insert("soak", rw_server::parse_kb(KB).expect("KB parses"));
    let addr = server.local_addr().expect("addr");
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("run"))
    };

    let failures: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client_id| {
                scope.spawn(move || -> Vec<String> {
                    let mut problems = Vec::new();
                    let mut c = Client::connect(addr).expect("connect");
                    for i in 0..QUERIES_PER_CLIENT {
                        // Each client walks the mix at its own stride, so
                        // the interleaving across clients varies.
                        let (query, expect) = MIX[(i * (client_id + 1) + client_id) % MIX.len()];
                        let line = format!(
                            r#"{{"op":"query","kb":"soak","query":"{}"}}"#,
                            query.replace('"', "\\\"")
                        );
                        let response = match c.request_line(&line) {
                            Ok(r) => r,
                            Err(e) => {
                                problems.push(format!("client {client_id} i={i}: io {e}"));
                                break;
                            }
                        };
                        // 1. Never corrupt: every line parses as one JSON
                        //    object (torn/interleaved writes would not).
                        let parsed = match Value::parse(&response) {
                            Ok(v) => v,
                            Err(e) => {
                                problems.push(format!(
                                    "client {client_id} i={i}: corrupt line {response:?}: {e}"
                                ));
                                continue;
                            }
                        };
                        // 2. Never reorder: the echoed query is the one
                        //    this client just asked.
                        if parsed.get("query").and_then(Value::as_str) != Some(query) {
                            problems.push(format!(
                                "client {client_id} i={i}: answer for wrong query: {response}"
                            ));
                            continue;
                        }
                        // 3. Deterministic answers: the belief is exactly
                        //    the expected point value, every time, for
                        //    every client — cache hit or not.
                        let value = parsed
                            .get("belief")
                            .and_then(|b| b.get("value"))
                            .and_then(Value::as_f64);
                        if value != Some(expect) {
                            problems
                                .push(format!("client {client_id} i={i}: {query} => {response}"));
                        }
                    }
                    problems
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    assert!(
        failures.is_empty(),
        "{} problems:\n{}",
        failures.len(),
        failures.join("\n")
    );

    // The shared cache must have been doing its job across clients: 800
    // queries over 7 canonical forms leave >0 (in practice, hundreds of)
    // hits, and the totals add up.
    let mut c = Client::connect(addr).expect("connect for stats");
    let stats = c.request_line(r#"{"op":"stats"}"#).expect("stats");
    let v = Value::parse(&stats).expect("stats parses");
    let answered = v
        .get("queries")
        .and_then(|q| q.get("answered"))
        .and_then(Value::as_u64)
        .expect("answered");
    assert_eq!(answered, (CLIENTS * QUERIES_PER_CLIENT) as u64, "{stats}");
    assert_eq!(
        v.get("queries")
            .and_then(|q| q.get("failed"))
            .and_then(Value::as_u64),
        Some(0),
        "{stats}"
    );
    let hits = v
        .get("cache")
        .and_then(|cache| cache.get("hits"))
        .and_then(Value::as_u64)
        .expect("hits");
    assert!(hits > 0, "shared cache reported no hits: {stats}");

    assert!(c
        .request_line(r#"{"op":"shutdown"}"#)
        .expect("shutdown")
        .contains("shutdown"));
    runner.join().expect("server thread");
}

// ---------------------------------------------------------------------
// 1000-connection soak (release tier)
// ---------------------------------------------------------------------

const SOAK_CONNS: usize = 1000;
const DRIVERS: usize = 20;
const CONNS_PER_DRIVER: usize = SOAK_CONNS / DRIVERS;

/// The `"belief":{...}` fragment of a query response: the part that
/// must be bit-identical across every connection (timings and cache
/// flags may legitimately differ).
fn belief_fragment(line: &str) -> &str {
    let start = line.find(r#""belief":"#).expect("response has a belief");
    let rest = &line[start..];
    let end = rest
        .find(r#","provenance""#)
        .expect("belief ends at provenance");
    &rest[..end]
}

/// 1000 simultaneous connections, all held open at once (checked via
/// the `conns.open` gauge while every driver is parked at a barrier),
/// each pipelining its queries in one burst and reading the answers
/// back. The event loop must keep every connection's responses in
/// request order, uncorrupted, and bit-identical to a single reference
/// connection's answers — at a connection count where the old
/// thread-per-connection design would need a thousand OS threads.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "1000-connection soak is release-tier; run with --release"
)]
fn thousand_connections_pipelined_stay_ordered_and_bit_identical() {
    let server = Arc::new(
        Server::bind(ServerConfig {
            threads: 4,
            cache_shards: 8,
            max_queue: 8192,
            ..ServerConfig::default()
        })
        .expect("bind"),
    );
    server
        .registry()
        .insert("soak", rw_server::parse_kb(KB).expect("KB parses"));
    let addr = server.local_addr().expect("addr");
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("run"))
    };

    // Canonical answers from a reference connection, before the storm.
    let mut reference = Client::connect(addr).expect("reference connect");
    let canonical: Vec<(String, String)> = MIX
        .iter()
        .map(|(query, _)| {
            let line = format!(r#"{{"op":"query","kb":"soak","query":"{query}"}}"#);
            let response = reference.request_line(&line).expect("reference query");
            (query.to_string(), belief_fragment(&response).to_string())
        })
        .collect();
    let canonical = Arc::new(canonical);

    // Two barriers, main thread included in both: at `all_open` every
    // driver has connected AND pinged each of its connections (a ping
    // response proves the event loop registered it — a completed TCP
    // handshake alone would not), so the main thread can read the
    // `conns.open` gauge with the full population guaranteed open.
    // `storm_start` then releases the drivers into the pipelined burst.
    let all_open = Arc::new(Barrier::new(DRIVERS + 1));
    let storm_start = Arc::new(Barrier::new(DRIVERS + 1));

    let failures: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..DRIVERS)
            .map(|driver| {
                let canonical = Arc::clone(&canonical);
                let all_open = Arc::clone(&all_open);
                let storm_start = Arc::clone(&storm_start);
                scope.spawn(move || -> Vec<String> {
                    let mut problems = Vec::new();
                    let mut conns: Vec<Client> = (0..CONNS_PER_DRIVER)
                        .map(|_| Client::connect(addr).expect("soak connect"))
                        .collect();
                    for conn in conns.iter_mut() {
                        let pong = conn.request_line(r#"{"op":"ping"}"#).expect("ping");
                        assert!(pong.contains("ping"), "{pong}");
                    }
                    all_open.wait();
                    storm_start.wait();
                    // Pipelined burst: write every request on every
                    // connection before reading anything back. Each
                    // connection walks the mix at its own offset so the
                    // concurrent cache traffic varies.
                    for (c_idx, conn) in conns.iter_mut().enumerate() {
                        for q_idx in 0..canonical.len() {
                            let (query, _) = &canonical[(q_idx + c_idx + driver) % canonical.len()];
                            let line = format!(r#"{{"op":"query","kb":"soak","query":"{query}"}}"#);
                            if let Err(e) = conn.send_line(&line) {
                                problems.push(format!("driver {driver} conn {c_idx}: send {e}"));
                                break;
                            }
                        }
                    }
                    for (c_idx, conn) in conns.iter_mut().enumerate() {
                        for q_idx in 0..canonical.len() {
                            let (query, fragment) =
                                &canonical[(q_idx + c_idx + driver) % canonical.len()];
                            let response = match conn.recv_line() {
                                Ok(r) => r,
                                Err(e) => {
                                    problems.push(format!(
                                        "driver {driver} conn {c_idx} q={q_idx}: recv {e}"
                                    ));
                                    break;
                                }
                            };
                            if let Err(e) = Value::parse(&response) {
                                problems.push(format!(
                                    "driver {driver} conn {c_idx} q={q_idx}: \
                                     corrupt {response:?}: {e}"
                                ));
                                continue;
                            }
                            // Ordered: the echoed query is the one this
                            // slot in the burst asked for.
                            let echoed = format!(r#""query":"{query}""#);
                            if !response.contains(&echoed) {
                                problems.push(format!(
                                    "driver {driver} conn {c_idx} q={q_idx}: out of order, \
                                     wanted {query}: {response}"
                                ));
                                continue;
                            }
                            // Bit-identical: the belief object matches
                            // the reference connection's byte-for-byte.
                            let got = belief_fragment(&response);
                            if got != fragment {
                                problems.push(format!(
                                    "driver {driver} conn {c_idx} q={q_idx}: belief drifted: \
                                     {got} != {fragment}"
                                ));
                            }
                        }
                    }
                    problems
                })
            })
            .collect();

        // All 1000 connections are open and registered while the
        // drivers wait between the barriers.
        all_open.wait();
        let metrics = reference
            .request_line(r#"{"op":"metrics"}"#)
            .expect("metrics");
        let v = Value::parse(&metrics).expect("metrics parses");
        let open = v
            .get("metrics")
            .and_then(|m| m.get("gauges"))
            .and_then(|g| g.get("conns.open"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        assert!(
            open >= SOAK_CONNS as u64,
            "conns.open gauge saw {open} < {SOAK_CONNS}: {metrics}"
        );
        storm_start.wait();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("driver thread panicked"))
            .collect()
    });
    assert!(
        failures.is_empty(),
        "{} problems (first 20):\n{}",
        failures.len(),
        failures
            .iter()
            .take(20)
            .cloned()
            .collect::<Vec<_>>()
            .join("\n")
    );

    // Every storm query (plus the reference pass) was answered; none
    // failed or were shed — the admission queue absorbed the burst.
    let stats = reference.request_line(r#"{"op":"stats"}"#).expect("stats");
    let v = Value::parse(&stats).expect("stats parses");
    let expected = (SOAK_CONNS * MIX.len() + MIX.len()) as u64;
    assert_eq!(
        v.get("queries")
            .and_then(|q| q.get("answered"))
            .and_then(Value::as_u64),
        Some(expected),
        "{stats}"
    );
    assert_eq!(
        v.get("queries")
            .and_then(|q| q.get("failed"))
            .and_then(Value::as_u64),
        Some(0),
        "{stats}"
    );

    assert!(reference
        .request_line(r#"{"op":"shutdown"}"#)
        .expect("shutdown")
        .contains("shutdown"));
    runner.join().expect("server thread");
}
