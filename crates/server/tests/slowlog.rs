//! Release-tier slow-query regression guard.
//!
//! The two known trap shapes — the Monte-Carlo binary statistic and
//! the deterministic-causal temporal projection — must land in the
//! `--slow-log` with a full span tree (request ⊃ queue-wait/answer ⊃
//! stage:*), while theorem-speed paper examples must stay out of it.
//! If an optimisation regresses and a paper example starts taking
//! hundreds of milliseconds, or a trap quietly stops being exercised,
//! this test notices.

use rw_server::{Client, Server, ServerConfig, Value};
use std::sync::Arc;

/// The §4 hepatitis example: answered by the theorems stage in
/// microseconds, so it must never cross the slow-log threshold.
const PAPER_KB: &str = "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); Jaun(Tom)";

/// Binary-predicate statistic sampled by Monte-Carlo: the worlds are
/// functions on domain pairs, so sampling is the historical slow path.
const MC_TRAP_KB: &str = "||Likes(x, y)||_{x,y} ~=_1 0.25; Likes(A, B)";

/// Deterministic-causal one-step projection (the shoot scenario):
/// compiled to an L-approx KB whose exact answer needs enumeration.
const SHOOT_KB: &str = "@temporal causal\\nfluent Loaded\\nfluent Alive\\ninit Loaded\\ninit Alive\\nstep shoot requires Loaded causes !Alive";

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "trap queries are release-tier (the MC binary statistic takes minutes in debug)"
)]
fn traps_land_in_the_slow_log_and_paper_examples_do_not() {
    let log = std::env::temp_dir().join(format!("rwq-slowlog-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log);

    let server = Arc::new(
        Server::bind(ServerConfig {
            threads: 1,
            slow_log: Some(log.clone()),
            slow_ms: 500,
            ..ServerConfig::default()
        })
        .expect("bind"),
    );
    let addr = server.local_addr().expect("local addr");
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("run"))
    };

    let mut c = Client::connect(addr).unwrap();
    for load in [
        format!(r#"{{"op":"load","kb":"paper","text":"{PAPER_KB}"}}"#),
        format!(r#"{{"op":"load","kb":"mc","text":"{MC_TRAP_KB}","approx":{{"seed":7}}}}"#),
        format!(r#"{{"op":"load","kb":"shoot","text":"{SHOOT_KB}"}}"#),
    ] {
        let loaded = c.request_line(&load).unwrap();
        assert!(loaded.contains(r#""ok":true"#), "{load} => {loaded}");
    }
    for (kb, query) in [
        ("paper", "Hep(Eric)"),
        ("mc", "Likes(B, A)"),
        ("shoot", "Alive1(S)"),
    ] {
        let answer = c
            .request_line(&format!(
                r#"{{"op":"query","kb":"{kb}","query":"{query}"}}"#
            ))
            .unwrap();
        assert!(answer.contains(r#""ok":true"#), "{kb}/{query} => {answer}");
    }
    c.request_line(r#"{"op":"shutdown"}"#).unwrap();
    server.stop();
    runner.join().expect("server thread panicked");

    let content = std::fs::read_to_string(&log).expect("slow log written");
    let _ = std::fs::remove_file(&log);

    // The paper example stays under the threshold; both traps cross it.
    assert!(
        !content.contains("Hep(Eric)"),
        "paper example regressed into the slow log:\n{content}"
    );
    for query in ["Likes(B, A)", "Alive1(S)"] {
        let line = content
            .lines()
            .find(|l| l.contains(&format!(r#""query":"{query}""#)))
            .unwrap_or_else(|| panic!("trap {query} missing from slow log:\n{content}"));
        let value = Value::parse(line).expect("slow-log line is valid JSON");
        assert!(value.get("trace_id").and_then(Value::as_u64).is_some());
        assert!(value.get("fingerprint").and_then(Value::as_str).is_some());
        let elapsed = value.get("elapsed_us").and_then(Value::as_u64).unwrap();
        assert!(elapsed >= 500_000, "{query} logged below threshold: {line}");
        // Full span tree: a request root, its answer child, and at
        // least one parented stage span under the answer.
        let Some(Value::Arr(spans)) = value.get("spans") else {
            panic!("trap {query} has no span tree: {line}");
        };
        let name = |s: &Value| s.get("name").and_then(Value::as_str).map(String::from);
        assert!(spans.iter().any(|s| name(s).as_deref() == Some("request")));
        assert!(spans.iter().any(|s| name(s).as_deref() == Some("answer")));
        assert!(
            spans
                .iter()
                .any(|s| name(s).is_some_and(|n| n.starts_with("stage:"))
                    && s.get("parent").and_then(Value::as_u64).is_some()),
            "no parented stage span for {query}: {line}"
        );
    }
}
