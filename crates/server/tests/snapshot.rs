//! Snapshot integrity: property-tested save/load roundtrips over
//! generated KBs, a corruption suite (truncation, byte flips), and a
//! server-level warm-restart check.
//!
//! The durability contract under test:
//!
//! * **roundtrip** — saving a warm registry and loading it into a fresh
//!   one restores every KB and cache entry bit-identically (re-saving
//!   the restored state reproduces the same snapshot entries), and
//!   every previously answered query replays as a cache hit with a
//!   byte-identical response line (modulo wall times);
//! * **corruption** — truncating the snapshot at any byte, or flipping
//!   any single byte, yields a structured [`SnapshotError`] (never a
//!   panic) and restores **nothing**: the registry is exactly as cold
//!   as a fresh start, so a stale or torn snapshot can never leak an
//!   answer;
//! * **warm restart** — a [`Server`] with a snapshot dir that drains
//!   and restarts serves its first golden replay from the cache,
//!   byte-identical to the pre-restart answer.

use proptest::prelude::*;
use rw_core::AnswerCache;
use rw_server::json::mask_times;
use rw_server::proto::{KbSource, ScanParams};
use rw_server::snapshot::{self, CACHE_FILE, REGISTRY_FILE};
use rw_server::{Client, KbRegistry, Server, ServerConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A unique per-invocation temp directory (cleaned by the caller).
fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("rwsnap-it-{}-{tag}-{id}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Exactly representable statistic values, so float formatting is not
/// what is under test.
const VALS: &[&str] = &["0.125", "0.25", "0.5", "0.75", "0.8125"];

/// Generates a theorem-speed KB (direct-inference statistics over one
/// evidence literal — sub-millisecond even in debug builds) plus the
/// queries it answers.
fn kb_and_queries() -> impl Strategy<Value = (String, Vec<String>)> {
    proptest::collection::vec(0usize..VALS.len(), 1..4).prop_map(|idxs| {
        let mut text = String::from("Jaun(Eric)\n");
        let mut queries = Vec::new();
        for (i, vi) in idxs.iter().enumerate() {
            text.push_str(&format!("||P{i}(x) | Jaun(x)||_x ~=_1 {}\n", VALS[*vi]));
            queries.push(format!("P{i}(Eric)"));
        }
        (text, queries)
    })
}

/// Warms a fresh registry with the generated KBs and returns each
/// query's first response line (keyed for later comparison).
fn warm(kbs: &[(String, Vec<String>)]) -> (KbRegistry, Vec<String>) {
    let reg = KbRegistry::new(Arc::new(AnswerCache::new()));
    let mut lines = Vec::new();
    for (i, (text, queries)) in kbs.iter().enumerate() {
        let name = format!("kb{i}");
        reg.load(
            &name,
            &KbSource::Text(text.clone()),
            None,
            ScanParams::default(),
        )
        .unwrap_or_else(|e| panic!("generated KB must load: {}", e.message));
        for q in queries {
            let (line, ok) = reg.get(&name).unwrap().answer_json_line(q);
            assert!(ok, "{line}");
            lines.push(line);
        }
    }
    (reg, lines)
}

/// The snapshot's entry lines (header and checksum trailer stripped),
/// sorted — cache export order follows hash-map iteration, so equality
/// is up to permutation while each line itself must be bit-identical.
fn sorted_entries(dir: &Path, file: &str) -> Vec<String> {
    let content = std::fs::read_to_string(dir.join(file)).expect("snapshot file");
    let mut lines: Vec<String> = content
        .lines()
        .skip(1)
        .filter(|l| !l.starts_with(r#"{"checksum""#))
        .map(str::to_string)
        .collect();
    lines.sort();
    lines
}

/// A cold line and its warm replay agree on the semantic payload —
/// query, belief, provenance — once wall times are masked and the
/// fields that *record how the answer was produced this time* are
/// neutralized: `cache_hit` (false on first compute, true on replay)
/// and the stage trace (`theorems` cold, `cache` warm).
fn comparable(line: &str) -> String {
    let line = match line.find(r#","trace":["#) {
        Some(i) => format!("{}}}", &line[..i]),
        None => line.to_string(),
    };
    mask_times(&line).replace(r#""cache_hit":true"#, r#""cache_hit":false"#)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn roundtrip_restores_registry_and_cache_bit_identically(
        kbs in proptest::collection::vec(kb_and_queries(), 1..3)
    ) {
        let dir = temp_dir("roundtrip");
        let (reg, cold_lines) = warm(&kbs);
        let saved = snapshot::save(&dir, &reg).expect("save");
        prop_assert_eq!(saved.kbs, kbs.len());
        prop_assert!(saved.answers >= 1, "{:?}", saved);

        let fresh = KbRegistry::new(Arc::new(AnswerCache::new()));
        let loaded = snapshot::load(&dir, &fresh)
            .expect("load")
            .expect("snapshot present");
        prop_assert_eq!(saved.kbs, loaded.kbs);
        prop_assert_eq!(saved.answers, loaded.answers);
        prop_assert_eq!(saved.denoms, loaded.denoms);

        // Re-saving the restored state writes the same entries
        // bit-for-bit.
        let dir2 = temp_dir("resave");
        snapshot::save(&dir2, &fresh).expect("re-save");
        prop_assert_eq!(
            sorted_entries(&dir, REGISTRY_FILE),
            sorted_entries(&dir2, REGISTRY_FILE)
        );
        prop_assert_eq!(
            sorted_entries(&dir, CACHE_FILE),
            sorted_entries(&dir2, CACHE_FILE)
        );

        // Every query replays warm and byte-identical (modulo times).
        let mut cold = cold_lines.iter();
        for (i, (_, queries)) in kbs.iter().enumerate() {
            for q in queries {
                let (line, ok) = fresh.get(&format!("kb{i}")).unwrap().answer_json_line(q);
                prop_assert!(ok, "{}", line);
                prop_assert!(line.contains(r#""cache_hit":true"#), "{}", line);
                prop_assert_eq!(comparable(cold.next().unwrap()), comparable(&line));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn truncated_snapshots_reject_and_restore_nothing(
        kbs in proptest::collection::vec(kb_and_queries(), 1..2),
        cut in 0usize..4096,
        target_cache in any::<bool>()
    ) {
        let dir = temp_dir("trunc");
        let (reg, _) = warm(&kbs);
        snapshot::save(&dir, &reg).expect("save");
        let path = dir.join(if target_cache { CACHE_FILE } else { REGISTRY_FILE });
        let bytes = std::fs::read(&path).expect("snapshot file");
        // Any proper prefix is a torn write; the full file is skipped.
        let cut = cut % bytes.len();
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let fresh = KbRegistry::new(Arc::new(AnswerCache::new()));
        let err = snapshot::load(&dir, &fresh)
            .expect_err("a torn snapshot must be rejected");
        // Structured rejection — the code is one of the defined classes,
        // and nothing was committed (cold start).
        prop_assert!(
            ["truncated", "checksum-mismatch", "bad-header", "corrupt", "io"]
                .contains(&err.code()),
            "{}: {}", err.code(), err
        );
        prop_assert!(fresh.is_empty(), "rejected snapshot must restore nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_bytes_reject_and_restore_nothing(
        kbs in proptest::collection::vec(kb_and_queries(), 1..2),
        offset in 0usize..4096,
        bit in 0u8..8,
        target_cache in any::<bool>()
    ) {
        let dir = temp_dir("flip");
        let (reg, _) = warm(&kbs);
        snapshot::save(&dir, &reg).expect("save");
        let path = dir.join(if target_cache { CACHE_FILE } else { REGISTRY_FILE });
        let mut bytes = std::fs::read(&path).expect("snapshot file");
        let offset = offset % bytes.len();
        bytes[offset] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let fresh = KbRegistry::new(Arc::new(AnswerCache::new()));
        match snapshot::load(&dir, &fresh) {
            // Every flip lands under the checksum (or in the trailer
            // itself), so the load must reject — structurally.
            Err(err) => {
                prop_assert!(fresh.is_empty(), "{}", err);
            }
            Ok(_) => prop_assert!(
                false,
                "a flipped byte at {} must not load cleanly",
                offset
            ),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The remaining corruption modes are deterministic: a version-skewed
/// header and a tampered fingerprint must both carry their own error
/// codes (not fold into checksum noise), so they are re-sealed after
/// editing.
#[test]
fn version_skew_and_fingerprint_tamper_have_distinct_codes() {
    let dir = temp_dir("skew");
    let (reg, _) = warm(&[(
        "Jaun(Eric)\n||P0(x) | Jaun(x)||_x ~=_1 0.25\n".to_string(),
        vec!["P0(Eric)".to_string()],
    )]);
    snapshot::save(&dir, &reg).expect("save");
    let path = dir.join(REGISTRY_FILE);
    let pristine = std::fs::read_to_string(&path).unwrap();

    // Wrong version: the header is validated before the checksum, so no
    // re-seal is needed for the code to be `wrong-version`.
    std::fs::write(&path, pristine.replace("{\"rwsnap\":1,", "{\"rwsnap\":2,")).unwrap();
    let fresh = KbRegistry::new(Arc::new(AnswerCache::new()));
    let err = snapshot::load(&dir, &fresh).expect_err("version skew rejects");
    assert_eq!(err.code(), "wrong-version");
    assert!(fresh.is_empty());

    // Tampered fingerprint, re-sealed so the checksum passes and the
    // fingerprint re-verification itself must catch it.
    let fp = reg.get("kb0").unwrap().fingerprint;
    let mut body: String = pristine
        .lines()
        .take(pristine.lines().count() - 1)
        .map(|l| format!("{l}\n"))
        .collect::<String>()
        .replace(
            &format!("{fp:016x}"),
            &format!("{:016x}", fp.wrapping_add(1)),
        );
    let sum = rw_logic::canon::fnv1a(body.as_bytes());
    body.push_str(&format!("{{\"checksum\":\"{sum:016x}\"}}\n"));
    std::fs::write(&path, body).unwrap();
    let fresh = KbRegistry::new(Arc::new(AnswerCache::new()));
    let err = snapshot::load(&dir, &fresh).expect_err("fingerprint tamper rejects");
    assert_eq!(err.code(), "fingerprint-mismatch");
    assert!(fresh.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Full server lifecycle: serve with `--snapshot-dir`, drain (which
/// writes the final checkpoint), restart on the same directory, and the
/// restarted server answers its first query warm and byte-identical.
/// Then corrupt the snapshot: the restart reports a structured error
/// and serves cold — loading and querying still work.
#[test]
fn server_restarts_warm_then_survives_corruption_cold() {
    let dir = temp_dir("server");
    let config = || ServerConfig {
        threads: 1,
        snapshot_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    const LOAD: &str =
        r#"{"op":"load","kb":"med","text":"||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)"}"#;
    const QUERY: &str = r#"{"op":"query","kb":"med","query":"Hep(Eric)"}"#;

    // First life: load over the wire, answer once, drain.
    let server = Arc::new(Server::bind(config()).expect("bind"));
    assert!(server.load_snapshot().is_none(), "no snapshot yet");
    let addr = server.local_addr().unwrap();
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("run"))
    };
    let mut c = Client::connect(addr).unwrap();
    let loaded = c.request_line(LOAD).unwrap();
    assert!(loaded.contains(r#""ok":true"#), "{loaded}");
    let cold = c.request_line(QUERY).unwrap();
    assert!(cold.contains(r#""value":0.8"#), "{cold}");
    let bye = c.request_line(r#"{"op":"shutdown"}"#).unwrap();
    assert!(bye.contains(r#""ok":true"#), "{bye}");
    runner.join().unwrap();
    drop(c);
    drop(server);

    // Second life: the snapshot restores the KB and the cache, so the
    // very first query is a hit, byte-identical modulo wall times.
    let server = Arc::new(Server::bind(config()).expect("rebind"));
    let stats = server
        .load_snapshot()
        .expect("snapshot present")
        .expect("snapshot loads");
    assert_eq!(stats.kbs, 1, "{stats:?}");
    assert!(stats.answers >= 1, "{stats:?}");
    let addr = server.local_addr().unwrap();
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("run"))
    };
    let mut c = Client::connect(addr).unwrap();
    let warm_line = c.request_line(QUERY).unwrap();
    assert!(warm_line.contains(r#""cache_hit":true"#), "{warm_line}");
    assert_eq!(comparable(&cold), comparable(&warm_line));
    server.stop();
    runner.join().unwrap();
    drop(c);
    drop(server);

    // Third life: a flipped byte in the cache snapshot is rejected with
    // a structured error and the server starts cold but *serves*.
    let path = dir.join(CACHE_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let server = Arc::new(Server::bind(config()).expect("rebind"));
    let err = server
        .load_snapshot()
        .expect("snapshot present")
        .expect_err("corrupt snapshot rejects");
    assert!(!err.code().is_empty(), "{err}");
    assert!(server.registry().is_empty(), "cold start after rejection");
    let addr = server.local_addr().unwrap();
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("run"))
    };
    let mut c = Client::connect(addr).unwrap();
    let missing = c.request_line(QUERY).unwrap();
    assert!(missing.contains(r#""code":"unknown-kb""#), "{missing}");
    let reloaded = c.request_line(LOAD).unwrap();
    assert!(reloaded.contains(r#""ok":true"#), "{reloaded}");
    let again = c.request_line(QUERY).unwrap();
    assert!(again.contains(r#""value":0.8"#), "{again}");
    server.stop();
    runner.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
