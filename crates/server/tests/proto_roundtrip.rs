//! Property tests for the wire protocol:
//!
//! * **round-trip** — any generated [`Request`] survives
//!   serialize → parse → serialize with byte-identical wire form (so
//!   clients and servers can re-emit requests without drift), including
//!   names and queries full of quotes, backslashes, newlines and
//!   non-ASCII;
//! * **malformed input** — arbitrary garbage lines (and targeted
//!   truncations of valid requests) never panic the parser and always
//!   yield a structured `bad-request` error whose response line is
//!   itself valid JSON.

use proptest::prelude::*;
use rw_server::proto::{parse_request, ApproxParams, KbSource, Request, ScanParams, Value};

/// Characters chosen to stress JSON escaping: quotes, backslashes,
/// control characters, multi-byte UTF-8, and the protocol's own
/// delimiters.
const POOL: &[char] = &[
    'a', 'b', 'Z', '0', '9', ' ', '_', '-', '.', '/', '"', '\\', '\n', '\t', '\r', '\u{1}', '{',
    '}', '[', ']', ':', ',', '|', '~', '=', '(', ')', 'é', '∞', '≈', '😀',
];

fn text() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..POOL.len(), 1..24)
        .prop_map(|idxs| idxs.into_iter().map(|i| POOL[i]).collect())
}

fn approx() -> impl Strategy<Value = Option<ApproxParams>> {
    // Optional fields cycle through set/unset; ci takes exactly
    // representable values so float formatting is not what is under test.
    (0u8..8, 1u64..u64::MAX, 0u64..u64::MAX, 0usize..4).prop_map(|(mask, samples, seed, ci_i)| {
        if mask == 0 {
            return None;
        }
        const CIS: &[f64] = &[0.05, 0.125, 0.25, 0.4375];
        Some(ApproxParams {
            samples: (mask & 1 != 0).then_some(samples),
            seed: (mask & 2 != 0).then_some(seed),
            ci: (mask & 4 != 0).then_some(CIS[ci_i]),
        })
    })
}

fn scan() -> impl Strategy<Value = ScanParams> {
    // Valid windows only (2 ≤ min ≤ max ≤ 64): roundtripping rejected
    // values is meaningless — the parser refuses them by design.
    (any::<bool>(), 0u8..4, 2usize..65, 0usize..63).prop_map(|(symmetry, mask, lo, span)| {
        let hi = (lo + span).min(64);
        ScanParams {
            symmetry,
            min_n: (mask & 1 != 0).then_some(lo),
            max_n: (mask & 2 != 0).then_some(hi),
        }
    })
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::List),
        Just(Request::Stats),
        Just(Request::Shutdown),
        (1u64..5000).prop_map(|ms| Request::Sleep { ms }),
        text().prop_map(|kb| Request::Unload { kb }),
        (text(), text()).prop_map(|(kb, query)| Request::Query { kb, query }),
        (text(), text(), any::<bool>(), approx(), scan()).prop_map(
            |(kb, body, is_path, approx, scan)| {
                Request::Load {
                    kb,
                    source: if is_path {
                        KbSource::Path(body)
                    } else {
                        KbSource::Text(body)
                    },
                    approx,
                    scan,
                }
            }
        ),
    ]
}

/// Arbitrary short byte-salads (as chars from the pool plus raw JSON
/// punctuation) used as hostile input lines.
fn garbage() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..POOL.len(), 0..40)
        .prop_map(|idxs| idxs.into_iter().map(|i| POOL[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn serialize_parse_serialize_is_identity(request in request()) {
        let wire = request.serialize();
        // The wire form is a single line of valid JSON.
        prop_assert!(!wire.contains('\n'), "{wire:?}");
        prop_assert!(Value::parse(&wire).is_ok(), "{wire:?}");
        let parsed = parse_request(&wire);
        prop_assert!(parsed.is_ok(), "{wire:?} => {parsed:?}");
        let parsed = parsed.unwrap();
        prop_assert_eq!(&parsed, &request, "{}", wire);
        prop_assert_eq!(parsed.serialize(), wire);
    }

    #[test]
    fn garbage_lines_yield_structured_errors_not_panics(line in garbage()) {
        if let Err(e) = parse_request(&line) {
            // Whatever the garbage was, the error response itself must be
            // one well-formed JSON line a client can parse.
            let response = e.line();
            prop_assert!(!response.contains('\n'), "{response:?}");
            let v = Value::parse(&response);
            prop_assert!(v.is_ok(), "{line:?} => {response:?}");
            let v = v.unwrap();
            prop_assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
            prop_assert!(v.get("error").and_then(Value::as_str).is_some());
            prop_assert!(v.get("code").and_then(Value::as_str).is_some());
        }
        // (The rare garbage string that happens to parse as a request is
        // fine — the property is "no panic, structured errors".)
    }

    #[test]
    fn truncations_of_valid_requests_never_panic(request in request(), cut in 0usize..64) {
        let wire = request.serialize();
        // Truncate at an arbitrary char boundary: a torn line (client
        // died mid-write) must parse-error cleanly, never panic.
        let boundary = wire
            .char_indices()
            .map(|(i, _)| i)
            .chain([wire.len()])
            .nth(cut % (wire.chars().count() + 1))
            .unwrap();
        let torn = &wire[..boundary];
        match parse_request(torn) {
            Ok(parsed) => prop_assert_eq!(parsed, request, "only the full line parses"),
            Err(e) => prop_assert!(Value::parse(&e.line()).is_ok()),
        }
    }
}
