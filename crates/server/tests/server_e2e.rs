//! End-to-end tests over real TCP connections to an in-process
//! [`Server`]: the full request surface (ping/load/unload/list/query/
//! stats/shutdown), structured errors for malformed lines and unknown
//! KBs, admission-queue backpressure, and per-KB exact vs approximate
//! sessions.

use rw_server::{Client, Server, ServerConfig, Value};
use std::sync::Arc;
use std::time::Duration;

/// Binds a server, runs it on a background scoped thread, hands the
/// test a connected client plus a handle to open more, and shuts down
/// cleanly afterwards.
fn with_server<F>(config: ServerConfig, test: F)
where
    F: FnOnce(&std::net::SocketAddr),
{
    let server = Arc::new(Server::bind(config).expect("bind"));
    let addr = server.local_addr().expect("local addr");
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("run"))
    };
    test(&addr);
    // Belt and braces: the test may already have sent a shutdown op.
    server.stop();
    runner.join().expect("server thread panicked");
}

fn config() -> ServerConfig {
    ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    }
}

const MED_KB: &str = "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); Jaun(Tom)";

fn load_line(name: &str) -> String {
    format!(r#"{{"op":"load","kb":"{name}","text":"{MED_KB}"}}"#)
}

#[test]
fn full_request_surface_over_tcp() {
    with_server(config(), |addr| {
        let mut c = Client::connect(addr).unwrap();
        assert_eq!(
            c.request_line(r#"{"op":"ping"}"#).unwrap(),
            r#"{"ok":true,"op":"ping"}"#
        );
        // Load, list, query, stats, unload.
        let loaded = c.request_line(&load_line("med")).unwrap();
        assert!(
            loaded.starts_with(r#"{"ok":true,"op":"load","kb":"med""#),
            "{loaded}"
        );
        assert!(loaded.contains(r#""statements":3"#), "{loaded}");
        assert!(loaded.contains(r#""approx":false"#), "{loaded}");

        let list = c.request_line(r#"{"op":"list"}"#).unwrap();
        assert!(list.contains(r#""kb":"med""#), "{list}");

        let answer = c
            .request_line(r#"{"op":"query","kb":"med","query":"Hep(Eric)"}"#)
            .unwrap();
        assert!(answer.contains(r#""ok":true"#), "{answer}");
        assert!(answer.contains(r#""value":0.8"#), "{answer}");
        assert!(
            answer.contains(r#""provenance":"direct inference"#),
            "{answer}"
        );

        // A repeat is served from the shared cache.
        let again = c
            .request_line(r#"{"op":"query","kb":"med","query":"Hep(Eric)"}"#)
            .unwrap();
        assert!(again.contains(r#""cache_hit":true"#), "{again}");

        let stats = c.request_line(r#"{"op":"stats"}"#).unwrap();
        let v = Value::parse(&stats).expect("stats is valid JSON");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{stats}");
        let queries = v.get("queries").expect("queries object");
        assert_eq!(queries.get("answered").and_then(Value::as_u64), Some(2));
        assert_eq!(queries.get("failed").and_then(Value::as_u64), Some(0));
        let cache = v.get("cache").expect("cache object");
        assert_eq!(
            cache.get("hits").and_then(Value::as_u64),
            Some(1),
            "{stats}"
        );
        // Both the pipeline stage and the synthetic cache stage appear in
        // the lifetime totals (in first-seen order).
        assert!(
            stats.contains(r#"{"stage":"theorems","answered":1"#),
            "{stats}"
        );
        assert!(
            stats.contains(r#"{"stage":"cache","answered":1"#),
            "{stats}"
        );
        assert!(stats.contains(r#""uptime_us":"#), "{stats}");

        let unloaded = c.request_line(r#"{"op":"unload","kb":"med"}"#).unwrap();
        assert!(unloaded.contains(r#""ok":true"#), "{unloaded}");
        let gone = c
            .request_line(r#"{"op":"query","kb":"med","query":"Hep(Eric)"}"#)
            .unwrap();
        assert!(gone.contains(r#""code":"unknown-kb""#), "{gone}");

        assert_eq!(
            c.request_line(r#"{"op":"shutdown"}"#).unwrap(),
            r#"{"ok":true,"op":"shutdown"}"#
        );
    });
}

#[test]
fn malformed_lines_get_structured_errors_without_disconnect() {
    with_server(config(), |addr| {
        let mut c = Client::connect(addr).unwrap();
        for bad in [
            "this is not json",
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"query","kb":"x"}"#,
            r#"{"unclosed": ["#,
            "[1,2,3]",
            "{}",
        ] {
            let response = c.request_line(bad).unwrap();
            assert!(
                response.starts_with(r#"{"ok":false,"error":""#),
                "{bad} => {response}"
            );
            assert!(response.contains(r#""code":"bad-request""#), "{response}");
        }
        // The connection survived all of it.
        assert_eq!(
            c.request_line(r#"{"op":"ping"}"#).unwrap(),
            r#"{"ok":true,"op":"ping"}"#
        );
        // A query parse error keeps the batch-compatible error shape
        // (query echoed, no code field) and the connection open.
        c.request_line(&load_line("med")).unwrap();
        let bad_query = c
            .request_line(r#"{"op":"query","kb":"med","query":"Hep("}"#)
            .unwrap();
        assert!(
            bad_query.starts_with(r#"{"query":"Hep(","ok":false,"error":""#),
            "{bad_query}"
        );
        assert_eq!(
            c.request_line(r#"{"op":"ping"}"#).unwrap(),
            r#"{"ok":true,"op":"ping"}"#
        );
    });
}

#[test]
fn overload_is_rejected_with_backpressure_not_buffering() {
    // One worker, one queue slot, test ops on: occupy the worker and
    // the slot with sleeps, then watch a third request bounce.
    with_server(
        ServerConfig {
            threads: 1,
            max_queue: 1,
            test_ops: true,
            ..ServerConfig::default()
        },
        |addr| {
            let hold = |addr: std::net::SocketAddr| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    c.request_line(r#"{"op":"sleep","ms":600}"#).unwrap()
                })
            };
            let a = hold(*addr); // occupies the single worker
            std::thread::sleep(Duration::from_millis(150));
            let b = hold(*addr); // occupies the single queue slot
            std::thread::sleep(Duration::from_millis(150));

            let mut c = Client::connect(*addr).unwrap();
            c.request_line(&load_line("med")).unwrap(); // control op: not queued
            let rejected = c
                .request_line(r#"{"op":"query","kb":"med","query":"Hep(Eric)"}"#)
                .unwrap();
            assert!(rejected.contains(r#""code":"overloaded""#), "{rejected}");
            assert!(rejected.contains("queue full"), "{rejected}");

            // The held requests complete normally; afterwards the same
            // query is admitted and answered.
            assert!(a.join().unwrap().contains(r#""ok":true"#));
            assert!(b.join().unwrap().contains(r#""ok":true"#));
            let answered = c
                .request_line(r#"{"op":"query","kb":"med","query":"Hep(Eric)"}"#)
                .unwrap();
            assert!(answered.contains(r#""value":0.8"#), "{answered}");

            let stats = c.request_line(r#"{"op":"stats"}"#).unwrap();
            let v = Value::parse(&stats).unwrap();
            let queries = v.get("queries").unwrap();
            assert_eq!(
                queries.get("rejected").and_then(Value::as_u64),
                Some(1),
                "{stats}"
            );
        },
    );
}

#[test]
fn oversized_lines_are_answered_and_resynced_not_buffered() {
    with_server(config(), |addr| {
        let mut c = Client::connect(addr).unwrap();
        // Lines past MAX_LINE get exactly one structured error each and
        // leave the connection usable — whether the overflow completes
        // with a newline (barely over) or streams far past the cap
        // (trips mid-line, then resynchronizes at the newline).
        for extra in [128, rw_server::MAX_LINE] {
            let huge = "x".repeat(rw_server::MAX_LINE + extra);
            let response = c.request_line(&huge).unwrap();
            assert!(response.contains(r#""code":"bad-request""#), "{response}");
            assert!(response.contains("exceeds"), "{response}");
            // Resynchronized: the next request works.
            assert_eq!(
                c.request_line(r#"{"op":"ping"}"#).unwrap(),
                r#"{"ok":true,"op":"ping"}"#
            );
        }
    });
}

#[test]
fn sleep_op_is_refused_without_test_ops() {
    with_server(config(), |addr| {
        let mut c = Client::connect(addr).unwrap();
        let response = c.request_line(r#"{"op":"sleep","ms":1}"#).unwrap();
        assert!(response.contains(r#""code":"bad-request""#), "{response}");
        assert!(response.contains("test-only"), "{response}");
    });
}

#[test]
fn exact_and_approx_sessions_coexist_per_loaded_kb() {
    with_server(config(), |addr| {
        let mut c = Client::connect(addr).unwrap();
        c.request_line(&load_line("exact")).unwrap();
        let loaded = c
            .request_line(&format!(
                r#"{{"op":"load","kb":"mc","text":"{MED_KB}","approx":{{"seed":42,"samples":32768}}}}"#
            ))
            .unwrap();
        assert!(loaded.contains(r#""approx":true"#), "{loaded}");

        // The trap conjunction: sampled on the approx KB...
        let sampled = c
            .request_line(r#"{"op":"query","kb":"mc","query":"Hep(Eric) & Hep(Tom)"}"#)
            .unwrap();
        assert!(sampled.contains(r#""type":"approximate""#), "{sampled}");
        assert!(sampled.contains(r#""mc":{"drawn":"#), "{sampled}");
        // ...and the exact KB answers a theorem query exactly, with no
        // cross-talk from the sampled keyspace.
        let exact = c
            .request_line(r#"{"op":"query","kb":"exact","query":"Hep(Eric)"}"#)
            .unwrap();
        assert!(exact.contains(r#""type":"point","value":0.8"#), "{exact}");
        assert!(exact.contains(r#""cache_hit":false"#), "{exact}");

        // Same seed, same KB: reloading under another name and re-asking
        // hits the shared cache (sampling is deterministic, so the entry
        // is reusable).
        c.request_line(&format!(
            r#"{{"op":"load","kb":"mc2","text":"{MED_KB}","approx":{{"seed":42,"samples":32768}}}}"#
        ))
        .unwrap();
        let again = c
            .request_line(r#"{"op":"query","kb":"mc2","query":"Hep(Eric) & Hep(Tom)"}"#)
            .unwrap();
        assert!(again.contains(r#""cache_hit":true"#), "{again}");
    });
}

#[test]
fn pipelined_requests_answer_in_request_order_and_resync_after_oversize() {
    with_server(config(), |addr| {
        let mut c = Client::connect(addr).unwrap();
        // One burst, no reads in between: control ops, queries, a
        // malformed line and an oversized line all pipeline through the
        // event loop, and the answers come back strictly in request
        // order — the oversized line costs exactly one error and the
        // requests behind it stay correctly framed (the satellite-3
        // regression pin, at wire level).
        c.send_line(r#"{"op":"ping"}"#).unwrap();
        c.send_line(&load_line("med")).unwrap();
        c.send_line(r#"{"op":"query","kb":"med","query":"Hep(Eric)"}"#)
            .unwrap();
        c.send_line("garbage that is not json").unwrap();
        c.send_line(&"x".repeat(rw_server::MAX_LINE + 1)).unwrap();
        c.send_line(r#"{"op":"query","kb":"med","query":"!Hep(Eric)"}"#)
            .unwrap();
        c.send_line(r#"{"op":"ping"}"#).unwrap();

        assert_eq!(c.recv_line().unwrap(), r#"{"ok":true,"op":"ping"}"#);
        assert!(c.recv_line().unwrap().contains(r#""op":"load""#));
        let first = c.recv_line().unwrap();
        assert!(
            first.contains(r#""query":"Hep(Eric)""#) && first.contains(r#""value":0.8"#),
            "{first}"
        );
        let bad = c.recv_line().unwrap();
        assert!(bad.contains(r#""code":"bad-request""#), "{bad}");
        let oversized = c.recv_line().unwrap();
        assert!(
            oversized.contains(r#""code":"bad-request""#) && oversized.contains("exceeds"),
            "{oversized}"
        );
        let second = c.recv_line().unwrap();
        assert!(
            second.contains(r#""query":"!Hep(Eric)""#) && second.contains(r#""value":0.2"#),
            "{second}"
        );
        assert_eq!(c.recv_line().unwrap(), r#"{"ok":true,"op":"ping"}"#);
    });
}

#[test]
fn idle_connections_are_evicted_and_active_ones_are_not() {
    with_server(
        ServerConfig {
            threads: 1,
            idle_timeout_ms: 150,
            ..ServerConfig::default()
        },
        |addr| {
            let mut idle = Client::connect(addr).unwrap();
            assert!(idle
                .request_line(r#"{"op":"ping"}"#)
                .unwrap()
                .contains("ping"));
            let mut active = Client::connect(addr).unwrap();
            // The active connection keeps traffic flowing through the
            // idle window; the quiet one gets evicted.
            for _ in 0..12 {
                std::thread::sleep(Duration::from_millis(50));
                assert!(active
                    .request_line(r#"{"op":"ping"}"#)
                    .unwrap()
                    .contains("ping"));
            }
            let evicted = idle.request_line(r#"{"op":"ping"}"#);
            assert!(evicted.is_err(), "idle conn survived: {evicted:?}");
            let metrics = active.request_line(r#"{"op":"metrics"}"#).unwrap();
            let v = Value::parse(&metrics).unwrap();
            let closed = v
                .get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("conns.idle_closed"))
                .and_then(Value::as_u64)
                .unwrap_or(0);
            assert!(closed >= 1, "{metrics}");
        },
    );
}

#[test]
fn connections_past_the_ceiling_are_refused_with_a_structured_error() {
    with_server(
        ServerConfig {
            threads: 1,
            max_conns: 2,
            ..ServerConfig::default()
        },
        |addr| {
            let mut a = Client::connect(addr).unwrap();
            let mut b = Client::connect(addr).unwrap();
            assert!(a.request_line(r#"{"op":"ping"}"#).unwrap().contains("ping"));
            assert!(b.request_line(r#"{"op":"ping"}"#).unwrap().contains("ping"));
            // The third connection is accepted just long enough to be
            // told why it is refused.
            let mut refused = Client::connect(addr).unwrap();
            let line = refused.recv_line().unwrap();
            assert!(line.contains(r#""code":"overloaded""#), "{line}");
            assert!(line.contains("connection limit reached"), "{line}");
            // Closing one admitted connection frees the slot.
            drop(a);
            std::thread::sleep(Duration::from_millis(100));
            let mut c = Client::connect(addr).unwrap();
            assert!(c.request_line(r#"{"op":"ping"}"#).unwrap().contains("ping"));
        },
    );
}

#[test]
fn graceful_drain_completes_in_flight_work_and_refuses_new_connects() {
    let server = Arc::new(
        Server::bind(ServerConfig {
            threads: 1,
            test_ops: true,
            ..ServerConfig::default()
        })
        .unwrap(),
    );
    let addr = server.local_addr().unwrap();
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("run"))
    };

    // A request is mid-flight on the single worker when shutdown lands.
    let mut inflight = Client::connect(addr).unwrap();
    inflight.send_line(r#"{"op":"sleep","ms":700}"#).unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let mut ctl = Client::connect(addr).unwrap();
    assert!(ctl
        .request_line(r#"{"op":"shutdown"}"#)
        .unwrap()
        .contains("shutdown"));

    // While the drain waits on the in-flight sleep, a new connection is
    // told the server is going away instead of hanging in the backlog.
    let mut late = Client::connect(addr).unwrap();
    let refusal = late.recv_line().unwrap();
    assert!(refusal.contains(r#""code":"shutting-down""#), "{refusal}");

    // The admitted request still completes and flushes before close.
    assert_eq!(inflight.recv_line().unwrap(), r#"{"ok":true,"op":"sleep"}"#);
    runner.join().expect("run() returns once drained");
}

#[test]
fn shutdown_request_stops_the_whole_server() {
    let server = Server::bind(config()).unwrap();
    let addr = server.local_addr().unwrap();
    let runner = std::thread::spawn(move || {
        server.run().expect("run");
        // Returning from run() drops the Server — and its listener.
    });
    let mut c = Client::connect(addr).unwrap();
    assert!(c
        .request_line(r#"{"op":"shutdown"}"#)
        .unwrap()
        .contains("shutdown"));
    // run() returns on its own — no external stop() needed — and once
    // the listener is dropped new connections are refused.
    runner.join().expect("join");
    std::thread::sleep(Duration::from_millis(50));
    assert!(Client::connect(addr).is_err());
}
