//! The sharded, lock-free-on-the-hot-path metrics registry.
//!
//! Names are resolved to handles ([`Counter`], [`Gauge`],
//! [`HistogramHandle`]) through sharded `RwLock<HashMap>`s: resolving a
//! name that already exists takes only a read lock and an `Arc` clone,
//! and every *recording* operation on a handle is a single relaxed
//! atomic — instrumented code never blocks on the registry. Callers on
//! genuinely hot paths should resolve once and keep the handle.
//!
//! The process-global registry lives behind [`crate::registry`]; the
//! [`crate::enabled`] flag lets benchmarks compare instrumented vs.
//! uninstrumented throughput without rebuilding.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

const SHARDS: usize = 8;

/// A monotone counter handle (cheap to clone, lock-free to bump).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle (see [`Histogram`] for bucket semantics).
#[derive(Clone, Debug)]
pub struct HistogramHandle(Arc<Histogram>);

impl HistogramHandle {
    /// Records one microsecond sample.
    pub fn record_us(&self, us: u64) {
        self.0.record(us);
    }

    /// A point-in-time summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

#[derive(Default)]
struct Shard {
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

/// A registry of named counters, gauges and latency histograms.
pub struct MetricsRegistry {
    shards: Vec<Shard>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Resolves `name` in one typed map: read-lock fast path, write-lock
/// insert on first sight.
fn resolve<T: Default>(map: &RwLock<HashMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().expect("metrics shard poisoned").get(name) {
        return Arc::clone(found);
    }
    Arc::clone(
        map.write()
            .expect("metrics shard poisoned")
            .entry(name.to_string())
            .or_default(),
    )
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
        }
    }

    fn shard(&self, name: &str) -> &Shard {
        &self.shards[(fnv1a(name) as usize) % SHARDS]
    }

    /// The counter registered under `name` (created zeroed on first use).
    pub fn counter(&self, name: &str) -> Counter {
        Counter(resolve(&self.shard(name).counters, name))
    }

    /// The gauge registered under `name` (created zeroed on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(resolve(&self.shard(name).gauges, name))
    }

    /// The histogram registered under `name` (created empty on first use).
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        HistogramHandle(resolve(&self.shard(name).histograms, name))
    }

    /// A consistent-enough point-in-time copy of every metric, sorted by
    /// name for stable exposition.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for shard in &self.shards {
            for (name, v) in shard
                .counters
                .read()
                .expect("metrics shard poisoned")
                .iter()
            {
                counters.push((name.clone(), v.load(Ordering::Relaxed)));
            }
            for (name, v) in shard.gauges.read().expect("metrics shard poisoned").iter() {
                gauges.push((name.clone(), v.load(Ordering::Relaxed)));
            }
            for (name, h) in shard
                .histograms
                .read()
                .expect("metrics shard poisoned")
                .iter()
            {
                histograms.push((name.clone(), h.snapshot()));
            }
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A frozen copy of the whole registry, ready to render.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, summary)` pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

use crate::escape;

impl RegistrySnapshot {
    /// The snapshot as one JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{..}}`.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(n, v)| format!(r#""{}":{}"#, escape(n), v))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(n, v)| format!(r#""{}":{}"#, escape(n), v))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(n, h)| format!(r#""{}":{}"#, escape(n), h.to_json()))
            .collect();
        format!(
            r#"{{"counters":{{{}}},"gauges":{{{}}},"histograms":{{{}}}}}"#,
            counters.join(","),
            gauges.join(","),
            histograms.join(",")
        )
    }

    /// The snapshot as human-oriented text, one metric per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (n, v) in &self.counters {
            out.push_str(&format!("counter {n} {v}\n"));
        }
        for (n, v) in &self.gauges {
            out.push_str(&format!("gauge {n} {v}\n"));
        }
        for (n, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {n} count={} sum_us={} p50_us={} p90_us={} p99_us={} max_us={}\n",
                h.count, h.sum_us, h.p50_us, h.p90_us, h.p99_us, h.max_us
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("a.hits").add(2);
        reg.counter("a.hits").inc();
        assert_eq!(reg.counter("a.hits").get(), 3);
        reg.gauge("q.depth").set(7);
        assert_eq!(reg.gauge("q.depth").get(), 7);
        reg.histogram("lat_us").record_us(10);
        assert_eq!(reg.histogram("lat_us").snapshot().count, 1);
    }

    #[test]
    fn snapshot_sorts_names_and_renders_both_formats() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").inc();
        reg.gauge("depth").set(3);
        reg.histogram("stage.theorems.wall_us").record_us(250);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].0, "a.first");
        assert_eq!(snap.counters[1].0, "z.last");
        let json = snap.to_json();
        assert!(json.starts_with(r#"{"counters":{"#), "{json}");
        assert!(json.contains(r#""a.first":1,"z.last":1"#), "{json}");
        assert!(json.contains(r#""depth":3"#), "{json}");
        assert!(
            json.contains(r#""stage.theorems.wall_us":{"count":1"#),
            "{json}"
        );
        let text = snap.to_text();
        assert!(text.contains("counter a.first 1"), "{text}");
        assert!(text.contains("gauge depth 3"), "{text}");
        assert!(
            text.contains("histogram stage.theorems.wall_us count=1"),
            "{text}"
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let c = reg.counter("spins");
                    let h = reg.histogram("spin_us");
                    for i in 0..1000 {
                        c.inc();
                        h.record_us(i);
                    }
                });
            }
        });
        assert_eq!(reg.counter("spins").get(), 4000);
        assert_eq!(reg.histogram("spin_us").snapshot().count, 4000);
    }
}
