//! Lightweight hierarchical spans with per-query trace ids.
//!
//! A [`SpanRecorder`] collects one request's spans: guard spans
//! ([`SpanRecorder::span`]) time a scope automatically (wall clock plus
//! best-effort thread CPU time) and nest through an internal stack,
//! while [`SpanRecorder::add`] records already-measured intervals (a
//! queue wait, a solver stage replayed from its trace) under an explicit
//! parent. [`SpanRecorder::finish`] yields the flat parent-linked list
//! that the server's slow-query log serializes and `rwq obs` aggregates
//! back into a self/total flamegraph table.
//!
//! Trace ids come from a process-global counter: unique within a server
//! process, cheap, and embedded in both the access log and the slow log
//! so the two can be joined.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// A fresh process-unique trace id.
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Best-effort CPU time of the calling thread, in microseconds.
///
/// Reads `/proc/thread-self/schedstat` on Linux (first field:
/// nanoseconds on-CPU); returns 0 where that is unavailable, so span
/// `cpu_us` fields degrade to zero rather than lying.
pub fn thread_cpu_us() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(text) = std::fs::read_to_string("/proc/thread-self/schedstat") {
            if let Some(first) = text.split_whitespace().next() {
                if let Ok(ns) = first.parse::<u64>() {
                    return ns / 1_000;
                }
            }
        }
    }
    0
}

/// One finished span: a node in the request's span tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// 1-based id, unique within the recorder.
    pub id: usize,
    /// Parent span id, `None` for roots.
    pub parent: Option<usize>,
    /// The span name (e.g. `request`, `answer`, `stage:maxent`).
    pub name: String,
    /// Wall-clock duration (µs).
    pub wall_us: u64,
    /// Thread CPU time consumed inside the span (µs; 0 when
    /// unavailable or externally measured).
    pub cpu_us: u64,
}

struct Inner {
    spans: Vec<SpanRecord>,
    stack: Vec<usize>,
}

/// A per-request span collector. Single-threaded by design (one request
/// is handled by one worker); interior mutability keeps guard spans
/// nestable without threading `&mut` through the handler.
pub struct SpanRecorder {
    trace_id: u64,
    inner: RefCell<Inner>,
}

impl SpanRecorder {
    /// A recorder for one request.
    pub fn new(trace_id: u64) -> SpanRecorder {
        SpanRecorder {
            trace_id,
            inner: RefCell::new(Inner {
                spans: Vec::new(),
                stack: Vec::new(),
            }),
        }
    }

    /// The request's trace id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Opens a guard span named `name`, parented to the innermost open
    /// guard span. Wall and CPU time are measured from now until the
    /// guard drops.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.span_started_at(name, Instant::now())
    }

    /// Opens a guard span whose wall clock started at `start` — for work
    /// that logically began before this thread picked it up, like a
    /// server request that waited in the admission queue: the worker
    /// opens the `request` span backdated to enqueue time, so a
    /// `queue-wait` child can never outlast its parent. CPU time is
    /// still measured from now; only this thread's on-CPU share belongs
    /// to the span.
    pub fn span_started_at(&self, name: &str, start: Instant) -> SpanGuard<'_> {
        let mut inner = self.inner.borrow_mut();
        let id = inner.spans.len() + 1;
        let parent = inner.stack.last().copied();
        inner.spans.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            wall_us: 0,
            cpu_us: 0,
        });
        inner.stack.push(id);
        SpanGuard {
            recorder: self,
            id,
            start,
            cpu_start: thread_cpu_us(),
        }
    }

    /// Records an already-measured span under an explicit parent and
    /// returns its id.
    pub fn add(&self, parent: Option<usize>, name: &str, wall_us: u64, cpu_us: u64) -> usize {
        let mut inner = self.inner.borrow_mut();
        let id = inner.spans.len() + 1;
        inner.spans.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            wall_us,
            cpu_us,
        });
        id
    }

    /// Consumes the recorder, returning every span in id order. Any
    /// still-open guard must have been dropped first (guards borrow the
    /// recorder, so the borrow checker enforces this).
    pub fn finish(self) -> Vec<SpanRecord> {
        self.inner.into_inner().spans
    }
}

/// Closes its span on drop, filling in measured wall/CPU time.
pub struct SpanGuard<'a> {
    recorder: &'a SpanRecorder,
    id: usize,
    start: Instant,
    cpu_start: u64,
}

impl SpanGuard<'_> {
    /// The underlying span id (for parenting manual [`SpanRecorder::add`]
    /// entries under this span after it closes).
    pub fn id(&self) -> usize {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let wall_us = self.start.elapsed().as_micros() as u64;
        let cpu_us = thread_cpu_us().saturating_sub(self.cpu_start);
        let mut inner = self.recorder.inner.borrow_mut();
        if let Some(span) = inner.spans.get_mut(self.id - 1) {
            span.wall_us = wall_us;
            span.cpu_us = cpu_us;
        }
        // Pop this span (and defensively anything opened after it that
        // somehow outlived it) off the open stack.
        while let Some(top) = inner.stack.pop() {
            if top == self.id {
                break;
            }
        }
    }
}

/// Serializes spans as a JSON array:
/// `[{"id":1,"parent":null,"name":"request","wall_us":N,"cpu_us":N},..]`.
pub fn spans_json(spans: &[SpanRecord]) -> String {
    let body: Vec<String> = spans
        .iter()
        .map(|s| {
            format!(
                r#"{{"id":{},"parent":{},"name":"{}","wall_us":{},"cpu_us":{}}}"#,
                s.id,
                s.parent
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "null".to_string()),
                crate::escape(&s.name),
                s.wall_us,
                s.cpu_us
            )
        })
        .collect();
    format!("[{}]", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_increasing() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert!(b > a);
    }

    #[test]
    fn guards_nest_and_manual_adds_attach_anywhere() {
        let rec = SpanRecorder::new(7);
        assert_eq!(rec.trace_id(), 7);
        let answer_id;
        {
            let req = rec.span("request");
            rec.add(Some(req.id()), "queue-wait", 120, 0);
            {
                let ans = rec.span("answer");
                answer_id = ans.id();
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            rec.add(Some(answer_id), "stage:theorems", 9, 0);
        }
        let spans = rec.finish();
        assert_eq!(spans.len(), 4);
        let req = &spans[0];
        assert_eq!(
            (req.id, req.parent, req.name.as_str()),
            (1, None, "request")
        );
        let wait = &spans[1];
        assert_eq!((wait.parent, wait.wall_us), (Some(1), 120));
        let ans = &spans[2];
        assert_eq!((ans.id, ans.parent), (answer_id, Some(1)));
        assert!(ans.wall_us >= 2_000, "guard measured {}µs", ans.wall_us);
        assert!(req.wall_us >= ans.wall_us, "parent covers child");
        let stage = &spans[3];
        assert_eq!(stage.parent, Some(answer_id));
    }

    #[test]
    fn backdated_spans_always_cover_their_queue_wait_child() {
        // The serving-path span tree: the request span opens backdated
        // to enqueue time, so the manually-added queue-wait child fits
        // inside it (the PR-8 gotcha was wait > parent wall).
        let rec = SpanRecorder::new(9);
        let enqueued = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let wait_us = enqueued.elapsed().as_micros() as u64;
        {
            let request = rec.span_started_at("request", enqueued);
            rec.add(Some(request.id()), "queue-wait", wait_us, 0);
        }
        let spans = rec.finish();
        let request = &spans[0];
        let wait = &spans[1];
        assert_eq!(wait.parent, Some(request.id));
        assert!(
            request.wall_us >= wait.wall_us,
            "request {}µs < queue-wait {}µs",
            request.wall_us,
            wait.wall_us
        );
        assert!(request.wall_us >= 20_000, "{}", request.wall_us);
    }

    #[test]
    fn spans_serialize_with_null_parent_and_us_fields() {
        let rec = SpanRecorder::new(1);
        let root = rec.add(None, "request", 50, 10);
        rec.add(Some(root), "answer", 40, 9);
        let json = spans_json(&rec.finish());
        assert!(
            json.starts_with(
                r#"[{"id":1,"parent":null,"name":"request","wall_us":50,"cpu_us":10}"#
            ),
            "{json}"
        );
        assert!(json.contains(r#""parent":1,"name":"answer""#), "{json}");
    }
}
