//! Log2-bucketed latency histograms with lock-free recording.
//!
//! A [`Histogram`] is a fixed array of atomic bucket counters: value `v`
//! (in microseconds, by convention) lands in bucket `⌊log2 v⌋ + 1`, so
//! bucket `i ≥ 1` covers `[2^(i-1), 2^i)` and bucket `0` holds exact
//! zeros. Recording is a single relaxed `fetch_add` — no locks, no
//! allocation — which is what lets the registry stay on the hot path of
//! every solver stage without perturbing the answers it measures.
//!
//! Percentiles are computed at snapshot time by walking the cumulative
//! bucket counts; a reported quantile is the *upper bound* of the bucket
//! the rank falls in (clamped to the observed maximum), i.e. a
//! conservative "at most this" figure with log2 resolution.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: bucket 39 tops out at `2^38 µs` ≈ 76 hours, far beyond
/// any single request this stack will ever serve.
pub const BUCKETS: usize = 40;

/// A lock-free log2-bucketed histogram of `u64` samples (microseconds
/// by convention — every exposed field is `_us`-suffixed).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(value: u64) -> usize {
        ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Upper bound of a bucket (inclusive representative value).
    fn bucket_upper(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            (1u64 << index).saturating_sub(1)
        }
    }

    /// Records one sample. Lock-free; safe from any thread.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy with the percentile math done.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // 1-based rank of the requested quantile.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return Self::bucket_upper(i).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum_us: self.sum.load(Ordering::Relaxed),
            max_us: max,
            p50_us: quantile(0.50),
            p90_us: quantile(0.90),
            p99_us: quantile(0.99),
        }
    }
}

/// The frozen summary of a [`Histogram`] at snapshot time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (µs).
    pub sum_us: u64,
    /// Largest sample (µs).
    pub max_us: u64,
    /// Median, as the upper bound of its log2 bucket (µs).
    pub p50_us: u64,
    /// 90th percentile, same resolution (µs).
    pub p90_us: u64,
    /// 99th percentile, same resolution (µs).
    pub p99_us: u64,
}

impl HistogramSnapshot {
    /// The snapshot as a JSON object (all timing fields `_us`-suffixed).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"count":{},"sum_us":{},"max_us":{},"p50_us":{},"p90_us":{},"p99_us":{}}}"#,
            self.count, self.sum_us, self.max_us, self.p50_us, self.p90_us, self.p99_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_zero_slot() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap, HistogramSnapshot::default());
    }

    #[test]
    fn percentiles_walk_cumulative_counts() {
        let h = Histogram::new();
        // 90 fast samples and 10 slow ones.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum_us, 90 * 100 + 10 * 100_000);
        assert_eq!(snap.max_us, 100_000);
        // p50/p90 land in the [64,128) bucket; p99 in the slow bucket,
        // clamped to the observed max.
        assert_eq!(snap.p50_us, 127);
        assert_eq!(snap.p90_us, 127);
        assert_eq!(snap.p99_us, 100_000);
    }

    #[test]
    fn zeros_stay_in_the_zero_bucket() {
        let h = Histogram::new();
        for _ in 0..5 {
            h.record(0);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.p50_us, 0);
        assert_eq!(snap.p99_us, 0);
        assert_eq!(snap.max_us, 0);
    }

    #[test]
    fn snapshot_json_is_us_suffixed() {
        let h = Histogram::new();
        h.record(7);
        let json = h.snapshot().to_json();
        assert!(json.contains(r#""count":1"#), "{json}");
        assert!(json.contains(r#""sum_us":7"#), "{json}");
        assert!(json.contains(r#""p99_us":7"#), "{json}");
    }
}
