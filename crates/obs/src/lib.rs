//! Always-on observability for the random-worlds serving stack.
//!
//! Random-worlds inference cost is wildly shape-dependent: the same
//! pipeline answers a direct-inference query in microseconds and then
//! spends seconds on a maxent sweep or a low-acceptance Monte-Carlo
//! statistic. This crate is the measurement substrate that makes those
//! cliffs visible in production instead of by accident:
//!
//! - [`MetricsRegistry`] — named atomic counters, gauges and
//!   log2-bucketed latency [`Histogram`]s with p50/p90/p99 snapshot
//!   math. Recording is lock-free; one process-global instance lives
//!   behind [`registry`].
//! - [`SpanRecorder`] / [`SpanGuard`] — per-request hierarchical
//!   wall/CPU spans with process-unique trace ids ([`next_trace_id`]),
//!   serialized by [`spans_json`] into the server's slow-query log and
//!   re-aggregated by `rwq obs`.
//! - JSON ([`RegistrySnapshot::to_json`]) and text
//!   ([`RegistrySnapshot::to_text`]) exposition.
//!
//! The hard contract, shared with every consumer: **observability never
//! changes answer bytes**. Instrumentation only appends to side
//! channels (the metrics registry, the slow/access logs); response
//! lines stay byte-identical with it on or off, and every timing field
//! anywhere is `_us`-suffixed so the golden corpus's time masking keeps
//! working. The [`set_enabled`]/[`enabled`] switch exists for overhead
//! benchmarks, not correctness: code must behave identically either
//! way, just faster with recording skipped.

mod histogram;
mod registry;
mod span;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, HistogramHandle, MetricsRegistry, RegistrySnapshot};
pub use span::{next_trace_id, spans_json, thread_cpu_us, SpanGuard, SpanRecord, SpanRecorder};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(true);

/// The process-global registry every instrumented crate records into.
pub fn registry() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Whether instrumentation sites should record (default: on). A single
/// relaxed load — cheap enough to check on any hot path.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording at instrumentation sites on or off. Exists so the
/// overhead benchmark can compare instrumented vs. uninstrumented
/// throughput in one process; answers must not depend on it.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Minimal JSON string escaping (metric and span names are
/// code-controlled, but exposition must never emit broken JSON).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared_and_enabled_by_default() {
        assert!(enabled());
        registry().counter("lib.smoke").inc();
        assert_eq!(registry().counter("lib.smoke").get(), 1);
    }

    #[test]
    fn escape_handles_quotes_and_control_bytes() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
