//! Propositional default reasoning: ε-semantics (System P), Pearl's
//! System Z, and the Goldszmidt–Morris–Pearl **maximum-entropy plausible
//! consequence** relation — the latter implemented through the paper's own
//! Theorem 6.1 embedding into unary random worlds.
//!
//! The paper (§3, §6) positions random worlds against the propositional
//! default-reasoning landscape: ε-entailment is exactly the five KLM core
//! rules (too weak for inheritance), System Z adds rational monotonicity
//! but drowns exceptional subclasses, and GMP90's ME-plausibility handles
//! exceptional-subclass inheritance — and Theorem 6.1 shows ME-plausibility
//! is the unary, single-tolerance special case of random worlds. This crate
//! provides all three so the experiment harness can reproduce those
//! comparisons.

pub mod me;
pub mod prop;
pub mod systems;

pub use me::{me_plausible, MeError};
pub use prop::{DefaultRule, PropFormula};
pub use systems::{epsilon_consistent, p_entails, z_entails, z_partition};
