//! ε-semantics (System P) and Pearl's System Z over propositional default
//! rules.
//!
//! * **ε-consistency / p-entailment** (Adams; Goldszmidt–Pearl): a rule set
//!   `R` is ε-consistent iff the toleration procedure empties it — repeatedly
//!   remove every rule *tolerated* by the remainder (some world verifies the
//!   rule while falsifying none of the rest). `R` p-entails `B → C` iff
//!   `R ∪ {B → ¬C}` is ε-inconsistent. p-entailment is exactly the five core
//!   KLM rules of the paper's §3.2 (and is therefore too weak for
//!   inheritance — reproduced in tests).
//! * **System Z** (Pearl): rank rules by the toleration partition; rank
//!   worlds by the highest-ranked rule they falsify; entail `B → C` iff the
//!   best `B ∧ C` world is strictly better ranked than the best `B ∧ ¬C`
//!   world. System Z adds rational monotonicity but *drowns* exceptional
//!   subclasses (paper §3.3) — also reproduced in tests.

use crate::prop::{DefaultRule, PropFormula};

fn world_count(rules: &[DefaultRule], extra: &[&PropFormula]) -> u32 {
    let mut n = 0usize;
    for r in rules {
        n = n.max(r.var_count());
    }
    for f in extra {
        n = n.max(f.var_count());
    }
    assert!(n <= 25, "too many propositional variables ({n})");
    1u32 << n
}

/// Is `rule` tolerated by `others`? (Some world verifies `rule` and
/// materially satisfies every rule in `others`.)
pub fn tolerated(rule: &DefaultRule, others: &[&DefaultRule]) -> bool {
    let all: Vec<&DefaultRule> = others.iter().copied().chain([rule]).collect();
    let mut n = 0usize;
    for r in &all {
        n = n.max(r.var_count());
    }
    let worlds = 1u32 << n;
    (0..worlds).any(|w| rule.verified(w) && others.iter().all(|o| !o.falsified(w)))
}

/// The toleration partition `Z₀, Z₁, ...`: `Zᵢ` contains the rules tolerated
/// by everything not yet removed. Returns `None` if the set is
/// ε-inconsistent (some nonempty remainder tolerates none of its rules).
pub fn z_partition(rules: &[DefaultRule]) -> Option<Vec<Vec<usize>>> {
    let mut remaining: Vec<usize> = (0..rules.len()).collect();
    let mut partition = Vec::new();
    while !remaining.is_empty() {
        let level: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                let others: Vec<&DefaultRule> = remaining
                    .iter()
                    .filter(|&&j| j != i)
                    .map(|&j| &rules[j])
                    .collect();
                tolerated(&rules[i], &others)
            })
            .collect();
        if level.is_empty() {
            return None;
        }
        remaining.retain(|i| !level.contains(i));
        partition.push(level);
    }
    Some(partition)
}

/// ε-consistency of a rule set.
pub fn epsilon_consistent(rules: &[DefaultRule]) -> bool {
    z_partition(rules).is_some()
}

/// p-entailment (= ε-entailment = System P): `R |~ B → C` iff
/// `R ∪ {B → ¬C}` is ε-inconsistent.
pub fn p_entails(rules: &[DefaultRule], premise: &PropFormula, conclusion: &PropFormula) -> bool {
    let mut extended: Vec<DefaultRule> = rules.to_vec();
    extended.push(DefaultRule::new(
        premise.clone(),
        PropFormula::not(conclusion.clone()),
    ));
    !epsilon_consistent(&extended)
}

/// The System-Z rank of a world: 0 if it falsifies no rule, else
/// `1 + max` toleration level of a falsified rule.
pub fn z_rank(rules: &[DefaultRule], partition: &[Vec<usize>], world: u32) -> u32 {
    let mut rank = 0u32;
    for (level, idxs) in partition.iter().enumerate() {
        for &i in idxs {
            if rules[i].falsified(world) {
                rank = rank.max(level as u32 + 1);
            }
        }
    }
    rank
}

/// System-Z entailment: `κ(B ∧ C) < κ(B ∧ ¬C)` (with `κ(φ) = min` rank of a
/// `φ`-world; an unsatisfiable side has rank ∞). Returns `None` when the
/// rule set is ε-inconsistent.
pub fn z_entails(
    rules: &[DefaultRule],
    premise: &PropFormula,
    conclusion: &PropFormula,
) -> Option<bool> {
    let partition = z_partition(rules)?;
    let worlds = world_count(rules, &[premise, conclusion]);
    let mut best_with = u32::MAX;
    let mut best_without = u32::MAX;
    for w in 0..worlds {
        if !premise.eval(w) {
            continue;
        }
        let rank = z_rank(rules, &partition, w);
        if conclusion.eval(w) {
            best_with = best_with.min(rank);
        } else {
            best_without = best_without.min(rank);
        }
    }
    Some(best_with < best_without)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::VarTable;

    /// The penguin triad: birds fly, penguins don't, penguins are birds.
    fn penguin_rules(vt: &mut VarTable) -> Vec<DefaultRule> {
        vec![
            DefaultRule::new(vt.parse("bird").unwrap(), vt.parse("fly").unwrap()),
            DefaultRule::new(vt.parse("penguin").unwrap(), vt.parse("!fly").unwrap()),
            DefaultRule::new(vt.parse("penguin").unwrap(), vt.parse("bird").unwrap()),
        ]
    }

    #[test]
    fn penguins_are_consistent_and_partitioned() {
        let mut vt = VarTable::new();
        let rules = penguin_rules(&mut vt);
        let p = z_partition(&rules).unwrap();
        // bird→fly is tolerated first; the penguin rules form level 1.
        assert_eq!(p.len(), 2);
        assert_eq!(p[0], vec![0]);
        assert_eq!(p[1], vec![1, 2]);
    }

    #[test]
    fn contradictory_defaults_are_inconsistent() {
        let mut vt = VarTable::new();
        let rules = vec![
            DefaultRule::new(vt.parse("bird").unwrap(), vt.parse("fly").unwrap()),
            DefaultRule::new(vt.parse("bird").unwrap(), vt.parse("!fly").unwrap()),
        ];
        assert!(!epsilon_consistent(&rules));
    }

    #[test]
    fn p_entailment_gets_specificity_but_not_inheritance() {
        let mut vt = VarTable::new();
        let mut rules = penguin_rules(&mut vt);
        let penguin = vt.parse("penguin").unwrap();
        let no_fly = vt.parse("!fly").unwrap();
        // Specificity: penguins don't fly.
        assert!(p_entails(&rules, &penguin, &no_fly));
        // But p-entailment cannot do exceptional-subclass inheritance:
        // add birds→warm; penguins are NOT p-entailed to be warm.
        rules.push(DefaultRule::new(
            vt.parse("bird").unwrap(),
            vt.parse("warm").unwrap(),
        ));
        let warm = vt.parse("warm").unwrap();
        assert!(!p_entails(&rules, &penguin, &warm));
    }

    #[test]
    fn z_gets_irrelevance_but_drowns() {
        let mut vt = VarTable::new();
        let mut rules = penguin_rules(&mut vt);
        let penguin = vt.parse("penguin").unwrap();
        let no_fly = vt.parse("!fly").unwrap();
        assert_eq!(z_entails(&rules, &penguin, &no_fly), Some(true));
        // Irrelevance (rational monotonicity): red birds still fly.
        let red_bird = vt.parse("bird & red").unwrap();
        let fly = vt.parse("fly").unwrap();
        assert_eq!(z_entails(&rules, &red_bird, &fly), Some(true));
        // The drowning problem (paper §3.3): penguins inherit NOTHING from
        // birds in System Z, not even warm-bloodedness.
        rules.push(DefaultRule::new(
            vt.parse("bird").unwrap(),
            vt.parse("warm").unwrap(),
        ));
        let warm = vt.parse("warm").unwrap();
        assert_eq!(z_entails(&rules, &penguin, &warm), Some(false));
    }

    #[test]
    fn p_entailment_satisfies_core_klm_rules_numerically() {
        // Cut on a small theory: from {a→b, a&b→c}: a |~ c.
        let mut vt = VarTable::new();
        let rules = vec![
            DefaultRule::new(vt.parse("a").unwrap(), vt.parse("b").unwrap()),
            DefaultRule::new(vt.parse("a & b").unwrap(), vt.parse("c").unwrap()),
        ];
        let a = vt.parse("a").unwrap();
        let c = vt.parse("c").unwrap();
        assert!(p_entails(&rules, &a, &c));
        // And: a |~ b and a |~ c gives a |~ b & c.
        let bc = vt.parse("b & c").unwrap();
        assert!(p_entails(&rules, &a, &bc));
        // Reflexivity.
        assert!(p_entails(&rules, &a, &a));
    }

    #[test]
    fn no_transitivity_in_p() {
        // {a→b, b→c} does not p-entail a→c (the classic failure).
        let mut vt = VarTable::new();
        let rules = vec![
            DefaultRule::new(vt.parse("a").unwrap(), vt.parse("b").unwrap()),
            DefaultRule::new(vt.parse("b").unwrap(), vt.parse("c").unwrap()),
        ];
        let a = vt.parse("a").unwrap();
        let c = vt.parse("c").unwrap();
        assert!(!p_entails(&rules, &a, &c));
        // System Z does conclude it (rational monotonicity).
        assert_eq!(z_entails(&rules, &a, &c), Some(true));
    }
}
