//! Propositional formulas, default rules and world (truth-assignment)
//! semantics.
//!
//! Variables are interned by name; worlds are bitmasks over the variable
//! set, so rule sets with up to ~20 variables can be decided by exhaustive
//! evaluation (the paper's benchmark examples use 3–6).

use std::collections::HashMap;
use std::fmt;

/// A propositional formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PropFormula {
    True,
    False,
    Var(usize),
    Not(Box<PropFormula>),
    And(Box<PropFormula>, Box<PropFormula>),
    Or(Box<PropFormula>, Box<PropFormula>),
    Implies(Box<PropFormula>, Box<PropFormula>),
}

impl PropFormula {
    // A by-value constructor, not a `std::ops::Not` (which takes `self`
    // and would force call-site boxing idioms).
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: PropFormula) -> PropFormula {
        PropFormula::Not(Box::new(f))
    }

    pub fn and(a: PropFormula, b: PropFormula) -> PropFormula {
        PropFormula::And(Box::new(a), Box::new(b))
    }

    pub fn or(a: PropFormula, b: PropFormula) -> PropFormula {
        PropFormula::Or(Box::new(a), Box::new(b))
    }

    pub fn implies(a: PropFormula, b: PropFormula) -> PropFormula {
        PropFormula::Implies(Box::new(a), Box::new(b))
    }

    /// Evaluates under a world given as a bitmask (`bit i` = variable `i`).
    pub fn eval(&self, world: u32) -> bool {
        match self {
            PropFormula::True => true,
            PropFormula::False => false,
            PropFormula::Var(i) => world >> i & 1 == 1,
            PropFormula::Not(f) => !f.eval(world),
            PropFormula::And(a, b) => a.eval(world) && b.eval(world),
            PropFormula::Or(a, b) => a.eval(world) || b.eval(world),
            PropFormula::Implies(a, b) => !a.eval(world) || b.eval(world),
        }
    }

    /// Highest variable index + 1.
    pub fn var_count(&self) -> usize {
        match self {
            PropFormula::True | PropFormula::False => 0,
            PropFormula::Var(i) => i + 1,
            PropFormula::Not(f) => f.var_count(),
            PropFormula::And(a, b) | PropFormula::Or(a, b) | PropFormula::Implies(a, b) => {
                a.var_count().max(b.var_count())
            }
        }
    }
}

/// A default rule `premise → conclusion` ("premises are typically
/// conclusions").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DefaultRule {
    pub premise: PropFormula,
    pub conclusion: PropFormula,
}

impl DefaultRule {
    pub fn new(premise: PropFormula, conclusion: PropFormula) -> DefaultRule {
        DefaultRule {
            premise,
            conclusion,
        }
    }

    /// The world *verifies* the rule: premise and conclusion both hold.
    pub fn verified(&self, world: u32) -> bool {
        self.premise.eval(world) && self.conclusion.eval(world)
    }

    /// The world *falsifies* the rule: premise holds, conclusion fails.
    pub fn falsified(&self, world: u32) -> bool {
        self.premise.eval(world) && !self.conclusion.eval(world)
    }

    pub fn var_count(&self) -> usize {
        self.premise.var_count().max(self.conclusion.var_count())
    }
}

/// Interns variable names so formulas can be written as text.
#[derive(Clone, Debug, Default)]
pub struct VarTable {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl VarTable {
    pub fn new() -> VarTable {
        VarTable::default()
    }

    pub fn var(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        i
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Parses `p & !q or r => s` (precedence: `!` > `&` > `or` > `=>`,
    /// right-associative implication).
    pub fn parse(&mut self, src: &str) -> Result<PropFormula, String> {
        let tokens = tokenize(src)?;
        let mut pos = 0usize;
        let f = parse_implies(&tokens, &mut pos, self)?;
        if pos != tokens.len() {
            return Err(format!("trailing input at token {pos}"));
        }
        Ok(f)
    }
}

#[derive(Debug, PartialEq, Clone)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Bang,
    Amp,
    Or,
    Implies,
}

fn tokenize(src: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            c if c.is_ascii_whitespace() => i += 1,
            b'(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            b'!' => {
                out.push(Tok::Bang);
                i += 1;
            }
            b'&' => {
                out.push(Tok::Amp);
                i += 1;
            }
            b'=' if i + 1 < b.len() && b[i + 1] == b'>' => {
                out.push(Tok::Implies);
                i += 2;
            }
            c if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = std::str::from_utf8(&b[start..i]).unwrap();
                if word == "or" {
                    out.push(Tok::Or);
                } else if word == "and" {
                    out.push(Tok::Amp);
                } else {
                    out.push(Tok::Ident(word.to_string()));
                }
            }
            other => return Err(format!("unexpected character `{}`", other as char)),
        }
    }
    Ok(out)
}

fn parse_implies(t: &[Tok], pos: &mut usize, vt: &mut VarTable) -> Result<PropFormula, String> {
    let lhs = parse_or(t, pos, vt)?;
    if t.get(*pos) == Some(&Tok::Implies) {
        *pos += 1;
        let rhs = parse_implies(t, pos, vt)?;
        return Ok(PropFormula::implies(lhs, rhs));
    }
    Ok(lhs)
}

fn parse_or(t: &[Tok], pos: &mut usize, vt: &mut VarTable) -> Result<PropFormula, String> {
    let mut lhs = parse_and(t, pos, vt)?;
    while t.get(*pos) == Some(&Tok::Or) {
        *pos += 1;
        let rhs = parse_and(t, pos, vt)?;
        lhs = PropFormula::or(lhs, rhs);
    }
    Ok(lhs)
}

fn parse_and(t: &[Tok], pos: &mut usize, vt: &mut VarTable) -> Result<PropFormula, String> {
    let mut lhs = parse_unary(t, pos, vt)?;
    while t.get(*pos) == Some(&Tok::Amp) {
        *pos += 1;
        let rhs = parse_unary(t, pos, vt)?;
        lhs = PropFormula::and(lhs, rhs);
    }
    Ok(lhs)
}

fn parse_unary(t: &[Tok], pos: &mut usize, vt: &mut VarTable) -> Result<PropFormula, String> {
    match t.get(*pos) {
        Some(Tok::Bang) => {
            *pos += 1;
            Ok(PropFormula::not(parse_unary(t, pos, vt)?))
        }
        Some(Tok::LParen) => {
            *pos += 1;
            let f = parse_implies(t, pos, vt)?;
            if t.get(*pos) != Some(&Tok::RParen) {
                return Err("expected `)`".to_string());
            }
            *pos += 1;
            Ok(f)
        }
        Some(Tok::Ident(name)) => {
            let name = name.clone();
            *pos += 1;
            match name.as_str() {
                "true" => Ok(PropFormula::True),
                "false" => Ok(PropFormula::False),
                _ => Ok(PropFormula::Var(vt.var(&name))),
            }
        }
        other => Err(format!("expected a formula, found {other:?}")),
    }
}

impl fmt::Display for PropFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropFormula::True => write!(f, "true"),
            PropFormula::False => write!(f, "false"),
            PropFormula::Var(i) => write!(f, "v{i}"),
            PropFormula::Not(g) => write!(f, "!({g})"),
            PropFormula::And(a, b) => write!(f, "({a} & {b})"),
            PropFormula::Or(a, b) => write!(f, "({a} or {b})"),
            PropFormula::Implies(a, b) => write!(f, "({a} => {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_eval() {
        let mut vt = VarTable::new();
        let f = vt.parse("p & !q or r").unwrap();
        // p=bit0, q=bit1, r=bit2.
        assert!(f.eval(0b001)); // p, !q
        assert!(!f.eval(0b011)); // p, q
        assert!(f.eval(0b111)); // r saves it
        assert!(!f.eval(0b000));
    }

    #[test]
    fn implication_right_assoc() {
        let mut vt = VarTable::new();
        let f = vt.parse("p => q => r").unwrap();
        // p => (q => r): false only when p, q, !r.
        assert!(!f.eval(0b011));
        assert!(f.eval(0b111));
        assert!(f.eval(0b000));
    }

    #[test]
    fn rules_verify_and_falsify() {
        let mut vt = VarTable::new();
        let r = DefaultRule::new(vt.parse("bird").unwrap(), vt.parse("fly").unwrap());
        assert!(r.verified(0b11));
        assert!(r.falsified(0b01));
        assert!(!r.verified(0b00));
        assert!(!r.falsified(0b10));
    }

    #[test]
    fn var_table_is_stable() {
        let mut vt = VarTable::new();
        let a = vt.parse("p & q").unwrap();
        let b = vt.parse("q & p").unwrap();
        assert_eq!(vt.len(), 2);
        assert!(a.eval(0b11) && b.eval(0b11));
        assert_eq!(vt.name(0), "p");
    }

    #[test]
    fn parse_errors() {
        let mut vt = VarTable::new();
        assert!(vt.parse("p &").is_err());
        assert!(vt.parse("(p").is_err());
        assert!(vt.parse("p q").is_err());
        assert!(vt.parse("#").is_err());
    }
}
