//! GMP90 maximum-entropy plausible consequence via the paper's Theorem 6.1
//! embedding.
//!
//! Theorem 6.1: translate every default rule `B → C` into the statistical
//! assertion `||ψ_C(x) | ψ_B(x)||_x ≈₁ 1` (propositional variables become
//! unary predicates, all rules share one tolerance index, matching GMP90's
//! single `ε`), pick a fresh constant `c`, and then
//!
//! > `B → C` is an ME-plausible consequence of `R` iff
//! > `Pr∞(ψ_C(c) | ∧_r θ_r ∧ ψ_B(c)) = 1`.
//!
//! We implement ME-plausibility *literally this way*, by handing the
//! translated knowledge base to the workspace's maximum-entropy engine —
//! so the comparison between GMP90 and random worlds in the experiment
//! harness is the identity the paper proves, computed end to end.

use crate::prop::{DefaultRule, PropFormula, VarTable};
use rw_logic::KnowledgeBase;
use rw_maxent::{degree_of_belief_limit, LimitOutcome, MaxentError, SweepConfig};

/// Errors from the embedding.
#[derive(Clone, Debug, PartialEq)]
pub enum MeError {
    /// The rule set is not eventually consistent under the statistical
    /// interpretation.
    Inconsistent,
    /// The maxent engine failed (outside fragment or numeric trouble).
    Engine(String),
}

impl std::fmt::Display for MeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeError::Inconsistent => write!(f, "rule set is not eventually consistent"),
            MeError::Engine(s) => write!(f, "maxent engine: {s}"),
        }
    }
}

impl std::error::Error for MeError {}

/// Renders a propositional formula as a unary `L≈` formula over `term`
/// (a variable name or the distinguished constant).
fn render(f: &PropFormula, vt: &VarTable, term: &str) -> String {
    match f {
        PropFormula::True => "true".to_string(),
        PropFormula::False => "false".to_string(),
        PropFormula::Var(i) => format!("{}({term})", pred_name(vt.name(*i))),
        PropFormula::Not(g) => format!("!({})", render(g, vt, term)),
        PropFormula::And(a, b) => format!("({} & {})", render(a, vt, term), render(b, vt, term)),
        PropFormula::Or(a, b) => format!("({} or {})", render(a, vt, term), render(b, vt, term)),
        PropFormula::Implies(a, b) => {
            format!("({} => {})", render(a, vt, term), render(b, vt, term))
        }
    }
}

/// Propositional variables become capitalized unary predicates.
fn pred_name(var: &str) -> String {
    let mut s = String::with_capacity(var.len() + 3);
    let mut chars = var.chars();
    if let Some(c) = chars.next() {
        s.extend(c.to_uppercase());
    }
    s.push_str(chars.as_str());
    s.push_str("_me");
    s
}

/// Builds the translated knowledge base (Theorem 6.1): one shared tolerance
/// index for every rule, plus the context `ψ_B(c)`.
pub fn translate(
    rules: &[DefaultRule],
    vt: &VarTable,
    context: &PropFormula,
) -> Result<KnowledgeBase, MeError> {
    let mut parts = Vec::new();
    for r in rules {
        parts.push(format!(
            "||{} | {}||_x ~=_1 1",
            render(&r.conclusion, vt, "x"),
            render(&r.premise, vt, "x")
        ));
    }
    parts.push(render(context, vt, "CtxInd"));
    let src = parts.join("; ");
    KnowledgeBase::parse(&src).map_err(|e| MeError::Engine(e.to_string()))
}

/// Is `premise → conclusion` an ME-plausible consequence of `rules`?
pub fn me_plausible(
    rules: &[DefaultRule],
    vt: &VarTable,
    premise: &PropFormula,
    conclusion: &PropFormula,
) -> Result<bool, MeError> {
    let mut kb = translate(rules, vt, premise)?;
    let query_src = render(conclusion, vt, "CtxInd");
    let q = kb
        .parse_query(&query_src)
        .map_err(|e| MeError::Engine(e.to_string()))?;
    // Theorem 6.1 uses a single shared ε, so asymmetry probes are moot.
    let config = SweepConfig {
        probe_asymmetry: false,
        ..SweepConfig::default()
    };
    match degree_of_belief_limit(&kb, &q, &config) {
        Ok(LimitOutcome::Converged(v)) => Ok(v > 1.0 - 5e-3),
        Ok(LimitOutcome::NonRobust(_)) => Ok(false),
        Ok(LimitOutcome::Infeasible) => Err(MeError::Inconsistent),
        Err(MaxentError::Infeasible) => Err(MeError::Inconsistent),
        Err(e) => Err(MeError::Engine(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn penguin_rules(vt: &mut VarTable) -> Vec<DefaultRule> {
        vec![
            DefaultRule::new(vt.parse("bird").unwrap(), vt.parse("fly").unwrap()),
            DefaultRule::new(vt.parse("penguin").unwrap(), vt.parse("!fly").unwrap()),
            DefaultRule::new(vt.parse("penguin").unwrap(), vt.parse("bird").unwrap()),
        ]
    }

    #[test]
    fn specificity() {
        let mut vt = VarTable::new();
        let rules = penguin_rules(&mut vt);
        let penguin = vt.parse("penguin").unwrap();
        let no_fly = vt.parse("!fly").unwrap();
        assert!(me_plausible(&rules, &vt, &penguin, &no_fly).unwrap());
        let fly = vt.parse("fly").unwrap();
        assert!(!me_plausible(&rules, &vt, &penguin, &fly).unwrap());
    }

    #[test]
    fn exceptional_subclass_inheritance() {
        // ME-plausibility (unlike System Z — see systems::tests) lets the
        // exceptional penguin inherit warm-bloodedness (paper §6, GMP90).
        let mut vt = VarTable::new();
        let mut rules = penguin_rules(&mut vt);
        rules.push(DefaultRule::new(
            vt.parse("bird").unwrap(),
            vt.parse("warm").unwrap(),
        ));
        let penguin = vt.parse("penguin").unwrap();
        let warm = vt.parse("warm").unwrap();
        assert!(me_plausible(&rules, &vt, &penguin, &warm).unwrap());
    }

    #[test]
    fn geffner_anomaly() {
        // Paper §6 (Geffner's example): R = {p & s → q, r → !q}.
        // p∧s∧r → q is NOT ME-plausible (conflicting evidence, neither more
        // specific): the computed limit is 3/5 (see the equal-strength
        // Lagrangian analysis in rw-maxent's belief tests).
        let mut vt = VarTable::new();
        let mut rules = vec![
            DefaultRule::new(vt.parse("p & s").unwrap(), vt.parse("q").unwrap()),
            DefaultRule::new(vt.parse("r").unwrap(), vt.parse("!q").unwrap()),
        ];
        let psr = vt.parse("p & s & r").unwrap();
        let q = vt.parse("q").unwrap();
        assert!(!me_plausible(&rules, &vt, &psr, &q).unwrap());
        let before = conditional(&rules, &vt, &psr, "Q_me");
        assert!((before - 0.6).abs() < 0.01, "{before}");
        // Adding p → !q makes p∧s an ε-small subset of p, which shifts the
        // balance *toward* q — the counterintuitive sensitivity the paper
        // attributes to GMP90's single shared ε. Measured: the conditional
        // rises from 3/5 to 3/4. (The κ-rank orders of the competing worlds
        // tie at ε²; the exact probability limit breaks the tie at 3/4
        // rather than 1, so the strict `lim = 1` reading of ME-plausibility
        // still rejects the rule. EXPERIMENTS.md discusses the deviation
        // from the paper's informal claim.)
        rules.push(DefaultRule::new(
            vt.parse("p").unwrap(),
            vt.parse("!q").unwrap(),
        ));
        let after = conditional(&rules, &vt, &psr, "Q_me");
        assert!((after - 0.75).abs() < 0.01, "{after}");
        assert!(after > before + 0.1);
    }

    /// Helper: the raw conditional value of `pred(CtxInd)` under the
    /// Theorem 6.1 translation.
    fn conditional(
        rules: &[DefaultRule],
        vt: &VarTable,
        context: &crate::prop::PropFormula,
        pred: &str,
    ) -> f64 {
        let mut kb = translate(rules, vt, context).unwrap();
        let q = kb.parse_query(&format!("{pred}(CtxInd)")).unwrap();
        let config = SweepConfig {
            probe_asymmetry: false,
            ..SweepConfig::default()
        };
        match degree_of_belief_limit(&kb, &q, &config).unwrap() {
            LimitOutcome::Converged(v) => v,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inconsistent_rules_detected() {
        let mut vt = VarTable::new();
        let rules = vec![
            DefaultRule::new(vt.parse("bird").unwrap(), vt.parse("fly").unwrap()),
            DefaultRule::new(vt.parse("bird").unwrap(), vt.parse("!fly").unwrap()),
            DefaultRule::new(vt.parse("true").unwrap(), vt.parse("bird").unwrap()),
        ];
        let bird = vt.parse("bird").unwrap();
        let fly = vt.parse("fly").unwrap();
        let r = me_plausible(&rules, &vt, &bird, &fly);
        assert!(matches!(r, Err(MeError::Inconsistent)), "{r:?}");
    }
}
