//! Compiling scenarios to `L≈` knowledge bases.
//!
//! Two frame representations, mirroring the paper's §7.1 discussion:
//!
//! * [`Representation::NaiveShared`] / [`Representation::NaiveDistinct`] —
//!   the "most straightforward representation": every fluent gets an
//!   unconditional persistence default `||F_{t+1} | F_t|| ≈ 1` (both
//!   polarities), action effects are hard axioms. On conflicting
//!   projections (the Yale Shooting Problem) this yields a standoff: a
//!   middling belief under a shared tolerance, a non-robust limit under
//!   distinct ones.
//! * [`Representation::Causal`] — the \[Hun89\]/\[BGHK94a\] repair: a fluent
//!   affected by the step's action has its persistence default conditioned
//!   on the action's precondition *failing*, so the frame statistic simply
//!   does not apply where the effect axiom does. Intended projections then
//!   violate nothing, and both prediction and explanation queries come out
//!   with belief 0 or 1.
//!
//! The compiler emits concrete `L≈` source (inspectable via
//! [`compile_source`]) and parses it into a [`KnowledgeBase`]; the scenario
//! constant is always `S`.

use crate::scenario::{Fluent, Literal, Scenario};
use rw_core::{BeliefResult, EngineError, RandomWorlds};
use rw_logic::{KnowledgeBase, ParseError};

/// Which frame representation to compile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Representation {
    /// Unconditional persistence defaults, all sharing one tolerance.
    NaiveShared,
    /// Unconditional persistence defaults, one tolerance each.
    NaiveDistinct,
    /// Persistence conditioned on the executing action's precondition
    /// failing (distinct tolerances; they never compete).
    Causal,
}

fn conjoin(lits: &[Literal], t: usize) -> String {
    lits.iter()
        .map(|l| l.render(t))
        .collect::<Vec<_>>()
        .join(" & ")
}

/// The `L≈` source text for a scenario under a representation.
pub fn compile_source(scenario: &Scenario, rep: Representation) -> String {
    let mut statements: Vec<String> = Vec::new();
    let mut tol = 0usize;
    let mut next_tol = || -> usize {
        match rep {
            Representation::NaiveShared => 1,
            _ => {
                tol += 1;
                tol
            }
        }
    };

    for (t, step) in scenario.steps.iter().enumerate() {
        // Effect axioms: hard universals for deterministic effects,
        // proportion statements for statistical ones.
        if let Some(action) = step {
            for e in &action.effects {
                let eff = e.literal.render(t + 1);
                match e.percent {
                    None => {
                        if action.preconditions.is_empty() {
                            statements.push(format!("forall x ({eff})"));
                        } else {
                            statements.push(format!(
                                "forall x ({} => {eff})",
                                conjoin(&action.preconditions, t)
                            ));
                        }
                    }
                    Some(p) => {
                        let cond = if action.preconditions.is_empty() {
                            "x = x".to_string()
                        } else {
                            conjoin(&action.preconditions, t)
                        };
                        let value = match p {
                            100 => "1".to_string(),
                            0 => "0".to_string(),
                            p => format!("0.{p:02}"),
                        };
                        statements.push(format!("||{eff} | {cond}||_x ~=_{} {value}", next_tol()));
                    }
                }
            }
        }

        // Frame statements, per fluent and polarity.
        for f in &scenario.fluents {
            let affected = step.as_ref().is_some_and(|a| a.affects(f));
            let guard = match (rep, affected, step) {
                (Representation::Causal, true, Some(a)) => {
                    if a.preconditions.is_empty() {
                        // The effect always fires: no frame statement.
                        continue;
                    }
                    // Persist only where the precondition fails.
                    Some(format!("!({})", conjoin(&a.preconditions, t)))
                }
                _ => None,
            };
            for positive in [true, false] {
                let lit = Literal {
                    fluent: f.clone(),
                    positive,
                };
                let mut condition = lit.render(t);
                if let Some(g) = &guard {
                    condition = format!("{condition} & {g}");
                }
                statements.push(format!(
                    "||{} | {condition}||_x ~=_{} 1",
                    lit.render(t + 1),
                    next_tol()
                ));
            }
        }
    }

    for lit in &scenario.init {
        statements.push(render_fact(lit, 0));
    }
    for (t, lit) in &scenario.observations {
        statements.push(render_fact(lit, *t));
    }
    statements.join("; ")
}

fn render_fact(lit: &Literal, t: usize) -> String {
    let atom = format!("{}(S)", lit.fluent.at(t));
    if lit.positive {
        atom
    } else {
        format!("!{atom}")
    }
}

/// Compiles a scenario into a knowledge base.
pub fn compile(scenario: &Scenario, rep: Representation) -> Result<KnowledgeBase, ParseError> {
    KnowledgeBase::parse(&compile_source(scenario, rep))
}

/// The degree of belief that `fluent` holds at `time` in the scenario,
/// using the default engine configuration.
pub fn project(
    scenario: &Scenario,
    rep: Representation,
    fluent: &Fluent,
    time: usize,
) -> Result<BeliefResult, EngineError> {
    project_with(&RandomWorlds::new(), scenario, rep, fluent, time)
}

/// [`project`] with a caller-configured engine. Temporal KBs have one
/// tolerance index per frame statement, and the engine's non-robustness
/// probes sweep each index separately — on larger horizons a trimmed
/// [`rw_core::RandomWorlds::sweep`] (fewer steps, or probes disabled when
/// only point beliefs matter) saves most of the cost.
pub fn project_with(
    engine: &RandomWorlds,
    scenario: &Scenario,
    rep: Representation,
    fluent: &Fluent,
    time: usize,
) -> Result<BeliefResult, EngineError> {
    let kb = compile(scenario, rep).map_err(EngineError::Parse)?;
    engine.degree_of_belief(&kb, &format!("{}(S)", fluent.at(time)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Action;

    fn yale_shooting() -> (Scenario, Fluent, Fluent) {
        let mut s = Scenario::new();
        let loaded = s.fluent("L");
        let alive = s.fluent("A");
        s.initially(Literal::pos(loaded.clone()));
        s.initially(Literal::pos(alive.clone()));
        s.wait();
        s.then(
            Action::new("shoot")
                .requires(Literal::pos(loaded.clone()))
                .causes(Literal::neg(alive.clone())),
        );
        (s, loaded, alive)
    }

    #[test]
    fn source_contains_effect_axiom_and_frames() {
        let (s, _, _) = yale_shooting();
        let src = compile_source(&s, Representation::Causal);
        assert!(src.contains("forall x (L1(x) => !A2(x))"), "{src}");
        // Unaffected fluent persists unconditionally...
        assert!(src.contains("||L2(x) | L1(x)||"), "{src}");
        // ...the affected one persists only where the precondition fails.
        assert!(src.contains("||A2(x) | A1(x) & !(L1(x))||"), "{src}");
        assert!(src.contains("L0(S)"), "{src}");
    }

    #[test]
    fn naive_shared_uses_one_tolerance_index() {
        let (s, _, _) = yale_shooting();
        let src = compile_source(&s, Representation::NaiveShared);
        assert!(src.contains("~=_1"), "{src}");
        assert!(!src.contains("~=_2"), "{src}");
        let distinct = compile_source(&s, Representation::NaiveDistinct);
        assert!(distinct.contains("~=_2"), "{distinct}");
    }

    #[test]
    fn all_representations_parse() {
        let (s, _, _) = yale_shooting();
        for rep in [
            Representation::NaiveShared,
            Representation::NaiveDistinct,
            Representation::Causal,
        ] {
            compile(&s, rep).unwrap_or_else(|e| panic!("{rep:?}: {e}"));
        }
    }

    #[test]
    fn unconditional_effects_suppress_frame_statements() {
        let mut s = Scenario::new();
        let f = s.fluent("F");
        s.then(Action::new("make").causes(Literal::pos(f)));
        let src = compile_source(&s, Representation::Causal);
        assert!(src.contains("forall x (F1(x))"), "{src}");
        assert!(!src.contains("||F1(x)"), "{src}");
    }

    #[test]
    fn statistical_effects_render_as_proportions() {
        let mut s = Scenario::new();
        let loaded = s.fluent("L");
        let alive = s.fluent("A");
        s.initially(Literal::pos(loaded.clone()));
        s.initially(Literal::pos(alive.clone()));
        s.then(
            Action::new("shoot")
                .requires(Literal::pos(loaded))
                .causes_with_chance(Literal::neg(alive), 70),
        );
        let src = compile_source(&s, Representation::Causal);
        assert!(src.contains("||!A1(x) | L0(x)||_x ~=_1 0.70"), "{src}");
        // The frame statement for Alive still guards on ¬L0.
        assert!(src.contains("||A1(x) | A0(x) & !(L0(x))||"), "{src}");
    }

    #[test]
    fn chance_boundaries_render_exactly() {
        for (p, expect) in [(100u32, " 1"), (0, " 0"), (7, " 0.07")] {
            let mut s = Scenario::new();
            let f = s.fluent("F");
            let g = s.fluent("G");
            s.then(
                Action::new("a")
                    .requires(Literal::pos(g))
                    .causes_with_chance(Literal::pos(f), p),
            );
            let src = compile_source(&s, Representation::Causal);
            assert!(
                src.contains(&format!("||F1(x) | G0(x)||_x ~=_1{expect}")),
                "p={p}: {src}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "chance must be 0..=100")]
    fn chance_over_100_rejected() {
        let f = Fluent::new("F");
        let _ = Action::new("a").causes_with_chance(Literal::pos(f), 101);
    }

    #[test]
    fn observations_render_at_their_time() {
        let (mut s, loaded, _) = yale_shooting();
        s.observe(1, Literal::neg(loaded));
        let src = compile_source(&s, Representation::Causal);
        assert!(src.ends_with("!L1(S)"), "{src}");
    }
}
