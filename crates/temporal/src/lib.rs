#![warn(missing_docs)]

//! Temporal projection for random worlds (paper §7.1, \[BGHK94a\]).
//!
//! The paper's §7.1 observes that random worlds mishandles temporal
//! knowledge "when used with the most straightforward representations",
//! and that an appropriate causal representation repairs it. This crate
//! packages both representations behind one scenario language so the claim
//! is a switch, not a re-encoding:
//!
//! * describe a timeline with [`Scenario`] — fluents, deterministic
//!   [`Action`]s with preconditions and effects, initial facts,
//!   observations;
//! * compile it with [`fn@compile`] under a [`Representation`]:
//!   `NaiveShared`/`NaiveDistinct` (unconditional persistence defaults —
//!   exhibits the Hanks–McDermott standoff) or `Causal` (persistence
//!   conditioned on the acting precondition failing — the \[Hun89\] repair);
//! * query with [`project`], which runs the full random-worlds engine.
//!
//! ```
//! use rw_temporal::{project, Action, Literal, Representation, Scenario};
//!
//! let mut s = Scenario::new();
//! let loaded = s.fluent("L");
//! let alive = s.fluent("A");
//! s.initially(Literal::pos(loaded.clone()));
//! s.initially(Literal::pos(alive.clone()));
//! s.then(Action::new("shoot")
//!     .requires(Literal::pos(loaded))
//!     .causes(Literal::neg(alive.clone())));
//!
//! // Under the causal representation, Fred is believed dead at time 1.
//! let result = project(&s, Representation::Causal, &alive, 1).unwrap();
//! assert!(result.belief.is_zero());
//! ```
//!
//! The full two-step Yale Shooting Problem — waiting first, which creates
//! the persistence standoff under the naive representations — is exercised
//! in `tests/temporal.rs` and `examples/yale_shooting.rs`.

pub mod compile;
pub mod dsl;
pub mod scenario;

pub use compile::{compile, compile_source, project, project_with, Representation};
pub use dsl::{parse_scenario, parse_source, DslError};
pub use scenario::{Action, Effect, Fluent, Literal, Scenario};
