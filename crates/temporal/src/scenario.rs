//! Scenario descriptions: fluents, deterministic actions, a timeline.
//!
//! Domain elements are *scenarios* (possible runs of the world), following
//! the paper's §7.1 and \[BGHK94a\]: a fluent `F` at time `t` becomes the
//! unary predicate `F{t}` over scenarios, so statistical statements range
//! over runs and degrees of belief are probabilities of run properties.

use std::fmt;

/// A propositional fluent (time-indexed when compiled).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Fluent(pub String);

impl Fluent {
    /// A fluent with the given name (alphanumeric, starting uppercase, so
    /// that `Name{t}` is a valid predicate identifier).
    pub fn new(name: &str) -> Fluent {
        assert!(
            !name.is_empty()
                && name.chars().next().unwrap().is_ascii_uppercase()
                && name.chars().all(|c| c.is_ascii_alphanumeric()),
            "fluent names must be alphanumeric and start uppercase: `{name}`"
        );
        Fluent(name.to_string())
    }

    /// The predicate name for this fluent at time `t`.
    pub fn at(&self, t: usize) -> String {
        format!("{}{t}", self.0)
    }
}

impl fmt::Display for Fluent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A literal: a fluent or its negation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Literal {
    /// The fluent named by the literal.
    pub fluent: Fluent,
    /// `true` = the fluent itself; `false` = its negation.
    pub positive: bool,
}

impl Literal {
    /// The positive literal for a fluent.
    pub fn pos(fluent: Fluent) -> Literal {
        Literal {
            fluent,
            positive: true,
        }
    }

    /// The negated literal for a fluent.
    pub fn neg(fluent: Fluent) -> Literal {
        Literal {
            fluent,
            positive: false,
        }
    }

    /// Renders the literal at time `t` as `L≈` source (`x` free).
    pub fn render(&self, t: usize) -> String {
        let atom = format!("{}(x)", self.fluent.at(t));
        if self.positive {
            atom
        } else {
            format!("!{atom}")
        }
    }
}

/// One effect of an action: a literal made true in the next state, either
/// deterministically or with a stated success frequency — the statistical
/// language makes "shooting kills 70% of the time" a first-class effect,
/// which no purely qualitative default encoding can express.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Effect {
    /// The literal made true in the next state.
    pub literal: Literal,
    /// `None` = deterministic (a hard axiom); `Some(p)` = the effect
    /// succeeds in `p`% of scenarios where the action fires (a proportion
    /// statement).
    pub percent: Option<u32>,
}

/// An action: when executed in a state satisfying all `preconditions`, it
/// produces its `effects` in the next state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Action {
    /// Display name (used in validation messages only).
    pub name: String,
    /// All must hold in the current state for the effects to fire.
    pub preconditions: Vec<Literal>,
    /// What the action brings about in the next state.
    pub effects: Vec<Effect>,
}

impl Action {
    /// An action with no preconditions or effects yet.
    pub fn new(name: &str) -> Action {
        Action {
            name: name.to_string(),
            preconditions: Vec::new(),
            effects: Vec::new(),
        }
    }

    /// Adds a precondition literal.
    pub fn requires(mut self, lit: Literal) -> Action {
        self.preconditions.push(lit);
        self
    }

    /// A deterministic effect.
    pub fn causes(mut self, lit: Literal) -> Action {
        self.effects.push(Effect {
            literal: lit,
            percent: None,
        });
        self
    }

    /// A statistical effect: the literal holds afterwards in `percent`% of
    /// the scenarios where the action fires.
    pub fn causes_with_chance(mut self, lit: Literal, percent: u32) -> Action {
        assert!(percent <= 100, "chance must be 0..=100, got {percent}");
        self.effects.push(Effect {
            literal: lit,
            percent: Some(percent),
        });
        self
    }

    /// Does the action (possibly) change this fluent?
    pub fn affects(&self, fluent: &Fluent) -> bool {
        self.effects.iter().any(|e| &e.literal.fluent == fluent)
    }
}

/// A timeline: which fluents exist, what happens at each step, what is
/// known initially, and what has been observed.
#[derive(Clone, Debug, Default)]
pub struct Scenario {
    /// All declared fluents (each becomes `horizon + 1` predicates).
    pub fluents: Vec<Fluent>,
    /// `steps[t]` is the action executed between time `t` and `t + 1`
    /// (`None` = pure waiting).
    pub steps: Vec<Option<Action>>,
    /// Known literals at time 0 (about the scenario constant).
    pub init: Vec<Literal>,
    /// Observed literals at arbitrary times.
    pub observations: Vec<(usize, Literal)>,
}

impl Scenario {
    /// An empty timeline.
    pub fn new() -> Scenario {
        Scenario::default()
    }

    /// Declares a fluent and returns its handle.
    pub fn fluent(&mut self, name: &str) -> Fluent {
        let f = Fluent::new(name);
        assert!(!self.fluents.contains(&f), "fluent `{name}` declared twice");
        self.fluents.push(f.clone());
        f
    }

    /// Appends a step executing `action` (validating its fluents).
    pub fn then(&mut self, action: Action) -> &mut Self {
        let mentioned = action
            .preconditions
            .iter()
            .chain(action.effects.iter().map(|e| &e.literal));
        for l in mentioned {
            assert!(
                self.fluents.contains(&l.fluent),
                "action `{}` mentions undeclared fluent `{}`",
                action.name,
                l.fluent
            );
        }
        self.steps.push(Some(action));
        self
    }

    /// Appends a pure waiting step.
    pub fn wait(&mut self) -> &mut Self {
        self.steps.push(None);
        self
    }

    /// Records a known literal at time 0.
    pub fn initially(&mut self, lit: Literal) -> &mut Self {
        assert!(self.fluents.contains(&lit.fluent));
        self.init.push(lit);
        self
    }

    /// Records an observed literal at time `t ≤ horizon`.
    pub fn observe(&mut self, t: usize, lit: Literal) -> &mut Self {
        assert!(t <= self.steps.len(), "observation beyond the horizon");
        assert!(self.fluents.contains(&lit.fluent));
        self.observations.push((t, lit));
        self
    }

    /// The last time index (number of steps).
    pub fn horizon(&self) -> usize {
        self.steps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluent_time_indexing() {
        let f = Fluent::new("Loaded");
        assert_eq!(f.at(0), "Loaded0");
        assert_eq!(f.at(2), "Loaded2");
    }

    #[test]
    #[should_panic(expected = "start uppercase")]
    fn fluent_names_validated() {
        let _ = Fluent::new("loaded");
    }

    #[test]
    fn literal_rendering() {
        let f = Fluent::new("Alive");
        assert_eq!(Literal::pos(f.clone()).render(1), "Alive1(x)");
        assert_eq!(Literal::neg(f).render(2), "!Alive2(x)");
    }

    #[test]
    fn action_affects() {
        let loaded = Fluent::new("Loaded");
        let alive = Fluent::new("Alive");
        let shoot = Action::new("shoot")
            .requires(Literal::pos(loaded.clone()))
            .causes(Literal::neg(alive.clone()));
        assert!(shoot.affects(&alive));
        assert!(!shoot.affects(&loaded));
    }

    #[test]
    fn scenario_builder_and_horizon() {
        let mut s = Scenario::new();
        let l = s.fluent("Loaded");
        let a = s.fluent("Alive");
        s.initially(Literal::pos(l.clone()));
        s.initially(Literal::pos(a.clone()));
        s.wait();
        s.then(
            Action::new("shoot")
                .requires(Literal::pos(l))
                .causes(Literal::neg(a)),
        );
        assert_eq!(s.horizon(), 2);
        assert_eq!(s.init.len(), 2);
    }

    #[test]
    #[should_panic(expected = "undeclared fluent")]
    fn undeclared_fluents_rejected() {
        let mut s = Scenario::new();
        let ghost = Fluent::new("Ghost");
        s.then(Action::new("spook").causes(Literal::pos(ghost)));
    }

    #[test]
    #[should_panic(expected = "beyond the horizon")]
    fn observations_bounded_by_horizon() {
        let mut s = Scenario::new();
        let f = s.fluent("F");
        s.observe(1, Literal::pos(f));
    }
}
