//! A line-oriented concrete syntax for [`Scenario`]s — the `@temporal`
//! knowledge-base format.
//!
//! The builder API in [`crate::scenario`] is ergonomic from Rust but
//! unreachable from files, which kept temporal workloads out of every
//! serving surface (`rwq query`/`batch`, the server's `load` op, the
//! golden corpus). This module gives scenarios a textual form the
//! `.rwkb` loader can dispatch on:
//!
//! ```text
//! @temporal causal
//! fluent Loaded Alive
//! init Loaded Alive          # literals: Name or !Name
//! wait
//! step shoot requires Loaded causes !Alive
//! observe 2 !Alive           # optional: a known literal at time t
//! ```
//!
//! The first line names the module ([`parse_source`] strips the
//! `@temporal` marker itself) and the frame representation:
//! `causal`, `naive-shared` or `naive-distinct` (default `causal`).
//! Statistical effects append `@NN%` to an effect literal:
//! `step shoot requires Loaded causes !Alive@70%`.
//!
//! Parsing is pure validation — every builder precondition (`assert!`s
//! in [`Scenario`]) is checked here first and surfaced as a
//! [`DslError`] with the offending 1-based line, so a malformed file is
//! a structured load failure, never a panic in a serving thread.

use crate::compile::Representation;
use crate::scenario::{Action, Fluent, Literal, Scenario};
use std::fmt;

/// A parse failure, tagged with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DslError {
    /// 1-based line number within the scenario source (the line after
    /// the `@temporal` header is line 1 when entering via
    /// [`parse_source`]).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DslError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, DslError> {
    Err(DslError {
        line,
        message: message.into(),
    })
}

/// Parses a representation keyword (the `@temporal <rep>` header
/// argument).
pub fn parse_representation(s: &str) -> Option<Representation> {
    match s {
        "causal" => Some(Representation::Causal),
        "naive-shared" => Some(Representation::NaiveShared),
        "naive-distinct" => Some(Representation::NaiveDistinct),
        _ => None,
    }
}

fn valid_fluent_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().unwrap().is_ascii_uppercase()
        && name.chars().all(|c| c.is_ascii_alphanumeric())
}

/// Parses a literal token: `Name` or `!Name`.
fn parse_literal(tok: &str, fluents: &[Fluent], line: usize) -> Result<Literal, DslError> {
    let (name, positive) = match tok.strip_prefix('!') {
        Some(rest) => (rest, false),
        None => (tok, true),
    };
    let Some(f) = fluents.iter().find(|f| f.0 == name) else {
        return err(line, format!("undeclared fluent `{name}`"));
    };
    Ok(Literal {
        fluent: f.clone(),
        positive,
    })
}

/// An effect token: a literal with an optional `@NN%` success chance.
fn parse_effect_token(
    tok: &str,
    fluents: &[Fluent],
    line: usize,
) -> Result<(Literal, Option<u32>), DslError> {
    let (lit_tok, percent) = match tok.split_once('@') {
        None => (tok, None),
        Some((lit, pct)) => {
            let Some(digits) = pct.strip_suffix('%') else {
                return err(line, format!("effect chance must end in `%`: `{tok}`"));
            };
            let p: u32 = digits
                .parse()
                .map_err(|_| DslError {
                    line,
                    message: format!("bad effect chance `{pct}`"),
                })
                .and_then(|p: u32| {
                    if p <= 100 {
                        Ok(p)
                    } else {
                        err(line, format!("effect chance must be 0..=100, got `{pct}`"))
                    }
                })?;
            (lit, Some(p))
        }
    };
    Ok((parse_literal(lit_tok, fluents, line)?, percent))
}

/// Parses scenario source (without the `@temporal` header line) into a
/// [`Scenario`]. Lines: `fluent`, `init`, `wait`, `step`, `observe`;
/// `#` starts a comment; blank lines are skipped.
pub fn parse_scenario(src: &str) -> Result<Scenario, DslError> {
    let mut scenario = Scenario::new();
    // Observations are validated against the final horizon, so an
    // `observe` line may precede the steps it refers to.
    let mut observations: Vec<(usize, usize, Literal)> = Vec::new(); // (line, t, lit)
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        };
        let mut toks = line.split_whitespace();
        let Some(keyword) = toks.next() else {
            continue;
        };
        match keyword {
            "fluent" => {
                let names: Vec<&str> = toks.collect();
                if names.is_empty() {
                    return err(line_no, "`fluent` expects at least one name");
                }
                for name in names {
                    if !valid_fluent_name(name) {
                        return err(
                            line_no,
                            format!(
                                "fluent names must be alphanumeric and start uppercase: `{name}`"
                            ),
                        );
                    }
                    if scenario.fluents.iter().any(|f| f.0 == name) {
                        return err(line_no, format!("fluent `{name}` declared twice"));
                    }
                    scenario.fluent(name);
                }
            }
            "init" => {
                let mut any = false;
                for tok in toks {
                    let lit = parse_literal(tok, &scenario.fluents, line_no)?;
                    scenario.initially(lit);
                    any = true;
                }
                if !any {
                    return err(line_no, "`init` expects at least one literal");
                }
            }
            "wait" => {
                if toks.next().is_some() {
                    return err(line_no, "`wait` takes no arguments");
                }
                scenario.wait();
            }
            "step" => {
                let Some(name) = toks.next() else {
                    return err(line_no, "`step` expects an action name");
                };
                let mut action = Action::new(name);
                // Mode switches on the `requires` / `causes` keywords.
                enum Mode {
                    None,
                    Requires,
                    Causes,
                }
                let mut mode = Mode::None;
                for tok in toks {
                    match tok {
                        "requires" => mode = Mode::Requires,
                        "causes" => mode = Mode::Causes,
                        tok => match mode {
                            Mode::None => {
                                return err(
                                    line_no,
                                    format!("expected `requires` or `causes` before `{tok}`"),
                                );
                            }
                            Mode::Requires => {
                                action = action.requires(parse_literal(
                                    tok,
                                    &scenario.fluents,
                                    line_no,
                                )?);
                            }
                            Mode::Causes => {
                                let (lit, percent) =
                                    parse_effect_token(tok, &scenario.fluents, line_no)?;
                                action = match percent {
                                    None => action.causes(lit),
                                    Some(p) => action.causes_with_chance(lit, p),
                                };
                            }
                        },
                    }
                }
                if action.effects.is_empty() {
                    return err(line_no, format!("step `{name}` causes nothing"));
                }
                scenario.then(action);
            }
            "observe" => {
                let Some(t_tok) = toks.next() else {
                    return err(line_no, "`observe` expects a time and a literal");
                };
                let t: usize = match t_tok.parse() {
                    Ok(t) => t,
                    Err(_) => return err(line_no, format!("bad observation time `{t_tok}`")),
                };
                let Some(lit_tok) = toks.next() else {
                    return err(line_no, "`observe` expects a literal after the time");
                };
                if toks.next().is_some() {
                    return err(line_no, "`observe` takes one literal");
                }
                let lit = parse_literal(lit_tok, &scenario.fluents, line_no)?;
                observations.push((line_no, t, lit));
            }
            other => {
                return err(
                    line_no,
                    format!(
                        "unknown scenario keyword `{other}` \
                         (expected fluent | init | wait | step | observe)"
                    ),
                );
            }
        }
    }
    for (line_no, t, lit) in observations {
        if t > scenario.horizon() {
            return err(
                line_no,
                format!(
                    "observation at time {t} is beyond the horizon {}",
                    scenario.horizon()
                ),
            );
        }
        scenario.observe(t, lit);
    }
    if scenario.fluents.is_empty() {
        return err(1, "scenario declares no fluents");
    }
    Ok(scenario)
}

/// Parses a full `@temporal` source: the first non-comment line must be
/// the `@temporal [representation]` header, the rest is scenario
/// syntax. Returns the scenario and the representation to compile it
/// under (default [`Representation::Causal`]).
pub fn parse_source(src: &str) -> Result<(Scenario, Representation), DslError> {
    let mut lines = src.lines();
    let mut header_line = 0usize;
    let header = loop {
        header_line += 1;
        let Some(raw) = lines.next() else {
            return err(header_line, "missing `@temporal` header");
        };
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        };
        if !line.trim().is_empty() {
            break line.trim().to_string();
        }
    };
    let mut toks = header.split_whitespace();
    if toks.next() != Some("@temporal") {
        return err(header_line, "expected `@temporal [representation]` header");
    }
    let rep = match toks.next() {
        None => Representation::Causal,
        Some(word) => parse_representation(word).ok_or_else(|| DslError {
            line: header_line,
            message: format!(
                "unknown representation `{word}` \
                 (expected causal | naive-shared | naive-distinct)"
            ),
        })?,
    };
    if let Some(extra) = toks.next() {
        return err(header_line, format!("unexpected header token `{extra}`"));
    }
    let body: String = src.lines().skip(header_line).collect::<Vec<_>>().join("\n");
    let scenario = parse_scenario(&body).map_err(|e| DslError {
        line: e.line + header_line,
        message: e.message,
    })?;
    Ok((scenario, rep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_source;

    const YALE: &str = "\
@temporal causal
fluent Loaded Alive
init Loaded Alive
wait
step shoot requires Loaded causes !Alive
";

    #[test]
    fn yale_shooting_parses_and_matches_builder() {
        let (s, rep) = parse_source(YALE).unwrap();
        assert_eq!(rep, Representation::Causal);
        assert_eq!(s.horizon(), 2);
        assert_eq!(s.fluents.len(), 2);
        assert_eq!(s.init.len(), 2);

        let mut builder = Scenario::new();
        let loaded = builder.fluent("Loaded");
        let alive = builder.fluent("Alive");
        builder.initially(Literal::pos(loaded.clone()));
        builder.initially(Literal::pos(alive.clone()));
        builder.wait();
        builder.then(
            Action::new("shoot")
                .requires(Literal::pos(loaded))
                .causes(Literal::neg(alive)),
        );
        assert_eq!(
            compile_source(&s, rep),
            compile_source(&builder, Representation::Causal)
        );
    }

    #[test]
    fn header_defaults_to_causal_and_names_representations() {
        let src = "@temporal\nfluent F\nstep go causes F\n";
        assert_eq!(parse_source(src).unwrap().1, Representation::Causal);
        for (word, rep) in [
            ("naive-shared", Representation::NaiveShared),
            ("naive-distinct", Representation::NaiveDistinct),
            ("causal", Representation::Causal),
        ] {
            let src = format!("@temporal {word}\nfluent F\nstep go causes F\n");
            assert_eq!(parse_source(&src).unwrap().1, rep, "{word}");
        }
        assert!(parse_source("@temporal markov\nfluent F\n")
            .unwrap_err()
            .message
            .contains("unknown representation"));
    }

    #[test]
    fn statistical_effects_parse_percentages() {
        let src = "@temporal\nfluent L A\ninit L A\nstep shoot requires L causes !A@70%\n";
        let (s, rep) = parse_source(src).unwrap();
        let compiled = compile_source(&s, rep);
        assert!(
            compiled.contains("||!A1(x) | L0(x)||_x ~=_1 0.70"),
            "{compiled}"
        );
        for bad in ["!A@70", "!A@x%", "!A@101%"] {
            let src = format!("@temporal\nfluent L A\nstep shoot requires L causes {bad}\n");
            assert!(parse_source(&src).is_err(), "{bad}");
        }
    }

    #[test]
    fn observations_validate_against_the_final_horizon() {
        let src = "@temporal\nfluent F\nobserve 1 !F\nstep go causes F\n";
        let (s, _) = parse_source(src).unwrap();
        assert_eq!(s.observations, vec![(1, Literal::neg(Fluent::new("F")))]);
        let beyond = "@temporal\nfluent F\nstep go causes F\nobserve 2 F\n";
        assert!(parse_source(beyond)
            .unwrap_err()
            .message
            .contains("beyond the horizon"));
    }

    #[test]
    fn errors_carry_line_numbers_and_reasons() {
        // Line numbers count from the top of the full source (header
        // included), so loader messages point at the real file line.
        let err = parse_source("@temporal\nfluent F\nstep go causes G\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("undeclared fluent `G`"));
        for (src, needle) in [
            ("fluent F\n", "expected `@temporal"),
            ("@temporal\n", "no fluents"),
            ("@temporal\nfluent f\n", "start uppercase"),
            ("@temporal\nfluent F F\n", "declared twice"),
            ("@temporal\nfluent F\ninit\n", "at least one literal"),
            ("@temporal\nfluent F\nwait now\n", "no arguments"),
            ("@temporal\nfluent F\nstep go\n", "causes nothing"),
            ("@temporal\nfluent F\nstep go F\n", "before `F`"),
            (
                "@temporal\nfluent F\nfrobnicate\n",
                "unknown scenario keyword",
            ),
            ("@temporal\nfluent F\nobserve x F\n", "bad observation time"),
        ] {
            let err = parse_source(src).unwrap_err();
            assert!(err.message.contains(needle), "{src:?}: {err}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let src = "# leading comment\n\n@temporal causal # trailing\n# inner\nfluent F # names\nstep go causes F\n";
        let (s, _) = parse_source(src).unwrap();
        assert_eq!(s.horizon(), 1);
    }
}
