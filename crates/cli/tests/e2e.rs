//! End-to-end tests that exercise the compiled `rwq` binary.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn rwq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rwq"))
}

fn kb_file(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("rwq-e2e-{}-{name}.rwkb", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path
}

#[test]
fn query_prints_answer_and_exits_zero() {
    let kb = kb_file("hep", "||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\n");
    let out = rwq()
        .args(["query", kb.to_str().unwrap(), "Hep(Eric)"])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("0.8"), "{stdout}");
    assert!(stdout.contains("direct inference"), "{stdout}");
    let _ = std::fs::remove_file(kb);
}

#[test]
fn bad_arguments_exit_2_with_usage() {
    let out = rwq().args(["frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn missing_file_exits_1() {
    let out = rwq()
        .args(["query", "/nonexistent.rwkb", "P(C)"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn help_lists_options() {
    let out = rwq().args(["help"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("--prior"), "{stdout}");
}

#[test]
fn batch_jsonl_round_trip_with_bad_line() {
    // Mirrors `bad_query_sets_exit_code_but_answers_others`: one bad line
    // fails the exit code while every other line is still answered, all
    // against a single loaded KB in a single process.
    let kb = kb_file("batch", "||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\n");
    let mut child = rwq()
        .args(["batch", kb.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"Hep(Eric)\nHep(\n!Hep(Eric)\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "{stdout}");
    assert!(lines[0].contains(r#""ok":true"#), "{stdout}");
    assert!(
        lines[0].contains(r#""provenance":"direct inference"#),
        "{stdout}"
    );
    assert!(lines[0].contains(r#""trace":["#), "{stdout}");
    assert!(lines[1].contains(r#""ok":false"#), "{stdout}");
    assert!(lines[2].contains(r#""ok":true"#), "{stdout}");
    // The closing summary line makes the failure count machine-readable
    // (previously it was only visible by counting stderr lines).
    assert!(
        lines[3].starts_with(r#"{"summary":{"#) && lines[3].contains(r#""answered":2,"failed":1"#),
        "{stdout}"
    );
    let _ = std::fs::remove_file(kb);
}

#[test]
fn batch_parallel_cached_round_trip() {
    let kb = kb_file("batch-par", "||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\n");
    let mut child = rwq()
        .args(["batch", kb.to_str().unwrap(), "--threads", "4", "--cache"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    // 12 queries over 2 canonical forms (commuted conjunctions collapse).
    let mut input = String::new();
    for i in 0..6 {
        input.push_str("Hep(Eric)\n");
        input.push_str(if i % 2 == 0 {
            "Hep(Eric) & Jaun(Eric)\n"
        } else {
            "Jaun(Eric) & Hep(Eric)\n"
        });
    }
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{stdout}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 13, "{stdout}");
    // Every answer line (in input order) carries the same belief.
    for l in &lines[..12] {
        assert!(l.contains(r#""ok":true"#), "{stdout}");
        assert!(l.contains(r#""value":0.8"#), "{stdout}");
    }
    // With 4 workers and 12 queries over 2 canonical forms, at least
    // 12 - 2×4 hits are guaranteed even under the worst interleaving.
    let summary = lines[12];
    assert!(summary.contains(r#""answered":12,"failed":0"#), "{stdout}");
    assert!(summary.contains(r#""threads":4"#), "{stdout}");
    let hits: usize = summary
        .split(r#""cache_hits":"#)
        .nth(1)
        .unwrap()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap();
    assert!(hits >= 4, "{stdout}");
    let _ = std::fs::remove_file(kb);
}

#[test]
fn serve_preloads_default_kb_and_answers_clients() {
    use std::io::{BufRead, BufReader};
    let kb = kb_file("serve", "||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\n");
    let mut serve = rwq()
        .args(["serve", kb.to_str().unwrap(), "--addr", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    // First stdout line announces the bound address and the preload.
    let mut line = String::new();
    BufReader::new(serve.stdout.as_mut().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(line.contains(r#""kbs":["default"]"#), "{line}");
    let addr = line
        .split(r#""addr":""#)
        .nth(1)
        .unwrap()
        .split('"')
        .next()
        .unwrap()
        .to_string();

    let mut client = rwq()
        .args(["client", "--addr", &addr])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    client
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            b"{\"op\":\"query\",\"kb\":\"default\",\"query\":\"Hep(Eric)\"}\n\
              {\"op\":\"shutdown\"}\n",
        )
        .unwrap();
    let out = client.wait_with_output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{stdout}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].contains(r#""value":0.8"#), "{stdout}");
    assert!(lines[1].contains("shutdown"), "{stdout}");
    // The shutdown op ends the server process cleanly.
    assert!(serve.wait().unwrap().success());
    let _ = std::fs::remove_file(kb);
}

#[test]
fn client_without_server_fails_with_json_error() {
    // A port from the ephemeral range with (almost certainly) no
    // listener; connect failure must still produce a JSON line.
    let mut child = rwq()
        .args(["client", "--addr", "127.0.0.1:1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take(); // close stdin immediately
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.starts_with(r#"{"ok":false,"error":"cannot connect"#),
        "{stdout}"
    );
}

#[test]
fn threads_rejection_is_identical_for_query_and_repl() {
    let mut messages = Vec::new();
    for verb in ["query", "repl"] {
        let out = rwq()
            .args([verb, "kb.rwkb", "P(C)", "--threads", "2"])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{verb}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        let first = stderr.lines().next().unwrap_or("").to_string();
        assert!(first.contains("--threads applies to"), "{verb}: {first}");
        messages.push(first);
    }
    assert_eq!(
        messages[0], messages[1],
        "error text must not depend on the verb"
    );
}

#[test]
fn repl_round_trip() {
    let kb = kb_file("repl", "P(C)\n");
    let mut child = rwq()
        .args(["repl", kb.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"P(C)\nquit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("Pr∞(P(C)"), "{stdout}");
    let _ = std::fs::remove_file(kb);
}

use rw_cli::json::mask_times;

#[test]
fn approx_batch_answers_trap_queries_identically_across_thread_counts() {
    // The PR-2 trap shape: a conjunction over individuals sharing
    // statistics misses every theorem pattern. With --approx it is
    // answered by the sampling stage, and a fixed --mc-seed makes the
    // JSON identical (modulo wall times) at any --threads count.
    let kb = kb_file(
        "approx",
        "||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\nJaun(Tom)\n",
    );
    let input = "Hep(Eric) & Hep(Tom)\nHep(Eric)\n";
    let run = |threads: &str| {
        let mut child = rwq()
            .args([
                "batch",
                kb.to_str().unwrap(),
                "--approx",
                "--mc-seed",
                "7",
                "--samples",
                "32768",
                "--threads",
                threads,
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .unwrap();
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success());
        String::from_utf8(out.stdout).unwrap()
    };
    let one = run("1");
    let four = run("4");
    let lines: Vec<&str> = one.lines().collect();
    assert!(lines[0].contains(r#""type":"approximate""#), "{one}");
    assert!(lines[0].contains(r#""mc":{"drawn":"#), "{one}");
    // The direct-inference query still resolves exactly, before sampling.
    assert!(lines[1].contains(r#""value":0.8"#), "{one}");
    assert!(lines[1].contains("direct inference"), "{one}");
    // Result lines are byte-identical across thread counts; summaries
    // legitimately differ in the reported thread count.
    let result_lines = |s: &str| s.lines().take(2).map(mask_times).collect::<Vec<_>>();
    assert_eq!(result_lines(&one), result_lines(&four), "\n{one}\n{four}");
    let _ = std::fs::remove_file(kb);
}

#[test]
fn approx_query_prints_ci_and_respects_seed() {
    let kb = kb_file(
        "approx-q",
        "||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\nJaun(Tom)\n",
    );
    let run = |extra: &[&str]| {
        let mut args = vec![
            "query",
            kb.to_str().unwrap(),
            "Hep(Eric) & Hep(Tom)",
            "--approx",
        ];
        args.extend_from_slice(extra);
        let out = rwq().args(&args).output().unwrap();
        assert!(out.status.success());
        String::from_utf8(out.stdout).unwrap()
    };
    let a = run(&["--mc-seed", "11"]);
    assert!(a.contains("±"), "{a}");
    assert!(a.contains("Monte-Carlo sampling"), "{a}");
    // Same seed, same answer; the sampler is a pure function of it.
    assert_eq!(a, run(&["--mc-seed", "11"]));
    let _ = std::fs::remove_file(kb);
}
