//! Release-tier durability/failover e2e: a 3-backend `rwq shard` fleet
//! replaying the golden corpus while one backend is killed and
//! restarted warm from its `--snapshot-dir` checkpoint.
//!
//! What must hold:
//!
//! * every response through the shard is byte-identical to single-node
//!   serving (the pinned golden lines), modulo wall times, the
//!   `cache_hit`/trace markers that record *how* an answer was produced
//!   this time, and the additive `"failover":true` annotation;
//! * killing a backend is invisible to clients — zero errors, zero
//!   dropped responses, failover counters going nonzero instead;
//! * the restarted backend comes back **warm**: its banner reports the
//!   restored snapshot and its first golden replay hits the cache;
//! * `rwq client --retry` rides out a backend restart on its own
//!   connection, reporting the retries on stderr;
//! * SIGTERM and the `shutdown` op drain every process gracefully with
//!   a structured `{"drained":{"reason":...}}` line.

use rw_cli::json::{escape, mask_times, strip_failover};
use rw_server::proto::Value;
use rw_server::Client;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The corpus slice this soak replays: theorem-speed files only (the
/// enumeration-heavy suites are lab territory, even in release).
const GOLDEN_FILES: &[&str] = &["paper_examples.jsonl", "trap_queries.jsonl"];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Parses the golden files into `(kb_text, expected_lines)` groups.
fn corpus() -> Vec<(String, Vec<String>)> {
    let mut groups: Vec<(String, Vec<String>)> = Vec::new();
    for file in GOLDEN_FILES {
        let path = golden_dir().join(file);
        let content = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e})"));
        for line in content.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let v = Value::parse(line)
                .unwrap_or_else(|e| panic!("{file}: bad golden line {line:?}: {e}"));
            if let Some(kb) = v.get("kb").and_then(Value::as_str) {
                if v.get("query").is_none() {
                    groups.push((kb.to_string(), Vec::new()));
                    continue;
                }
            }
            groups
                .last_mut()
                .unwrap_or_else(|| panic!("{file}: response before any KB header"))
                .1
                .push(line.to_string());
        }
    }
    groups
}

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("rwq-shard-e2e-{}-{tag}-{id}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Reads one line from a child's piped stdout (its startup banner).
fn read_banner(child: &mut Child) -> String {
    let stdout = child.stdout.as_mut().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("banner line");
    line.trim().to_string()
}

/// Spawns `rwq serve --snapshot-dir` and returns the child, the bound
/// address, and the banner line (which carries the snapshot stats).
fn spawn_serve(addr: &str, snap: &Path) -> (Child, String, String) {
    let mut serve = Command::new(env!("CARGO_BIN_EXE_rwq"))
        .args([
            "serve",
            "--addr",
            addr,
            "--threads",
            "2",
            "--snapshot-dir",
            snap.to_str().unwrap(),
            "--snapshot-interval-ms",
            "200",
        ])
        .stdout(Stdio::piped())
        .stdin(Stdio::null())
        .spawn()
        .expect("spawn rwq serve");
    let banner = read_banner(&mut serve);
    let v = Value::parse(&banner).expect("serving banner is JSON");
    let bound = v
        .get("serving")
        .and_then(|s| s.get("addr"))
        .and_then(Value::as_str)
        .expect("serving addr")
        .to_string();
    (serve, bound, banner)
}

/// Builds the client stdin for one full corpus pass (load every KB
/// under `g{i}`, then its queries) and the per-response expectations
/// (`None` = control-op ack, `Some(golden)` = pinned response line).
fn build_requests(groups: &[(String, Vec<String>)]) -> (String, Vec<Option<String>>) {
    let mut requests = String::new();
    let mut expected = Vec::new();
    for (i, (kb_text, lines)) in groups.iter().enumerate() {
        requests.push_str(&format!(
            r#"{{"op":"load","kb":"g{i}","text":"{}"}}"#,
            escape(kb_text)
        ));
        requests.push('\n');
        expected.push(None);
        push_queries(i, lines, &mut requests, &mut expected);
    }
    (requests, expected)
}

/// Queries only — for replaying against a backend whose KBs were
/// restored from a snapshot rather than loaded over the wire.
fn build_query_requests(groups: &[(String, Vec<String>)]) -> (String, Vec<Option<String>>) {
    let mut requests = String::new();
    let mut expected = Vec::new();
    for (i, (_, lines)) in groups.iter().enumerate() {
        push_queries(i, lines, &mut requests, &mut expected);
    }
    (requests, expected)
}

fn push_queries(
    i: usize,
    lines: &[String],
    requests: &mut String,
    expected: &mut Vec<Option<String>>,
) {
    for golden in lines {
        let v = Value::parse(golden).expect("golden line parses");
        let query = v.get("query").and_then(Value::as_str).expect("query field");
        requests.push_str(&format!(
            r#"{{"op":"query","kb":"g{i}","query":"{}"}}"#,
            escape(query)
        ));
        requests.push('\n');
        expected.push(Some(golden.clone()));
    }
}

/// Runs `rwq client --retry` against `addr`, feeding `requests`.
fn run_client(addr: &str, requests: &str) -> std::process::Output {
    let client = Command::new(env!("CARGO_BIN_EXE_rwq"))
        .args([
            "client",
            "--addr",
            addr,
            "--retry",
            "3",
            "--retry-backoff-ms",
            "20",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rwq client");
    client
        .stdin
        .as_ref()
        .expect("client stdin")
        .write_all(requests.as_bytes())
        .expect("write requests");
    client.wait_with_output().expect("client output")
}

/// The soak's equality lens: golden lines pin cold single-node answers,
/// so the markers recording *this* serving's incidental history — wall
/// times, `cache_hit`, the answering-stage trace, and the shard's
/// additive failover annotation — are neutralized; query, belief and
/// provenance must be byte-identical.
fn lens(line: &str) -> String {
    let line = strip_failover(line);
    let line = match line.find(r#","trace":["#) {
        Some(i) => format!("{}}}", &line[..i]),
        None => line,
    };
    mask_times(&line).replace(r#""cache_hit":true"#, r#""cache_hit":false"#)
}

/// Diffs one client pass against the expectations. Returns `(failover
/// annotations seen, cache hits seen)`; any client-visible error fails.
fn check(out: &std::process::Output, expected: &[Option<String>], round: &str) -> (usize, usize) {
    assert!(out.status.success(), "{round}: client exit {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let responses: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        responses.len(),
        expected.len(),
        "{round}: response count mismatch:\n{stdout}"
    );
    let mut failovers = 0;
    let mut hits = 0;
    for (response, golden) in responses.iter().zip(expected) {
        assert!(
            response.contains(r#""ok":true"#),
            "{round}: client-visible error: {response}"
        );
        if response.contains(r#""failover":true"#) {
            failovers += 1;
        }
        if response.contains(r#""cache_hit":true"#) {
            hits += 1;
        }
        if let Some(golden) = golden {
            assert_eq!(
                lens(response),
                lens(golden),
                "{round}: diverged from golden"
            );
        }
    }
    (failovers, hits)
}

/// Gracefully drains a spawned server via the wire `shutdown` op and
/// asserts the structured drained line on its way out.
fn drain_backend(child: Child, addr: &str) {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    let bye = c
        .request_line(r#"{"op":"shutdown"}"#)
        .expect("shutdown ack");
    assert!(bye.contains(r#""ok":true"#), "{bye}");
    drop(c);
    let out = child.wait_with_output().expect("backend exit");
    assert!(out.status.success(), "backend exit: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(r#"{"drained":{"reason":"shutdown"}}"#),
        "missing drained line: {stdout}"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "kill-one-backend soak is release-tier; run with --release"
)]
fn kill_one_backend_soak_stays_golden_with_warm_restart() {
    let groups = corpus();
    assert!(groups.len() >= 4, "corpus unexpectedly small");
    let snaps: Vec<PathBuf> = (0..3).map(|i| temp_dir(&format!("snap{i}"))).collect();

    // Fleet up: three snapshotting backends, all starting cold.
    let mut backends = Vec::new();
    for snap in &snaps {
        let (child, addr, banner) = spawn_serve("127.0.0.1:0", snap);
        assert!(
            banner.contains(r#""snapshot":{"kbs":0,"answers":0,"denoms":0,"skipped":0}"#),
            "cold start must report an empty snapshot: {banner}"
        );
        backends.push((child, addr));
    }
    let mut shard_cmd = Command::new(env!("CARGO_BIN_EXE_rwq"));
    shard_cmd.args([
        "shard",
        "--addr",
        "127.0.0.1:0",
        "--probe-interval-ms",
        "50",
        "--retry",
        "2",
        "--retry-backoff-ms",
        "10",
    ]);
    for (_, addr) in &backends {
        shard_cmd.args(["--backend", addr]);
    }
    let mut shard = shard_cmd
        .stdout(Stdio::piped())
        .stdin(Stdio::null())
        .spawn()
        .expect("spawn rwq shard");
    let shard_banner = read_banner(&mut shard);
    let shard_addr = Value::parse(&shard_banner)
        .expect("sharding banner is JSON")
        .get("sharding")
        .and_then(|s| s.get("addr"))
        .and_then(Value::as_str)
        .expect("sharding addr")
        .to_string();

    // Round 1: load + replay through the shard. All backends healthy,
    // so nothing fails over and every line matches the golden corpus.
    let (requests, expected) = build_requests(&groups);
    let out = run_client(&shard_addr, &requests);
    let (failovers, _) = check(&out, &expected, "round 1");
    assert_eq!(failovers, 0, "healthy fleet must not fail over");

    // The ring decides which backend matters most; that one dies.
    let mut ctl = Client::connect(shard_addr.as_str()).expect("control conn");
    let stats = ctl.request_line(r#"{"op":"stats"}"#).expect("stats");
    let v = Value::parse(&stats).expect("stats JSON");
    let Some(Value::Arr(rows)) = v.get("shard").and_then(|s| s.get("backends")) else {
        panic!("stats missing backends: {stats}");
    };
    let mut victim = 0usize;
    let mut busiest = 0u64;
    for (i, row) in rows.iter().enumerate() {
        let fwd = row
            .get("forwarded")
            .and_then(Value::as_u64)
            .expect("forwarded count");
        if fwd > busiest {
            busiest = fwd;
            victim = i;
        }
    }
    assert!(busiest > 0, "no backend forwarded anything: {stats}");

    // Let the periodic checkpoint (200 ms) capture the warm caches,
    // then kill the busiest backend outright — no drain, no final save.
    std::thread::sleep(Duration::from_millis(600));
    let victim_addr = backends[victim].1.clone();
    backends[victim].0.kill().expect("kill victim");
    backends[victim].0.wait().expect("reap victim");

    // Round 2: three concurrent clients replay the corpus against the
    // degraded fleet. Zero client-visible errors; the victim's queries
    // carry the failover annotation and still match golden.
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let addr = shard_addr.clone();
            let requests = requests.clone();
            std::thread::spawn(move || run_client(&addr, &requests))
        })
        .collect();
    let mut total_failovers = 0;
    for h in handles {
        let out = h.join().expect("client thread");
        let (f, _) = check(&out, &expected, "round 2 (degraded)");
        total_failovers += f;
    }
    assert!(
        total_failovers > 0,
        "killing the busiest backend must surface failover annotations"
    );

    // Restart the victim on its old port: the banner must report the
    // restored snapshot, and its first golden replay answers warm.
    let (new_child, new_addr, banner) = spawn_serve(&victim_addr, &snaps[victim]);
    assert_eq!(new_addr, victim_addr, "restart must reuse the port");
    let restored = Value::parse(&banner).expect("restart banner JSON");
    let snap_stats = restored
        .get("serving")
        .and_then(|s| s.get("snapshot"))
        .unwrap_or_else(|| panic!("restart banner missing snapshot stats: {banner}"));
    assert!(
        snap_stats.get("kbs").and_then(Value::as_u64).unwrap_or(0) >= 1,
        "restart restored no KBs: {banner}"
    );
    assert!(
        snap_stats
            .get("answers")
            .and_then(Value::as_u64)
            .unwrap_or(0)
            >= 1,
        "restart restored no cached answers: {banner}"
    );
    backends[victim] = (new_child, victim_addr);

    let (query_requests, query_expected) = build_query_requests(&groups);
    let direct = run_client(&new_addr, &query_requests);
    let (_, warm_hits) = check(&direct, &query_expected, "direct warm replay");
    assert!(
        warm_hits >= 1,
        "restarted backend answered nothing from its snapshot"
    );

    // Round 3: with the probe loop re-admitting the backend, the full
    // fleet serves the corpus again — still golden, still error-free.
    std::thread::sleep(Duration::from_millis(300));
    let out = run_client(&shard_addr, &requests);
    check(&out, &expected, "round 3 (healed)");

    // The incident is visible in stats and metrics.
    let stats = ctl.request_line(r#"{"op":"stats"}"#).expect("final stats");
    eprintln!("shard stats: {stats}");
    let v = Value::parse(&stats).expect("stats JSON");
    let failover_count = v
        .get("shard")
        .and_then(|s| s.get("failovers"))
        .and_then(Value::as_u64)
        .expect("failovers counter");
    assert!(failover_count > 0, "{stats}");
    let metrics = ctl.request_line(r#"{"op":"metrics"}"#).expect("metrics");
    assert!(metrics.contains("shard.failover"), "{metrics}");
    assert!(metrics.contains("shard.health.probes"), "{metrics}");
    drop(ctl);

    // SIGTERM drains the shard gracefully with a structured reason.
    let status = Command::new("kill")
        .args(["-TERM", &shard.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    let out = shard.wait_with_output().expect("shard exit");
    assert!(out.status.success(), "shard exit: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(r#"{"drained":{"reason":"SIGTERM"}}"#),
        "missing shard drained line: {stdout}"
    );

    // The backends drain over the wire, each leaving a drained line.
    for (child, addr) in backends {
        drain_backend(child, &addr);
    }
    for snap in &snaps {
        let _ = std::fs::remove_dir_all(snap);
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "backend-restart client soak is release-tier; run with --release"
)]
fn client_retry_rides_out_a_backend_restart() {
    let snap = temp_dir("retry");
    let (mut serve, addr, _) = spawn_serve("127.0.0.1:0", &snap);

    let mut client = Command::new(env!("CARGO_BIN_EXE_rwq"))
        .args([
            "client",
            "--addr",
            &addr,
            "--retry",
            "8",
            "--retry-backoff-ms",
            "30",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rwq client");
    let mut stdin = client.stdin.take().expect("client stdin");
    let mut stdout = BufReader::new(client.stdout.take().expect("client stdout"));
    let mut line = String::new();
    let mut next_line = |reader: &mut BufReader<_>| {
        line.clear();
        reader.read_line(&mut line).expect("client response");
        line.trim().to_string()
    };

    // Load and answer once while the backend is up.
    writeln!(
        stdin,
        r#"{{"op":"load","kb":"med","text":"||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)"}}"#
    )
    .unwrap();
    writeln!(stdin, r#"{{"op":"query","kb":"med","query":"Hep(Eric)"}}"#).unwrap();
    stdin.flush().unwrap();
    let loaded = next_line(&mut stdout);
    assert!(loaded.contains(r#""ok":true"#), "{loaded}");
    let cold = next_line(&mut stdout);
    assert!(cold.contains(r#""value":0.8"#), "{cold}");

    // Let a checkpoint land, then kill the backend and restart it on
    // the same port, warm from the snapshot.
    std::thread::sleep(Duration::from_millis(600));
    serve.kill().expect("kill serve");
    serve.wait().expect("reap serve");
    let (serve2, addr2, banner2) = spawn_serve(&addr, &snap);
    assert_eq!(addr2, addr);
    assert!(banner2.contains(r#""snapshot":{"kbs":1"#), "{banner2}");

    // The client's dead connection forces the retry loop: it reconnects
    // to the restarted backend and the replayed query answers warm.
    writeln!(stdin, r#"{{"op":"query","kb":"med","query":"Hep(Eric)"}}"#).unwrap();
    stdin.flush().unwrap();
    let warm = next_line(&mut stdout);
    assert!(warm.contains(r#""value":0.8"#), "{warm}");
    assert!(warm.contains(r#""cache_hit":true"#), "{warm}");
    assert_eq!(lens(&cold), lens(&warm));

    drop(stdin);
    let status = client.wait().expect("client exit");
    assert!(status.success(), "client exit: {status:?}");
    let mut stderr = String::new();
    client
        .stderr
        .take()
        .expect("client stderr")
        .read_to_string(&mut stderr)
        .expect("read stderr");
    assert!(
        stderr.contains(r#"{"retries":"#),
        "retry note missing on stderr: {stderr}"
    );

    drain_backend(serve2, &addr);
    let _ = std::fs::remove_dir_all(&snap);
}

/// The soak's equality lens itself: `strip_failover` must remove
/// exactly the additive annotation, so an annotated line and its
/// plain twin collapse to the same bytes.
#[test]
fn failover_lens_is_exactly_additive() {
    let plain = r#"{"query":"Hep(Eric)","ok":true,"value":0.8}"#;
    let annotated = r#"{"query":"Hep(Eric)","ok":true,"value":0.8,"failover":true}"#;
    assert_eq!(lens(plain), lens(annotated));
    // A line without any incidental markers passes through unchanged.
    let mention = r#"{"query":"Failover(X)","ok":true,"value":0.5}"#;
    assert_eq!(lens(mention), mention);
}
