//! Property tests for the batch executor's determinism guarantees:
//!
//! * the parallel path returns **byte-identical JSON** to the sequential
//!   path (once recorded wall times, which legitimately differ between
//!   runs, are masked);
//! * a warm cache returns the **same beliefs** as a cold one (the cache
//!   stores only semantic answers, so a hit can change the trace and the
//!   `cache_hit` flag — never the belief).

use proptest::prelude::*;
use rw_cli::{Session, SessionOptions};
use rw_logic::KnowledgeBase;

fn kb() -> KnowledgeBase {
    KnowledgeBase::parse(
        "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); \
         ||Over60(x) | Patient(x)||_x ~=_2 0.4; Patient(Eric)",
    )
    .unwrap()
}

/// A pool mixing theorem hits (direct inference, negation, independence
/// products), syntactic variants of one canonical form, and parse
/// errors. Deliberately theorem-answerable only: each answer costs
/// microseconds, so the property loop can afford hundreds of batches
/// (the mixed maxent/enumeration stages are covered by `rw-core`'s
/// batch tests, and the expensive-on-miss `!!φ` shape by the cache
/// tests, where it hits).
fn query_pool() -> Vec<&'static str> {
    vec![
        "Hep(Eric)",
        "(Over60(Eric)) & Hep(Eric)",
        "!Hep(Eric)",
        "Over60(Eric)",
        "!Over60(Eric)",
        "Hep(Eric) & Over60(Eric)",
        "Over60(Eric) & Hep(Eric)",
        "(Hep(Eric)) & Over60(Eric)",
        "Hep(",       // parse error, isolated to its line
        "Hep(Eric))", // parse error
    ]
}

/// A random workload: indices into the pool, with repeats.
fn workload() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(0usize..10, 4..40).prop_map(|idxs| {
        let pool = query_pool();
        idxs.into_iter().map(|i| pool[i].to_string()).collect()
    })
}

use rw_cli::json::mask_times;

/// The `"belief":{...}` fragment of a result line (`None` for errors).
fn belief_fragment(line: &str) -> Option<&str> {
    let start = line.find(r#""belief":"#)?;
    let rest = &line[start..];
    let end = rest.find(r#","provenance""#)?;
    Some(&rest[..end])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_batch_json_is_byte_identical_to_sequential(queries in workload()) {
        let sequential = Session::new(kb(), SessionOptions::default());
        let (seq_lines, seq_report) = sequential.answer_batch_report(&queries);
        for threads in [2usize, 4] {
            let parallel = Session::new(
                kb(),
                SessionOptions { threads, ..SessionOptions::default() },
            );
            let (par_lines, par_report) = parallel.answer_batch_report(&queries);
            prop_assert_eq!(par_lines.len(), seq_lines.len());
            for (i, (s, p)) in seq_lines.iter().zip(&par_lines).enumerate() {
                prop_assert_eq!(
                    mask_times(s),
                    mask_times(p),
                    "line {} diverged at {} threads for {:?}",
                    i,
                    threads,
                    queries
                );
            }
            prop_assert_eq!(par_report.answered, seq_report.answered);
            prop_assert_eq!(par_report.failed, seq_report.failed);
        }
    }

    #[test]
    fn warm_cache_beliefs_equal_cold_cache_beliefs(queries in workload()) {
        let session = Session::new(
            kb(),
            SessionOptions { cache: true, threads: 2, ..SessionOptions::default() },
        );
        let (cold_lines, _) = session.answer_batch_report(&queries);
        let (warm_lines, warm_report) = session.answer_batch_report(&queries);
        // Every successful query is now served from the cache...
        prop_assert_eq!(warm_report.cache_hits, warm_report.answered);
        if warm_report.answered > 0 {
            prop_assert!(warm_report.cache_hits > 0, "warm run reported no hits");
        }
        // ...with exactly the beliefs the cold run computed.
        for (i, (c, w)) in cold_lines.iter().zip(&warm_lines).enumerate() {
            prop_assert_eq!(
                belief_fragment(c),
                belief_fragment(w),
                "belief diverged at line {} for {:?}",
                i,
                queries
            );
        }
    }
}
