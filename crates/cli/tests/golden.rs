//! Golden-corpus conformance: the serving JSON for the paper examples
//! and the PR-2 "trap" queries is pinned byte-for-byte (modulo the
//! `_us` timing fields) in `tests/golden/*.jsonl` at the repository
//! root, and replayed through all three serving paths:
//!
//! 1. **query** — [`Session::answer_json_line`], the `rwq query`/
//!    streamed-batch unit;
//! 2. **batch** — [`Session::answer_batch_report`] at 2 threads, the
//!    parallel `rwq batch` executor;
//! 3. **server** — a spawned `rwq serve` process queried through a
//!    spawned `rwq client`, over real TCP.
//!
//! A corpus file is JSONL: a `{"kb": "<rwkb text>"}` line switches the
//! current knowledge base, every other line is one expected response.
//! Queries within one KB are canonically distinct (no two collapse to
//! the same cache key), so the server's shared cache answers each cold
//! — which is exactly what makes all three paths byte-identical.
//!
//! Regenerate after an intentional output change with:
//!
//! ```text
//! RWQ_GOLDEN_REGEN=1 cargo test -p rw-cli --test golden
//! ```

use rw_cli::json::mask_times;
use rw_cli::{Session, SessionOptions};
use rw_server::proto::Value;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

/// One knowledge base (rwkb text) and the queries asked against it.
type KbQueries = (&'static str, Vec<&'static str>);

/// The corpus source of truth: per golden file, the KBs and the queries
/// asked against each. The `.jsonl` files pin what these must answer.
fn corpus() -> Vec<(&'static str, Vec<KbQueries>)> {
    vec![
        (
            "paper_examples.jsonl",
            vec![
                (
                    // Hepatitis (Ex 5.8): direct inference.
                    "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)",
                    vec!["Hep(Eric)", "!Hep(Eric)"],
                ),
                (
                    // Penguins (Ex 5.10/5.19): specificity, and the
                    // minimal reference class once Yellow(Tweety)
                    // defeats the exact match.
                    "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
                     forall x (Penguin(x) => Bird(x)); Penguin(Tweety)",
                    vec!["Fly(Tweety)"],
                ),
                (
                    "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
                     forall x (Penguin(x) => Bird(x)); Penguin(Tweety); Yellow(Tweety)",
                    vec!["Fly(Tweety)"],
                ),
                (
                    // Elephants & zookeepers (Ex 5.12): binary predicates.
                    "||Likes(x, y) | Elephant(x) & Zookeeper(y)||_{x,y} ~=_1 1; \
                     ||Likes(x, Fred) | Elephant(x)||_x ~=_2 0; \
                     Zookeeper(Fred); Elephant(Clyde); Zookeeper(Eric)",
                    vec!["Likes(Clyde, Eric)", "Likes(Clyde, Fred)"],
                ),
                (
                    // Magpies (Ex 5.24): the strength rule's interval.
                    "0.7 <~_1 ||Chirps(x) | Bird(x)||_x <~_2 0.8; \
                     0 <~_3 ||Chirps(x) | Magpie(x)||_x <~_4 0.99; \
                     forall x (Magpie(x) => Bird(x)); Magpie(Tweety)",
                    vec!["Chirps(Tweety)"],
                ),
                (
                    // Nixon diamond (Ex 5.26): Dempster combination.
                    "||Pacifist(x) | Quaker(x)||_x ~=_1 0.8; \
                     ||Pacifist(x) | Republican(x)||_x ~=_2 0.8; \
                     Quaker(Nixon); Republican(Nixon); \
                     exists! x (Quaker(x) & Republican(x))",
                    vec!["Pacifist(Nixon)"],
                ),
                (
                    // Hepatitis × Over60 (Ex 5.28): independence product.
                    "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); \
                     ||Over60(x) | Patient(x)||_x ~=_2 0.4; Patient(Eric)",
                    vec!["Hep(Eric) & Over60(Eric)"],
                ),
                (
                    // Unique names (§5.5, Lifschitz C1).
                    "Ray = Reiter; Drew = McDermott",
                    vec!["!(Ray = Drew)", "Ray = Reiter"],
                ),
                (
                    // Nested defaults (Ex 4.6 / 5.14).
                    "|| ||Rises-late(x, y) | Day(y)||_y ~=_1 1 | ||To-bed-late(x, z) | Day(z)||_z ~=_2 1 ||_x ~=_3 1; \
                     ||To-bed-late(Alice, z) | Day(z)||_z ~=_2 1; \
                     Day(Tomorrow)",
                    vec!["Rises-late(Alice, Tomorrow)"],
                ),
                (
                    // Existential reference class (Ex 5.13).
                    "||Tall(x) | exists y (Child(x, y) & Tall(y))||_x ~=_1 1; \
                     exists y (Child(Alice, y) & Tall(y))",
                    vec!["Tall(Alice)"],
                ),
            ],
        ),
        (
            // Temporal projection through the `@temporal` loader
            // directive (compiled to L-approx by rw-temporal). The
            // deterministic causal shoot stays out: its maxent sweep is
            // too slow for a debug-build tier (the lab's release-mode
            // temporal workload covers it).
            "temporal_scenarios.jsonl",
            vec![
                (
                    // Statistical effect: shooting kills 70% of the time.
                    "@temporal causal\nfluent Loaded\nfluent Alive\ninit Loaded\ninit Alive\n\
                     step shoot requires Loaded causes !Alive@70%",
                    vec!["Alive1(S)", "!Alive1(S)", "Loaded0(S)"],
                ),
                (
                    // Plain persistence over a wait step.
                    "@temporal causal\nfluent Alive\ninit Alive\nwait",
                    vec!["Alive1(S)", "Alive0(S)"],
                ),
                (
                    // The naive shared-tolerance frame representation.
                    "@temporal naive-shared\nfluent Loaded\nfluent Alive\ninit Loaded\ninit Alive\n\
                     step shoot requires Loaded causes !Alive",
                    vec!["Alive1(S)"],
                ),
            ],
        ),
        (
            // Default-reasoning suites through the `@defaults` loader
            // directive under the statistical reading (rule i becomes
            // `A(x) ->_i B(x)`). The Nixon diamond and contraposition
            // suites need world enumeration — release-lab territory.
            "default_suites.jsonl",
            vec![
                (
                    "@defaults\nfact Bird(Tweety)\nrule Bird(x) -> Fly(x)",
                    vec!["Fly(Tweety)", "Bird(Tweety)"],
                ),
                (
                    "@defaults\nfact Penguin(Tweety)\naxiom forall x (Penguin(x) => Bird(x))\n\
                     rule Bird(x) -> Fly(x)\nrule Penguin(x) -> !Fly(x)",
                    vec!["Fly(Tweety)", "!Fly(Tweety)"],
                ),
            ],
        ),
        (
            "trap_queries.jsonl",
            vec![(
                // The PR-2 serving trap: shapes that used to miss every
                // theorem pattern and fall into a 1–14 s maxent sweep.
                // All answer from the theorem stage now (Entailed /
                // minimal reference class) — the corpus pins that.
                // Queries are pairwise canonically distinct (e.g. no
                // commuted twin of an included conjunction).
                "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); Patient(Eric); !Jaun(Tom)",
                vec![
                    "Jaun(Eric)",
                    "!!Patient(Eric)",
                    "Jaun(Eric) & Patient(Eric)",
                    "Patient(Eric) & !Jaun(Tom)",
                    "!Jaun(Eric)",
                    "Jaun(Tom)",
                    "Jaun(Eric) & Jaun(Tom)",
                    "Hep(Eric)",
                ],
            )],
        ),
    ]
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn kb_header(kb: &str) -> String {
    format!(r#"{{"kb":"{}"}}"#, rw_cli::json::escape(kb))
}

/// The query-path answer (the regeneration source and path 1).
fn query_path_line(session: &Session, query: &str) -> String {
    let (line, ok) = session.answer_json_line(query);
    assert!(ok, "corpus query must answer: {query}: {line}");
    line
}

#[test]
fn golden_corpus_matches_on_query_batch_and_server_paths() {
    if std::env::var("RWQ_GOLDEN_REGEN").is_ok() {
        regenerate();
        return;
    }
    for (file, kbs) in corpus() {
        let path = golden_dir().join(file);
        let content = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing golden file {path:?} ({e}); run with RWQ_GOLDEN_REGEN=1")
        });
        let expected = parse_golden(&content, file);
        // The corpus definition and the checked-in file must agree on
        // the KB/query matrix before any path is compared.
        assert_eq!(
            expected.len(),
            kbs.len(),
            "{file}: KB count drifted from the corpus definition; regenerate"
        );
        for ((kb_text, queries), (golden_kb, golden_lines)) in kbs.iter().zip(&expected) {
            assert_eq!(kb_text, golden_kb, "{file}: KB text drifted; regenerate");
            assert_eq!(
                queries.len(),
                golden_lines.len(),
                "{file}: query count drifted"
            );

            let kb = rw_server::parse_kb(kb_text).expect("corpus KB parses");
            // Path 1: one-shot query sessions.
            let session = Session::new(kb.clone(), SessionOptions::default());
            for (query, golden) in queries.iter().zip(golden_lines) {
                let actual = query_path_line(&session, query);
                assert_eq!(
                    mask_times(&actual),
                    mask_times(golden),
                    "{file}: query path diverged on {query}"
                );
            }
            // Path 2: the parallel batch executor.
            let batch = Session::new(
                kb,
                SessionOptions {
                    threads: 2,
                    ..SessionOptions::default()
                },
            );
            let owned: Vec<String> = queries.iter().map(|q| q.to_string()).collect();
            let (lines, report) = batch.answer_batch_report(&owned);
            assert_eq!(report.failed, 0, "{file}: batch failures");
            for ((query, golden), actual) in queries.iter().zip(golden_lines).zip(&lines) {
                assert_eq!(
                    mask_times(actual),
                    mask_times(golden),
                    "{file}: batch path diverged on {query}"
                );
            }
        }
        // Path 3: a real `rwq serve` process driven by `rwq client`.
        server_path_matches(&expected, file);
    }
}

/// Parses a golden file into `(kb_text, expected_lines)` groups.
fn parse_golden(content: &str, file: &str) -> Vec<(String, Vec<String>)> {
    let mut groups: Vec<(String, Vec<String>)> = Vec::new();
    for line in content.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v =
            Value::parse(line).unwrap_or_else(|e| panic!("{file}: bad golden line {line:?}: {e}"));
        if let Some(kb) = v.get("kb").and_then(Value::as_str) {
            if v.get("query").is_none() {
                groups.push((kb.to_string(), Vec::new()));
                continue;
            }
        }
        groups
            .last_mut()
            .unwrap_or_else(|| panic!("{file}: response line before any KB header"))
            .1
            .push(line.to_string());
    }
    groups
}

/// Spawns `rwq serve` on an ephemeral port, loads every corpus KB over
/// the wire through `rwq client`, asks every query, and diffs the
/// responses against the golden lines.
fn server_path_matches(expected: &[(String, Vec<String>)], file: &str) {
    server_path_with(expected, file, &[]);
}

/// [`server_path_matches`] with extra `rwq serve` flags (the
/// observability replay passes `--slow-log`/`--access-log` here).
fn server_path_with(expected: &[(String, Vec<String>)], file: &str, extra: &[&str]) {
    let mut serve = Command::new(env!("CARGO_BIN_EXE_rwq"))
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .args(extra)
        .stdout(Stdio::piped())
        .stdin(Stdio::null())
        .spawn()
        .expect("spawn rwq serve");
    let addr = read_serving_addr(&mut serve);

    // Build the client's stdin: load each KB under a unique name, then
    // its queries; responses come back one line per request, in order.
    let mut requests = String::new();
    let mut expected_responses: Vec<Option<&String>> = Vec::new(); // None = load ack
    for (i, (kb_text, lines)) in expected.iter().enumerate() {
        requests.push_str(&format!(
            r#"{{"op":"load","kb":"g{i}","text":"{}"}}"#,
            rw_cli::json::escape(kb_text)
        ));
        requests.push('\n');
        expected_responses.push(None);
        for golden in lines {
            let v = Value::parse(golden).expect("golden line parses");
            let query = v.get("query").and_then(Value::as_str).expect("query field");
            requests.push_str(&format!(
                r#"{{"op":"query","kb":"g{i}","query":"{}"}}"#,
                rw_cli::json::escape(query)
            ));
            requests.push('\n');
            expected_responses.push(Some(golden));
        }
    }
    if !extra.is_empty() {
        // The observability replay also snapshots the metrics registry
        // mid-stream: the op must succeed without disturbing any
        // response around it.
        requests.push_str("{\"op\":\"metrics\"}\n");
        expected_responses.push(None);
    }
    requests.push_str("{\"op\":\"shutdown\"}\n");
    expected_responses.push(None);

    let client = Command::new(env!("CARGO_BIN_EXE_rwq"))
        .args(["client", "--addr", &addr])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn rwq client");
    client
        .stdin
        .as_ref()
        .expect("client stdin")
        .write_all(requests.as_bytes())
        .expect("write requests");
    let out = client.wait_with_output().expect("client output");
    assert!(out.status.success(), "client exit: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("client stdout utf8");
    let responses: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        responses.len(),
        expected_responses.len(),
        "{file}: response count mismatch:\n{stdout}"
    );
    for (response, golden) in responses.iter().zip(&expected_responses) {
        match golden {
            None => assert!(
                response.contains(r#""ok":true"#),
                "{file}: control op failed: {response}"
            ),
            Some(golden) => assert_eq!(
                mask_times(response),
                mask_times(golden),
                "{file}: server path diverged"
            ),
        }
    }
    let status = serve.wait().expect("serve exit");
    assert!(status.success(), "serve exit: {status:?}");
}

/// The observability contract: with the metrics registry exercised and
/// every request slow-logged (`--slow-ms 0`) and access-logged, the
/// server path still produces byte-identical golden responses — and the
/// logs themselves are complete, parseable, and `rwq obs`-aggregatable.
#[test]
fn golden_corpus_is_byte_identical_with_observability_enabled() {
    if std::env::var("RWQ_GOLDEN_REGEN").is_ok() {
        return; // the regen run owns the golden files
    }
    let pid = std::process::id();
    let slow = std::env::temp_dir().join(format!("rwq-golden-slow-{pid}.jsonl"));
    let access = std::env::temp_dir().join(format!("rwq-golden-access-{pid}.jsonl"));
    for f in [&slow, &access] {
        let _ = std::fs::remove_file(f);
    }
    let mut queries = 0usize;
    for (file, _) in corpus() {
        let path = golden_dir().join(file);
        let content = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing golden file {path:?} ({e}); run with RWQ_GOLDEN_REGEN=1")
        });
        let expected = parse_golden(&content, file);
        queries += expected.iter().map(|(_, lines)| lines.len()).sum::<usize>();
        server_path_with(
            &expected,
            file,
            &[
                "--slow-log",
                slow.to_str().unwrap(),
                "--slow-ms",
                "0",
                "--access-log",
                access.to_str().unwrap(),
            ],
        );
    }
    // At threshold 0 every query lands in both logs, each slow-log line
    // carrying a span tree the `rwq obs` aggregator accepts.
    let slow_content = std::fs::read_to_string(&slow).expect("slow log written");
    let access_content = std::fs::read_to_string(&access).expect("access log written");
    for f in [&slow, &access] {
        let _ = std::fs::remove_file(f);
    }
    assert_eq!(slow_content.lines().count(), queries, "{slow_content}");
    assert_eq!(access_content.lines().count(), queries, "{access_content}");
    for line in slow_content.lines().chain(access_content.lines()) {
        Value::parse(line).unwrap_or_else(|e| panic!("bad log line {line:?}: {e}"));
    }
    let table = rw_cli::obs::aggregate(&slow_content).expect("obs aggregation");
    assert!(table.starts_with(&format!("traces: {queries}")), "{table}");
    assert!(table.contains("stage:"), "{table}");
}

/// Reads the `{"serving":{"addr":"..."}}` line a fresh server prints.
fn read_serving_addr(serve: &mut Child) -> String {
    let stdout = serve.stdout.as_mut().expect("serve stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("serving line");
    let v = Value::parse(line.trim()).expect("serving line is JSON");
    v.get("serving")
        .and_then(|s| s.get("addr"))
        .and_then(Value::as_str)
        .expect("serving addr")
        .to_string()
}

/// Writes the golden files from the query path (the reference
/// implementation all other paths must match).
fn regenerate() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    for (file, kbs) in corpus() {
        let mut out = String::new();
        out.push_str(&format!(
            "# {file}: canonical serving JSON (timing fields are masked on comparison).\n\
             # Regenerated by RWQ_GOLDEN_REGEN=1 cargo test -p rw-cli --test golden\n"
        ));
        for (kb_text, queries) in kbs {
            out.push_str(&kb_header(kb_text));
            out.push('\n');
            let session = Session::new(
                rw_server::parse_kb(kb_text).expect("corpus KB parses"),
                SessionOptions::default(),
            );
            for query in queries {
                out.push_str(&query_path_line(&session, query));
                out.push('\n');
            }
        }
        std::fs::write(dir.join(file), out).expect("write golden file");
    }
}
