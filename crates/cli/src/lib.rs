#![warn(missing_docs)]

//! `rwq`: the command-line front end for the random-worlds workspace.
//!
//! The binary loads a knowledge base written in the `L≈` concrete syntax
//! (see [`mod@format`] for the `.rwkb` file conventions), answers degree-of-
//! belief queries through the `rw-core` solver pipeline — theorem engine,
//! maximum entropy, exact finite-`N` counting — and can switch the prior
//! to the random-propensities families of `rw-propensity`. The `batch`
//! subcommand is the serving path: one loaded KB, queries streamed on
//! stdin one per line, one JSON result object per line on stdout. All
//! behavior lives in this library so it is testable without spawning
//! processes; the binary in `src/bin/rwq.rs` is a thin dispatcher.
//!
//! ```text
//! $ rwq query examples/kbs/hepatitis.rwkb "Hep(Eric)"
//! Pr∞(Hep(Eric) | KB) = 0.800000 (via direct inference (Thm 5.6))
//! ```

pub mod args;
pub mod format;
pub mod json;
pub mod session;

pub use args::{parse, ArgError, Command, USAGE};
pub use format::{load_kb, parse_kb, LoadError};
pub use session::{Session, SessionError, SessionOptions};

use std::io::BufRead;

/// Runs a parsed command, writing output lines through `out`. Returns the
/// process exit code. `stdin` supplies REPL queries (one per line).
pub fn run(
    cmd: Command,
    stdin: &mut dyn BufRead,
    out: &mut dyn std::io::Write,
) -> std::io::Result<i32> {
    match cmd {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(0)
        }
        Command::Check { file } => match load_kb(&file) {
            Ok(kb) => {
                let session = Session::new(kb, SessionOptions::default());
                write!(out, "{}", session.describe())?;
                Ok(0)
            }
            Err(e) => {
                writeln!(out, "error: {e}")?;
                Ok(1)
            }
        },
        Command::Query {
            file,
            queries,
            options,
        } => {
            let kb = match load_kb(&file) {
                Ok(kb) => kb,
                Err(e) => {
                    writeln!(out, "error: {e}")?;
                    return Ok(1);
                }
            };
            let session = Session::new(kb, options);
            let mut failures = 0;
            for q in &queries {
                match session.answer(q) {
                    Ok(a) => writeln!(out, "{a}")?,
                    Err(e) => {
                        writeln!(out, "error: {q}: {e}")?;
                        failures += 1;
                    }
                }
            }
            Ok(if failures == 0 { 0 } else { 1 })
        }
        Command::Batch { file } => {
            let kb = match load_kb(&file) {
                Ok(kb) => kb,
                Err(e) => {
                    // Even startup failure keeps stdout valid JSONL.
                    writeln!(out, "{}", json::fatal_line(&e.to_string()))?;
                    return Ok(1);
                }
            };
            let session = Session::new(kb, SessionOptions::default());
            // Streamed: each line is answered (and flushed) as it arrives,
            // so long-lived producers see results without waiting for EOF.
            let mut failures = 0usize;
            for line in stdin.lines() {
                let line = line?;
                let q = line.trim();
                if q.is_empty() || q.starts_with('#') {
                    continue;
                }
                let (json, ok) = session.answer_json_line(q);
                writeln!(out, "{json}")?;
                out.flush()?;
                if !ok {
                    failures += 1;
                }
            }
            Ok(if failures == 0 { 0 } else { 1 })
        }
        Command::Repl { file, options } => {
            let kb = match load_kb(&file) {
                Ok(kb) => kb,
                Err(e) => {
                    writeln!(out, "error: {e}")?;
                    return Ok(1);
                }
            };
            let session = Session::new(kb, options);
            for line in stdin.lines() {
                let line = line?;
                let q = line.trim();
                if q.is_empty() || q.starts_with('#') {
                    continue;
                }
                if q == "quit" || q == "exit" {
                    break;
                }
                match session.answer(q) {
                    Ok(a) => writeln!(out, "{a}")?,
                    Err(e) => writeln!(out, "error: {e}")?,
                }
            }
            Ok(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(cmd: Command, input: &str) -> (i32, String) {
        let mut out = Vec::new();
        let mut stdin = std::io::Cursor::new(input.as_bytes().to_vec());
        let code = run(cmd, &mut stdin, &mut out).unwrap();
        (code, String::from_utf8(out).unwrap())
    }

    fn write_kb(content: &str) -> tempfile::TempPath {
        tempfile::kb_file(content)
    }

    // A minimal temp-file helper (std-only; no tempfile crate offline).
    mod tempfile {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        pub struct TempPath(pub PathBuf);

        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }

        static COUNTER: AtomicU64 = AtomicU64::new(0);

        pub fn kb_file(content: &str) -> TempPath {
            let id = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("rwq-test-{}-{id}.rwkb", std::process::id()));
            std::fs::write(&path, content).unwrap();
            TempPath(path)
        }
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_capture(Command::Help, "");
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn query_end_to_end() {
        let kb = write_kb("||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\n");
        let cmd = Command::Query {
            file: kb.0.clone(),
            queries: vec!["Hep(Eric)".to_string()],
            options: SessionOptions::default(),
        };
        let (code, out) = run_capture(cmd, "");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("0.8"), "{out}");
    }

    #[test]
    fn query_missing_file_fails_cleanly() {
        let cmd = Command::Query {
            file: "/nonexistent/kb.rwkb".into(),
            queries: vec!["P(C)".to_string()],
            options: SessionOptions::default(),
        };
        let (code, out) = run_capture(cmd, "");
        assert_eq!(code, 1);
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn bad_query_sets_exit_code_but_answers_others() {
        let kb = write_kb("P(C)\n");
        let cmd = Command::Query {
            file: kb.0.clone(),
            queries: vec!["P(".to_string(), "P(C)".to_string()],
            options: SessionOptions::default(),
        };
        let (code, out) = run_capture(cmd, "");
        assert_eq!(code, 1);
        assert!(out.contains("error"), "{out}");
        assert!(out.contains("Pr∞(P(C)"), "{out}");
    }

    #[test]
    fn check_describes_kb() {
        let kb = write_kb("P(C)\n");
        let cmd = Command::Check { file: kb.0.clone() };
        let (code, out) = run_capture(cmd, "");
        assert_eq!(code, 0);
        assert!(out.contains("1 statement(s)"), "{out}");
    }

    #[test]
    fn batch_missing_file_emits_json_not_bare_text() {
        let cmd = Command::Batch {
            file: "/nonexistent/kb.rwkb".into(),
        };
        let (code, out) = run_capture(cmd, "P(C)\n");
        assert_eq!(code, 1);
        assert!(out.starts_with(r#"{"ok":false,"error":"#), "{out}");
    }

    #[test]
    fn batch_answers_jsonl_and_flags_bad_lines() {
        let kb = write_kb("||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\n");
        let cmd = Command::Batch { file: kb.0.clone() };
        let (code, out) = run_capture(cmd, "Hep(Eric)\n# a comment\n\nHep(\n!Hep(Eric)\n");
        // The bad middle line fails the exit code but not the other answers.
        assert_eq!(code, 1, "{out}");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "{out}");
        assert!(lines[0].contains(r#""ok":true"#), "{out}");
        assert!(lines[0].contains(r#""value":0.8"#), "{out}");
        assert!(lines[1].contains(r#""ok":false"#), "{out}");
        assert!(lines[2].contains(r#""ok":true"#), "{out}");
    }

    #[test]
    fn repl_answers_until_quit() {
        let kb = write_kb("||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\n");
        let cmd = Command::Repl {
            file: kb.0.clone(),
            options: SessionOptions::default(),
        };
        let (code, out) = run_capture(cmd, "Hep(Eric)\n# comment\n\nquit\nHep(Eric)\n");
        assert_eq!(code, 0);
        // Answered exactly once: the post-quit line is never read.
        assert_eq!(out.matches("Pr∞").count(), 1, "{out}");
    }
}
