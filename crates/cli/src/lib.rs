#![warn(missing_docs)]

//! `rwq`: the command-line front end for the random-worlds workspace.
//!
//! The binary loads a knowledge base written in the `L≈` concrete syntax
//! (see [`mod@format`] for the `.rwkb` file conventions), answers degree-of-
//! belief queries through the `rw-core` solver pipeline — theorem engine,
//! maximum entropy, exact finite-`N` counting — and can switch the prior
//! to the random-propensities families of `rw-propensity`. The `batch`
//! subcommand is the serving path: one loaded KB, queries streamed on
//! stdin one per line, one JSON result object per line on stdout, and a
//! closing `{"summary":{...}}` line with `{answered, failed}` counts.
//! `--threads N` shards the batch across the parallel executor
//! (`rw_core::RandomWorlds::answer_batch_report`; `0` = one worker per
//! core) and `--cache` shares a canonical-query answer cache across the
//! session, with per-line `cache_hit` / `elapsed_us` fields in the JSON.
//! `--approx` (with `--samples`, `--mc-seed`, `--ci`) enables the
//! Monte-Carlo approximate-inference stage on `query`, `repl` and
//! `batch`: queries missing every theorem pattern are answered by
//! sampling in bounded time, the JSON gains an `approximate` belief
//! (point estimate + 95% CI half-width) and an `mc` counts object, and a
//! fixed `--mc-seed` yields identical answers at any thread count.
//! All behavior lives in this library so it is testable without spawning
//! processes; the binary in `src/bin/rwq.rs` is a thin dispatcher.
//!
//! ```text
//! $ rwq query examples/kbs/hepatitis.rwkb "Hep(Eric)"
//! Pr∞(Hep(Eric) | KB) = 0.800000 (via direct inference (Thm 5.6))
//!
//! $ printf 'Hep(Eric)\nHep(Eric)\n' | rwq batch examples/kbs/hepatitis.rwkb --threads 4 --cache
//! {"query":"Hep(Eric)","ok":true,"cache_hit":false,...}
//! {"query":"Hep(Eric)","ok":true,"cache_hit":true,...}
//! {"summary":{"queries":2,"answered":2,"failed":0,"cache_hits":1,...}}
//! ```

pub mod args;
pub mod obs;
pub mod session;

// The `.rwkb` loader and the serving JSON renderer live in `rw-server`
// (every serving surface — one-shot CLI and resident server — shares
// them); re-exported here so `rw_cli::json`/`rw_cli::format` keep
// working.
pub use rw_server::format;
pub use rw_server::json;

pub use args::{parse, ArgError, Command, USAGE};
pub use format::{load_kb, parse_kb, LoadError};
pub use session::{Session, SessionError, SessionOptions};

use std::io::BufRead;

/// Connection failures worth retrying: the peer is (re)starting or just
/// dropped us, and a fresh connect a moment later can succeed. Anything
/// else (unreachable host, bad address, permission) fails immediately.
fn retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof
    )
}

/// Connects to `addr`, sleeping `backoff_ms` (doubling per attempt,
/// capped at 2s) between up to `retry` reconnect attempts on transient
/// failures. Each sleep is tallied into `retries_used`.
fn connect_retry(
    addr: &str,
    retry: u32,
    backoff_ms: u64,
    retries_used: &mut u64,
) -> std::io::Result<rw_server::Client> {
    let mut backoff = backoff_ms.max(1);
    let mut attempt = 0u32;
    loop {
        match rw_server::Client::connect(addr) {
            Ok(c) => return Ok(c),
            Err(e) if attempt < retry && retryable(&e) => {
                attempt += 1;
                *retries_used += 1;
                std::thread::sleep(std::time::Duration::from_millis(backoff));
                backoff = (backoff * 2).min(2000);
            }
            Err(e) => return Err(e),
        }
    }
}

/// One lock-step request with reconnect-and-resend on transient
/// failures. Resending is safe because every op in the protocol is
/// idempotent (queries are deterministic and cached; a replayed `load`
/// reinstalls the same KB).
fn request_retry(
    client: &mut rw_server::Client,
    addr: &str,
    request: &str,
    retry: u32,
    backoff_ms: u64,
    retries_used: &mut u64,
) -> std::io::Result<String> {
    let mut err = match client.request_line(request) {
        Ok(r) => return Ok(r),
        Err(e) => e,
    };
    let mut backoff = backoff_ms.max(1);
    for _ in 0..retry {
        if !retryable(&err) {
            break;
        }
        *retries_used += 1;
        std::thread::sleep(std::time::Duration::from_millis(backoff));
        backoff = (backoff * 2).min(2000);
        match rw_server::Client::connect(addr) {
            Ok(c) => {
                *client = c;
                match client.request_line(request) {
                    Ok(r) => return Ok(r),
                    Err(e) => err = e,
                }
            }
            Err(e) => err = e,
        }
    }
    Err(err)
}

/// Runs a parsed command, writing output lines through `out`. Returns the
/// process exit code. `stdin` supplies REPL queries (one per line).
pub fn run(
    cmd: Command,
    stdin: &mut dyn BufRead,
    out: &mut dyn std::io::Write,
) -> std::io::Result<i32> {
    match cmd {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(0)
        }
        Command::Check { file } => match load_kb(&file) {
            Ok(kb) => {
                let session = Session::new(kb, SessionOptions::default());
                write!(out, "{}", session.describe())?;
                Ok(0)
            }
            Err(e) => {
                writeln!(out, "error: {e}")?;
                Ok(1)
            }
        },
        Command::Query {
            file,
            queries,
            options,
        } => {
            let kb = match load_kb(&file) {
                Ok(kb) => kb,
                Err(e) => {
                    writeln!(out, "error: {e}")?;
                    return Ok(1);
                }
            };
            let session = Session::new(kb, options);
            let mut failures = 0;
            for q in &queries {
                match session.answer(q) {
                    Ok(a) => writeln!(out, "{a}")?,
                    Err(e) => {
                        writeln!(out, "error: {q}: {e}")?;
                        failures += 1;
                    }
                }
            }
            Ok(if failures == 0 { 0 } else { 1 })
        }
        Command::Batch { file, options } => {
            let kb = match load_kb(&file) {
                Ok(kb) => kb,
                Err(e) => {
                    // Even startup failure keeps stdout valid JSONL.
                    writeln!(out, "{}", json::fatal_line(&e.to_string()))?;
                    return Ok(1);
                }
            };
            let threads = options.threads;
            let session = Session::new(kb, options);
            let report = if threads == 1 {
                // Streamed: each line is answered (and flushed) as it
                // arrives, so long-lived producers see results without
                // waiting for EOF. Time only the answering, not the
                // stdin waits — a slow producer must not inflate the
                // summary's wall_us/cpu_us (which the parallel path
                // measures inside the executor, after collection).
                let mut answered = 0usize;
                let mut failed = 0usize;
                let mut busy = std::time::Duration::ZERO;
                for line in stdin.lines() {
                    let line = line?;
                    let q = line.trim();
                    if q.is_empty() || q.starts_with('#') {
                        continue;
                    }
                    let t = std::time::Instant::now();
                    let (json, ok) = session.answer_json_line(q);
                    busy += t.elapsed();
                    writeln!(out, "{json}")?;
                    out.flush()?;
                    if ok {
                        answered += 1;
                    } else {
                        failed += 1;
                    }
                }
                let (denom_hits, denom_misses) = session.denom_counts();
                rw_core::BatchReport {
                    queries: answered + failed,
                    answered,
                    failed,
                    cache_hits: session.cache_hits() as usize,
                    cache_misses: session.cache_misses() as usize,
                    denom_hits,
                    denom_misses,
                    threads: 1,
                    wall: busy,
                    cpu: busy,
                    stages: Vec::new(),
                }
            } else {
                // Parallel: the workload must be collected up front so the
                // worker pool can shard it; output order stays the input
                // order (the executor is deterministic).
                let mut queries = Vec::new();
                for line in stdin.lines() {
                    let line = line?;
                    let q = line.trim();
                    if q.is_empty() || q.starts_with('#') {
                        continue;
                    }
                    queries.push(q.to_string());
                }
                let (lines, report) = session.answer_batch_report(&queries);
                for l in &lines {
                    writeln!(out, "{l}")?;
                }
                report
            };
            // The closing summary makes {answered, failed} machine-readable
            // instead of only being countable from stderr/exit status.
            writeln!(out, "{}", json::summary_line(&report))?;
            out.flush()?;
            Ok(if report.failed == 0 { 0 } else { 1 })
        }
        Command::Serve { file, config, scan } => {
            // Read the KB text ourselves (instead of `load_kb`) so the
            // source can be retained for snapshotting — a restarted
            // server re-parses it from the snapshot and answers warm.
            let preload = match file {
                Some(f) => {
                    let text = match std::fs::read_to_string(&f) {
                        Ok(t) => t,
                        Err(e) => {
                            writeln!(out, "error: {}: {e}", f.display())?;
                            return Ok(1);
                        }
                    };
                    match parse_kb(&text) {
                        Ok(kb) => Some((kb, text)),
                        Err(e) => {
                            writeln!(out, "error: {e}")?;
                            return Ok(1);
                        }
                    }
                }
                None => None,
            };
            let snapshots = config.snapshot_dir.is_some();
            let server = match rw_server::Server::bind(config) {
                Ok(s) => s,
                Err(e) => {
                    writeln!(out, "error: cannot bind: {e}")?;
                    return Ok(1);
                }
            };
            // SIGTERM/SIGINT become graceful drains, not instant deaths:
            // in-flight answers flush and (with --snapshot-dir) a final
            // checkpoint lands before exit.
            if let Err(e) = rw_server::signal::install() {
                eprintln!(
                    "{}",
                    json::fatal_line(&format!("cannot install signal handlers: {e}"))
                );
            }
            // Snapshot first, preload second: an explicitly passed KB
            // file wins over a snapshotted KB of the same name.
            let snapshot_field = if snapshots {
                let fragment = match server.load_snapshot() {
                    None => rw_server::SnapshotStats::default().json(),
                    Some(Ok(stats)) => stats.json(),
                    Some(Err(e)) => format!(
                        r#"{{"error":"{}","code":"{}"}}"#,
                        json::escape(&e.to_string()),
                        e.code()
                    ),
                };
                format!(r#","snapshot":{fragment}"#)
            } else {
                String::new()
            };
            if let Some((kb, text)) = preload {
                server
                    .registry()
                    .insert_scan_source("default", kb, scan, Some(text));
            }
            let kbs: Vec<String> = server
                .registry()
                .snapshot_entries()
                .iter()
                .map(|k| format!("\"{}\"", json::escape(&k.name)))
                .collect();
            let addr = server
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_default();
            // The first line is machine-readable so scripts (and the e2e
            // suite) learn the actual port when `--addr` asked for :0.
            writeln!(
                out,
                r#"{{"serving":{{"addr":"{}","threads":{},"cache_shards":{},"max_queue":{},"max_conns":{},"idle_timeout_ms":{},"kbs":[{}]{}}}}}"#,
                json::escape(&addr),
                server.threads(),
                server.registry().cache().shard_count(),
                server.queue_capacity(),
                server.max_conns(),
                server.idle_timeout_ms(),
                kbs.join(","),
                snapshot_field
            )?;
            out.flush()?;
            match server.run() {
                Ok(()) => {
                    // Scripts and supervisors learn *why* the server
                    // exited zero (shutdown op vs. signal).
                    if let Some(reason) = server.drain_reason() {
                        writeln!(out, r#"{{"drained":{{"reason":"{reason}"}}}}"#)?;
                        out.flush()?;
                    }
                    Ok(0)
                }
                Err(e) => {
                    writeln!(out, "error: serving failed: {e}")?;
                    Ok(1)
                }
            }
        }
        Command::Shard { config } => {
            let shard = match rw_server::Shard::bind(config) {
                Ok(s) => s,
                Err(e) => {
                    writeln!(out, "error: cannot bind shard: {e}")?;
                    return Ok(1);
                }
            };
            if let Err(e) = rw_server::signal::install() {
                eprintln!(
                    "{}",
                    json::fatal_line(&format!("cannot install signal handlers: {e}"))
                );
            }
            let addr = shard
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_default();
            let backends: Vec<String> = shard
                .backend_addrs()
                .iter()
                .map(|b| format!("\"{}\"", json::escape(b)))
                .collect();
            writeln!(
                out,
                r#"{{"sharding":{{"addr":"{}","backends":[{}],"threads":{}}}}}"#,
                json::escape(&addr),
                backends.join(","),
                shard.threads()
            )?;
            out.flush()?;
            match shard.run() {
                Ok(()) => {
                    if let Some(reason) = shard.drain_reason() {
                        writeln!(out, r#"{{"drained":{{"reason":"{reason}"}}}}"#)?;
                        out.flush()?;
                    }
                    Ok(0)
                }
                Err(e) => {
                    writeln!(out, "error: sharding failed: {e}")?;
                    Ok(1)
                }
            }
        }
        Command::Obs { path } => {
            let content = match std::fs::read_to_string(&path) {
                Ok(c) => c,
                Err(e) => {
                    writeln!(out, "error: cannot read {}: {e}", path.display())?;
                    return Ok(1);
                }
            };
            match obs::aggregate(&content) {
                Ok(table) => {
                    write!(out, "{table}")?;
                    out.flush()?;
                    Ok(0)
                }
                Err(e) => {
                    writeln!(out, "error: {e}")?;
                    Ok(1)
                }
            }
        }
        Command::Client {
            addr,
            retry,
            retry_backoff_ms,
        } => {
            // A restarting backend (supervisor respawn, rolling deploy)
            // refuses or resets connections for a moment; with --retry
            // that window is ridden out with exponential backoff instead
            // of exiting 1. The note on stderr keeps stdout pure JSONL.
            let mut retries_used = 0u64;
            let note_retries = |retries_used: u64| {
                if retries_used > 0 {
                    eprintln!(r#"{{"retries":{retries_used}}}"#);
                }
            };
            let mut client = match connect_retry(&addr, retry, retry_backoff_ms, &mut retries_used)
            {
                Ok(c) => c,
                Err(e) => {
                    writeln!(
                        out,
                        "{}",
                        json::fatal_line(&format!("cannot connect to {addr}: {e}"))
                    )?;
                    note_retries(retries_used);
                    return Ok(1);
                }
            };
            let mut failures = 0usize;
            for line in stdin.lines() {
                let line = line?;
                let request = line.trim();
                if request.is_empty() || request.starts_with('#') {
                    continue;
                }
                match request_retry(
                    &mut client,
                    &addr,
                    request,
                    retry,
                    retry_backoff_ms,
                    &mut retries_used,
                ) {
                    Ok(response) => {
                        if response.contains(r#""ok":false"#) {
                            failures += 1;
                        }
                        writeln!(out, "{response}")?;
                        out.flush()?;
                    }
                    Err(e) => {
                        writeln!(
                            out,
                            "{}",
                            json::fatal_line(&format!("connection to {addr} lost: {e}"))
                        )?;
                        note_retries(retries_used);
                        return Ok(1);
                    }
                }
            }
            note_retries(retries_used);
            Ok(if failures == 0 { 0 } else { 1 })
        }
        Command::Lab {
            workload,
            config,
            rows,
            report,
        } => {
            let workload = match rw_lab::Workload::load(&workload) {
                Ok(w) => w,
                Err(e) => {
                    writeln!(out, "error: {e}")?;
                    return Ok(1);
                }
            };
            let trial_rows = rw_lab::run(&workload, &config);
            let mut rendered = String::new();
            for row in &trial_rows {
                rendered.push_str(&row.render());
                rendered.push('\n');
            }
            write!(out, "{rendered}")?;
            if let Some(path) = rows {
                std::fs::write(&path, &rendered)?;
            }
            write!(out, "\n{}", rw_lab::analysis_table(&trial_rows))?;
            let lab_report = rw_lab::evaluate(&workload, &config, &trial_rows);
            std::fs::write(&report, format!("{}\n", lab_report.to_json()))?;
            for g in &lab_report.gates {
                writeln!(
                    out,
                    "gate {:<22} {:<4}  {}",
                    g.gate,
                    g.status.keyword(),
                    g.detail
                )?;
            }
            writeln!(
                out,
                "{}: {} trials, {} ok, {} failed — {} (report: {})",
                workload.name,
                lab_report.trials,
                lab_report.ok,
                lab_report.failed,
                if lab_report.pass { "PASS" } else { "FAIL" },
                report.display()
            )?;
            out.flush()?;
            Ok(if lab_report.pass { 0 } else { 1 })
        }
        Command::Repl { file, options } => {
            let kb = match load_kb(&file) {
                Ok(kb) => kb,
                Err(e) => {
                    writeln!(out, "error: {e}")?;
                    return Ok(1);
                }
            };
            let session = Session::new(kb, options);
            for line in stdin.lines() {
                let line = line?;
                let q = line.trim();
                if q.is_empty() || q.starts_with('#') {
                    continue;
                }
                if q == "quit" || q == "exit" {
                    break;
                }
                match session.answer(q) {
                    Ok(a) => writeln!(out, "{a}")?,
                    Err(e) => writeln!(out, "error: {e}")?,
                }
            }
            Ok(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(cmd: Command, input: &str) -> (i32, String) {
        let mut out = Vec::new();
        let mut stdin = std::io::Cursor::new(input.as_bytes().to_vec());
        let code = run(cmd, &mut stdin, &mut out).unwrap();
        (code, String::from_utf8(out).unwrap())
    }

    fn write_kb(content: &str) -> tempfile::TempPath {
        tempfile::kb_file(content)
    }

    // A minimal temp-file helper (std-only; no tempfile crate offline).
    mod tempfile {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        pub struct TempPath(pub PathBuf);

        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }

        static COUNTER: AtomicU64 = AtomicU64::new(0);

        pub fn kb_file(content: &str) -> TempPath {
            let id = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("rwq-test-{}-{id}.rwkb", std::process::id()));
            std::fs::write(&path, content).unwrap();
            TempPath(path)
        }
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_capture(Command::Help, "");
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn query_end_to_end() {
        let kb = write_kb("||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\n");
        let cmd = Command::Query {
            file: kb.0.clone(),
            queries: vec!["Hep(Eric)".to_string()],
            options: SessionOptions::default(),
        };
        let (code, out) = run_capture(cmd, "");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("0.8"), "{out}");
    }

    #[test]
    fn query_missing_file_fails_cleanly() {
        let cmd = Command::Query {
            file: "/nonexistent/kb.rwkb".into(),
            queries: vec!["P(C)".to_string()],
            options: SessionOptions::default(),
        };
        let (code, out) = run_capture(cmd, "");
        assert_eq!(code, 1);
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn bad_query_sets_exit_code_but_answers_others() {
        let kb = write_kb("P(C)\n");
        let cmd = Command::Query {
            file: kb.0.clone(),
            queries: vec!["P(".to_string(), "P(C)".to_string()],
            options: SessionOptions::default(),
        };
        let (code, out) = run_capture(cmd, "");
        assert_eq!(code, 1);
        assert!(out.contains("error"), "{out}");
        assert!(out.contains("Pr∞(P(C)"), "{out}");
    }

    #[test]
    fn check_describes_kb() {
        let kb = write_kb("P(C)\n");
        let cmd = Command::Check { file: kb.0.clone() };
        let (code, out) = run_capture(cmd, "");
        assert_eq!(code, 0);
        assert!(out.contains("1 statement(s)"), "{out}");
    }

    #[test]
    fn batch_missing_file_emits_json_not_bare_text() {
        let cmd = Command::Batch {
            file: "/nonexistent/kb.rwkb".into(),
            options: SessionOptions::default(),
        };
        let (code, out) = run_capture(cmd, "P(C)\n");
        assert_eq!(code, 1);
        assert!(out.starts_with(r#"{"ok":false,"error":"#), "{out}");
    }

    #[test]
    fn batch_answers_jsonl_and_flags_bad_lines() {
        let kb = write_kb("||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\n");
        let cmd = Command::Batch {
            file: kb.0.clone(),
            options: SessionOptions::default(),
        };
        let (code, out) = run_capture(cmd, "Hep(Eric)\n# a comment\n\nHep(\n!Hep(Eric)\n");
        // The bad middle line fails the exit code but not the other answers.
        assert_eq!(code, 1, "{out}");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        assert!(lines[0].contains(r#""ok":true"#), "{out}");
        assert!(lines[0].contains(r#""cache_hit":false"#), "{out}");
        assert!(lines[0].contains(r#""value":0.8"#), "{out}");
        assert!(lines[1].contains(r#""ok":false"#), "{out}");
        assert!(lines[2].contains(r#""ok":true"#), "{out}");
        // The closing summary line carries machine-readable counts.
        assert!(lines[3].contains(r#""answered":2,"failed":1"#), "{out}");
    }

    #[test]
    fn parallel_batch_matches_streamed_output_and_reports_stages() {
        let kb = write_kb("||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\n");
        let input = "Hep(Eric)\nHep(\n!Hep(Eric)\nHep(Eric) & Jaun(Eric)\n";
        let streamed = run_capture(
            Command::Batch {
                file: kb.0.clone(),
                options: SessionOptions::default(),
            },
            input,
        );
        let parallel = run_capture(
            Command::Batch {
                file: kb.0.clone(),
                options: SessionOptions {
                    threads: 4,
                    ..SessionOptions::default()
                },
            },
            input,
        );
        assert_eq!(streamed.0, parallel.0);
        // Identical result lines (in input order) once wall times are
        // stripped; the summaries differ (threads, stage totals).
        let strip = |s: &str| {
            let mut out = String::new();
            let mut rest = s;
            while let Some(i) = rest.find("_us\":") {
                out.push_str(&rest[..i + 5]);
                rest = rest[i + 5..].trim_start_matches(|c: char| c.is_ascii_digit());
            }
            out.push_str(rest);
            out
        };
        let s_lines: Vec<String> = streamed.1.lines().map(strip).collect();
        let p_lines: Vec<String> = parallel.1.lines().map(strip).collect();
        assert_eq!(s_lines.len(), 5);
        assert_eq!(p_lines.len(), 5);
        assert_eq!(
            s_lines[..4],
            p_lines[..4],
            "\n{}\n{}",
            streamed.1,
            parallel.1
        );
        assert!(p_lines[4].contains(r#""threads":4"#), "{}", parallel.1);
        assert!(
            p_lines[4].contains(r#""stages":[{"stage":"theorems""#),
            "{}",
            parallel.1
        );
    }

    #[test]
    fn cached_batch_reports_hits_in_lines_and_summary() {
        let kb = write_kb("||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\n");
        let cmd = Command::Batch {
            file: kb.0.clone(),
            options: SessionOptions {
                cache: true,
                ..SessionOptions::default()
            },
        };
        // The streamed (threads=1) path: the repeat and the commuted
        // conjunction both hit deterministically.
        let (code, out) = run_capture(cmd, "Hep(Eric)\nHep(Eric)\n!!Hep(Eric)\n");
        assert_eq!(code, 0, "{out}");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        assert!(lines[0].contains(r#""cache_hit":false"#), "{out}");
        assert!(lines[1].contains(r#""cache_hit":true"#), "{out}");
        assert!(lines[2].contains(r#""cache_hit":true"#), "{out}");
        for l in &lines[..3] {
            assert!(l.contains(r#""value":0.8"#), "{out}");
        }
        // Misses and denominator-cache traffic ride along in the summary
        // (a theorem-only KB never consults the denominator cache).
        assert!(
            lines[3].contains(r#""cache_hits":2,"cache_misses":1,"denoms":{"hits":0,"misses":0}"#),
            "{out}"
        );
    }

    #[test]
    fn obs_renders_a_table_from_a_slow_log() {
        let trace = write_kb(
            r#"{"trace_id":3,"kb":"default","query":"P(C)","elapsed_us":500,"spans":[{"id":1,"parent":null,"name":"request","wall_us":500,"cpu_us":0},{"id":2,"parent":1,"name":"answer","wall_us":400,"cpu_us":300}]}"#,
        );
        let (code, out) = run_capture(
            Command::Obs {
                path: trace.0.clone(),
            },
            "",
        );
        assert_eq!(code, 0, "{out}");
        assert!(out.starts_with("traces: 1, spans: 2"), "{out}");
        assert!(out.contains("self_us"), "{out}");
        assert!(out.contains("request"), "{out}");
    }

    #[test]
    fn obs_missing_or_empty_files_fail_cleanly() {
        let (code, out) = run_capture(
            Command::Obs {
                path: "/nonexistent/slow.jsonl".into(),
            },
            "",
        );
        assert_eq!(code, 1);
        assert!(out.contains("error"), "{out}");
        let empty = write_kb("");
        let (code, out) = run_capture(
            Command::Obs {
                path: empty.0.clone(),
            },
            "",
        );
        assert_eq!(code, 1);
        assert!(out.contains("no span traces"), "{out}");
    }

    #[test]
    fn lab_run_end_to_end() {
        let workload = write_kb(
            "{\"workload\":\"smoke\"}\n\
             {\"task\":\"hep\",\"kb\":\"||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)\",\"query\":\"Hep(Eric)\",\"expect\":0.8}\n",
        );
        let report =
            std::env::temp_dir().join(format!("rwq-lab-report-{}.json", std::process::id()));
        let cmd = Command::Lab {
            workload: workload.0.clone(),
            config: rw_lab::RunConfig::default(),
            rows: None,
            report: report.clone(),
        };
        let (code, out) = run_capture(cmd, "");
        let report_json = std::fs::read_to_string(&report).unwrap();
        let _ = std::fs::remove_file(&report);
        assert_eq!(code, 0, "{out}");
        // Rows (2 cache settings × 3 default engines), table, gate lines
        // and the closing verdict all reach stdout.
        assert_eq!(out.matches("{\"task\":\"hep\"").count(), 6, "{out}");
        assert!(out.contains("\"engine\":\"montecarlo\""), "{out}");
        assert!(out.contains("gate cross-engine-equality"), "{out}");
        assert!(out.contains("PASS"), "{out}");
        assert!(report_json.contains("\"pass\":true"), "{report_json}");
    }

    #[test]
    fn lab_gate_violations_set_the_exit_code() {
        let workload = write_kb(
            "{\"task\":\"hep\",\"kb\":\"||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)\",\"query\":\"Hep(Eric)\",\"expect\":0.2}\n",
        );
        let report =
            std::env::temp_dir().join(format!("rwq-lab-report-bad-{}.json", std::process::id()));
        let cmd = Command::Lab {
            workload: workload.0.clone(),
            config: rw_lab::RunConfig::default(),
            rows: None,
            report: report.clone(),
        };
        let (code, out) = run_capture(cmd, "");
        let report_json = std::fs::read_to_string(&report).unwrap();
        let _ = std::fs::remove_file(&report);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("FAIL"), "{out}");
        assert!(report_json.contains("\"pass\":false"), "{report_json}");
    }

    #[test]
    fn lab_missing_workload_fails_cleanly() {
        let cmd = Command::Lab {
            workload: "/nonexistent/w.jsonl".into(),
            config: rw_lab::RunConfig::default(),
            rows: None,
            report: "unused.json".into(),
        };
        let (code, out) = run_capture(cmd, "");
        assert_eq!(code, 1);
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn repl_answers_until_quit() {
        let kb = write_kb("||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\n");
        let cmd = Command::Repl {
            file: kb.0.clone(),
            options: SessionOptions::default(),
        };
        let (code, out) = run_capture(cmd, "Hep(Eric)\n# comment\n\nquit\nHep(Eric)\n");
        assert_eq!(code, 0);
        // Answered exactly once: the post-quit line is never read.
        assert_eq!(out.matches("Pr∞").count(), 1, "{out}");
    }
}
