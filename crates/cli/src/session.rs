//! Query sessions: a loaded knowledge base plus answer formatting.
//!
//! The session wraps the [`rw_core::RandomWorlds`] solver pipeline (or a
//! [`rw_propensity::PropensityEngine`] when a non-uniform prior is chosen)
//! and renders results as the stable, line-oriented text the `rwq` binary
//! prints — kept in the library so integration tests can assert on it.
//! [`Session::answer_json_line`] is the serving path behind `rwq batch`:
//! one loaded KB, one pinned solver pipeline, one JSON object per query
//! ([`Session::answer_batch_jsonl`] is the collected convenience form).

use rw_core::{
    AnswerCache, BatchOptions, BatchReport, DenomCache, EngineError, McConfig, RandomWorlds,
};
use rw_logic::{KnowledgeBase, Pretty, Tolerances};
use rw_propensity::{Prior, PropensityEngine};
use rw_unary::UnaryError;
use rw_util::Rat;
use std::fmt;
use std::sync::Arc;

/// Options shared by every query in a session.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionOptions {
    /// `None` = the random-worlds uniform prior; `Some` = a propensity
    /// prior evaluated by finite-`N` sweeps.
    pub prior: Option<Prior>,
    /// Tolerance used for finite-`N` trend output and propensity sweeps.
    pub tau: Rat,
    /// Domain sizes for trend output (empty = no trend lines).
    pub trend: Vec<usize>,
    /// Include provenance detail in answers.
    pub explain: bool,
    /// Worker threads for `batch` (`0` = one per core, `1` = stream
    /// sequentially); with `--approx` the same count also drives the
    /// sampler's worker pool (never the answers — sampling is
    /// thread-count deterministic).
    pub threads: usize,
    /// Install a canonical-query [`AnswerCache`] shared by every query in
    /// the session.
    pub cache: bool,
    /// Enable the Monte-Carlo approximate-inference stage (`--approx`).
    pub approx: bool,
    /// `--samples`: override the sampler's total draw cap.
    pub samples: Option<u64>,
    /// `--mc-seed`: override the sampler's root seed.
    pub mc_seed: Option<u64>,
    /// `--ci`: override the sampler's target CI half-width.
    pub ci: Option<f64>,
    /// `--symmetry`: the exact enumeration stage counts symmetry-reduced
    /// orbit representatives instead of raw worlds, reaching far deeper
    /// domain sizes on KBs inside the symmetry fragment.
    pub symmetry: bool,
    /// `--min-n`: first domain size of the enumeration scan.
    pub min_n: Option<usize>,
    /// `--max-n`: last domain size of the enumeration scan.
    pub max_n: Option<usize>,
}

impl Default for SessionOptions {
    fn default() -> SessionOptions {
        SessionOptions {
            prior: None,
            tau: Rat::new(1, 10),
            trend: Vec::new(),
            explain: true,
            threads: 1,
            cache: false,
            approx: false,
            samples: None,
            mc_seed: None,
            ci: None,
            symmetry: false,
            min_n: None,
            max_n: None,
        }
    }
}

impl SessionOptions {
    /// The sampler configuration the session's flags describe, or `None`
    /// when approximate inference is off.
    pub fn mc_config(&self) -> Option<McConfig> {
        if !self.approx {
            return None;
        }
        let defaults = McConfig::default();
        Some(McConfig {
            seed: self.mc_seed.unwrap_or(defaults.seed),
            threads: self.threads,
            max_samples: self.samples.unwrap_or(defaults.max_samples),
            target_ci: self.ci.unwrap_or(defaults.target_ci),
            ..defaults
        })
    }
}

/// Session-level failures.
#[derive(Debug)]
pub enum SessionError {
    /// The random-worlds engine failed (parse error or out of reach).
    Engine(EngineError),
    /// A finite-`N` sweep failed (non-unary KB or budget exceeded).
    Unary(UnaryError),
    /// A propensity query needs at least one trend point.
    NoTrendPoints,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Engine(e) => write!(f, "{e}"),
            SessionError::Unary(e) => write!(f, "{e}"),
            SessionError::NoTrendPoints => {
                write!(f, "propensity queries need --trend domain sizes")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<EngineError> for SessionError {
    fn from(e: EngineError) -> SessionError {
        SessionError::Engine(e)
    }
}

impl From<UnaryError> for SessionError {
    fn from(e: UnaryError) -> SessionError {
        SessionError::Unary(e)
    }
}

/// A loaded knowledge base ready to answer queries.
pub struct Session {
    kb: KnowledgeBase,
    options: SessionOptions,
    engine: RandomWorlds,
    /// The engine the parallel batch executor uses: identical to
    /// `engine` except the sampler and the exact counting stage run
    /// single-threaded per query (the batch pool provides the
    /// parallelism). `None` when the distinction cannot matter
    /// (`--threads 1`, where both engines would be identical).
    batch_engine: Option<RandomWorlds>,
    /// The KB's canonical fingerprint, computed once at load when the
    /// session caches — re-fingerprinting an unchanging KB per query
    /// would cost more than the theorem answers it guards.
    kb_fingerprint: Option<u64>,
}

impl Session {
    /// A session over a loaded knowledge base.
    pub fn new(kb: KnowledgeBase, options: SessionOptions) -> Session {
        // The session never reconfigures its engine, so the default
        // cascade is pinned once here and shared by every query instead
        // of being rebuilt per call.
        // Both engines share one denominator cache (a `#worlds` count is
        // a pure function of its key), so interactive and batch paths
        // warm each other and the session reports one hit/miss tally.
        let denoms = Arc::new(DenomCache::new());
        let pinned = |mc: Option<rw_core::McConfig>, enum_threads: usize| {
            let mut engine = RandomWorlds::new().with_denom_cache(Arc::clone(&denoms));
            engine.approx = mc;
            engine.enum_threads = enum_threads;
            engine.enum_symmetry = options.symmetry;
            engine.enum_min_n = options.min_n;
            engine.enum_max_n = options.max_n;
            let stages = engine.default_stages();
            engine.with_solvers(stages)
        };
        let mc = options.mc_config();
        // `--threads` drives every intra-query worker pool on the
        // interactive path: the sampler (with `--approx`) and the exact
        // counting stage's branch-and-count workers alike.
        let mut engine = pinned(mc.clone(), options.threads);
        // The parallel batch executor already spreads queries across
        // `threads` workers; nesting a `threads`-wide sampler or
        // counting pool inside each would oversubscribe the cores
        // (threads² with both knobs up). Batches therefore run both
        // single-threaded per query — which changes nothing about the
        // answers (both pools are thread-count deterministic), only the
        // per-query wall time.
        let mut batch_engine = (options.threads != 1)
            .then(|| pinned(mc.map(|c| rw_core::McConfig { threads: 1, ..c }), 1));
        let mut kb_fingerprint = None;
        if options.cache {
            let cache = Arc::new(AnswerCache::new());
            engine = engine.with_cache(Arc::clone(&cache));
            // Worker count is excluded from the engine-config
            // fingerprint, so both engines share one keyspace.
            batch_engine = batch_engine.map(|e| e.with_cache(cache));
            kb_fingerprint = Some(rw_logic::canon::kb_fingerprint(&kb));
        }
        Session {
            kb,
            options,
            engine,
            batch_engine,
            kb_fingerprint,
        }
    }

    /// [`rw_core::RandomWorlds::answer`], with the session's precomputed
    /// KB fingerprint when caching (the session's KB never changes).
    fn engine_answer(&self, query: &str) -> Result<rw_core::Response, EngineError> {
        match self.kb_fingerprint {
            Some(fp) => self.engine.answer_fingerprinted(&self.kb, query, fp),
            None => self.engine.answer(&self.kb, query),
        }
    }

    /// The loaded knowledge base.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Answers one textual query, returning the formatted output lines.
    pub fn answer(&self, query: &str) -> Result<String, SessionError> {
        match self.options.prior {
            None => self.answer_random_worlds(query),
            Some(prior) => self.answer_propensity(query, prior),
        }
    }

    /// Answers one query as a self-contained JSON object plus a success
    /// flag — the per-line unit of `rwq batch`, which streams an answer
    /// as each stdin line arrives. Always uses the random-worlds
    /// pipeline; a bad query yields an `"ok":false` object, never an
    /// `Err`.
    pub fn answer_json_line(&self, query: &str) -> (String, bool) {
        match self.engine_answer(query) {
            Ok(response) => (crate::json::response_line(query, &response), true),
            Err(e) => (crate::json::error_line(query, &e.to_string()), false),
        }
    }

    /// Answers a batch of queries against the loaded KB, one JSON object
    /// per query (in input order), plus the number of failed queries.
    ///
    /// The collected form of [`Self::answer_json_line`] (same KB, same
    /// pinned pipeline, same JSON shape): a bad query produces an
    /// `"ok":false` line without voiding the rest.
    pub fn answer_batch_jsonl(&self, queries: &[String]) -> (Vec<String>, usize) {
        let mut failures = 0usize;
        let lines = queries
            .iter()
            .map(|q| {
                let (line, ok) = self.answer_json_line(q);
                if !ok {
                    failures += 1;
                }
                line
            })
            .collect();
        (lines, failures)
    }

    /// Answers a batch through the engine's parallel executor
    /// ([`rw_core::RandomWorlds::answer_batch_report`]), honoring the
    /// session's `threads` setting and shared cache. Returns one JSON
    /// line per query (input order — the executor's ordering is
    /// deterministic regardless of thread count) plus the aggregate
    /// [`BatchReport`] behind `rwq batch`'s closing summary line.
    pub fn answer_batch_report(&self, queries: &[String]) -> (Vec<String>, BatchReport) {
        let opts = BatchOptions::threaded(self.options.threads);
        let engine = self.batch_engine.as_ref().unwrap_or(&self.engine);
        let run = engine.answer_batch_report(&self.kb, queries, &opts);
        let lines = queries
            .iter()
            .zip(&run.results)
            .map(|(q, r)| crate::json::result_line(q, r))
            .collect();
        (lines, run.report)
    }

    /// Cache hits accumulated by this session's engine cache (0 when the
    /// session runs uncached).
    pub fn cache_hits(&self) -> u64 {
        self.engine.cache().map(|c| c.hits()).unwrap_or(0)
    }

    /// Cache misses accumulated by this session's engine cache (0 when
    /// the session runs uncached).
    pub fn cache_misses(&self) -> u64 {
        self.engine.cache().map(|c| c.misses()).unwrap_or(0)
    }

    /// Lifetime `(hits, misses)` of the session's shared denominator
    /// cache (both engines feed the same one).
    pub fn denom_counts(&self) -> (u64, u64) {
        let denoms = self.engine.denom_cache();
        (denoms.hits(), denoms.misses())
    }

    fn answer_random_worlds(&self, query: &str) -> Result<String, SessionError> {
        let result = self.engine_answer(query)?;
        let mut out = if self.options.explain {
            format!("Pr∞({query} | KB) = {}", result)
        } else {
            format!("Pr∞({query} | KB) = {}", result.belief)
        };
        if !self.options.trend.is_empty() {
            out.push('\n');
            out.push_str(&self.trend_lines(query, None)?);
        }
        Ok(out)
    }

    fn answer_propensity(&self, query: &str, prior: Prior) -> Result<String, SessionError> {
        if self.options.trend.is_empty() {
            return Err(SessionError::NoTrendPoints);
        }
        let mut kb = self.kb.clone();
        let q = kb
            .parse_query(query)
            .map_err(|e| SessionError::Engine(EngineError::Parse(e)))?;
        let tol = Tolerances::uniform(self.options.tau);
        let engine = PropensityEngine::new(prior);
        let estimate = engine.limit_estimate(&kb, &q, &self.options.trend, &tol)?;
        let mut out = match estimate {
            Some(v) => format!("Pr({query} | KB) ≈ {v:.6} under {prior:?} (N-sweep limit)"),
            None => format!("Pr({query} | KB) undefined under {prior:?}: KB has probability 0"),
        };
        if self.options.explain {
            out.push('\n');
            out.push_str(&self.trend_lines(query, Some(prior))?);
        }
        Ok(out)
    }

    /// Finite-`N` trend lines, via the unary counting engine (uniform
    /// prior) or the propensity engine.
    fn trend_lines(&self, query: &str, prior: Option<Prior>) -> Result<String, SessionError> {
        let mut kb = self.kb.clone();
        let q = kb
            .parse_query(query)
            .map_err(|e| SessionError::Engine(EngineError::Parse(e)))?;
        let tol = Tolerances::uniform(self.options.tau);
        let mut lines = Vec::new();
        for &n in &self.options.trend {
            let v = match prior {
                None => rw_unary::degree_of_belief_at(&kb, &q, n, &tol),
                Some(p) => PropensityEngine::new(p).degree_of_belief_at(&kb, &q, n, &tol),
            };
            // Finite-N detail is best-effort decoration: a non-unary KB or
            // a blown profile budget should not void the main answer.
            let line = match v {
                Ok(Some(v)) => format!("  Pr_N(τ={}) at N={n}: {v:.6}", self.options.tau),
                Ok(None) => format!(
                    "  Pr_N(τ={}) at N={n}: no satisfying world",
                    self.options.tau
                ),
                Err(e) => format!("  Pr_N at N={n}: skipped ({e})"),
            };
            lines.push(line);
        }
        Ok(lines.join("\n"))
    }

    /// A human-readable description of the loaded KB (for `rwq check`).
    pub fn describe(&self) -> String {
        let vocab = self.kb.vocab();
        let mut out = String::new();
        out.push_str(&format!(
            "knowledge base: {} statement(s)\n",
            self.kb.conjuncts().len()
        ));
        out.push_str(&format!(
            "vocabulary: {} predicate(s), {} constant(s), {} function(s){}\n",
            vocab.pred_count(),
            vocab.const_count(),
            vocab.func_count(),
            if vocab.is_unary() {
                " [unary: maxent + exact unary engines apply]"
            } else {
                ""
            }
        ));
        for p in vocab.preds() {
            out.push_str(&format!(
                "  pred  {}/{}\n",
                vocab.pred_name(p),
                vocab.pred_arity(p)
            ));
        }
        for c in vocab.consts() {
            out.push_str(&format!("  const {}\n", vocab.const_name(c)));
        }
        out.push_str("statements:\n");
        for f in self.kb.conjuncts() {
            out.push_str(&format!("  {}\n", Pretty::new(vocab, f)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse_kb;

    fn hepatitis() -> KnowledgeBase {
        parse_kb("||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\n").unwrap()
    }

    #[test]
    fn random_worlds_answer_mentions_value_and_provenance() {
        let s = Session::new(hepatitis(), SessionOptions::default());
        let out = s.answer("Hep(Eric)").unwrap();
        assert!(out.contains("0.8"), "{out}");
        assert!(out.contains("direct inference"), "{out}");
    }

    #[test]
    fn explain_false_hides_provenance() {
        let s = Session::new(
            hepatitis(),
            SessionOptions {
                explain: false,
                ..SessionOptions::default()
            },
        );
        let out = s.answer("Hep(Eric)").unwrap();
        assert!(!out.contains("direct inference"), "{out}");
    }

    #[test]
    fn trend_lines_show_finite_n_values() {
        let s = Session::new(
            hepatitis(),
            SessionOptions {
                trend: vec![8, 16],
                ..SessionOptions::default()
            },
        );
        let out = s.answer("Hep(Eric)").unwrap();
        assert!(out.contains("N=8"), "{out}");
        assert!(out.contains("N=16"), "{out}");
    }

    #[test]
    fn oversized_trend_points_degrade_gracefully() {
        // An 8-atom KB at N=64 blows the profile budget; the main answer
        // must survive, with a skip note in the trend lines.
        let kb = parse_kb(
            "||Hep(x) | Jaun(x)||_x ~=_1 0.8\n||Hep(x)||_x <~_2 0.05\n\
             ||Hep(x) | Jaun(x) & Fever(x)||_x ~=_3 1\nJaun(Eric)\n",
        )
        .unwrap();
        let s = Session::new(
            kb,
            SessionOptions {
                trend: vec![64],
                ..SessionOptions::default()
            },
        );
        let out = s.answer("Hep(Eric)").unwrap();
        assert!(out.contains("Pr∞"), "{out}");
        assert!(out.contains("skipped"), "{out}");
    }

    #[test]
    fn non_unary_kb_trend_degrades_gracefully() {
        let kb = parse_kb("||Likes(x, y) | Elephant(x) & Zookeeper(y)||_{x,y} ~=_1 1\nElephant(Clyde)\nZookeeper(Eric)\n").unwrap();
        let s = Session::new(
            kb,
            SessionOptions {
                trend: vec![8],
                ..SessionOptions::default()
            },
        );
        let out = s.answer("Likes(Clyde, Eric)").unwrap();
        assert!(out.contains("Pr∞"), "{out}");
        assert!(out.contains("skipped"), "{out}");
    }

    #[test]
    fn propensity_answers_require_trend_points() {
        let s = Session::new(
            hepatitis(),
            SessionOptions {
                prior: Some(Prior::PerPredicate),
                ..SessionOptions::default()
            },
        );
        assert!(matches!(
            s.answer("Hep(Eric)"),
            Err(SessionError::NoTrendPoints)
        ));
    }

    #[test]
    fn propensity_answer_reports_sweep_limit() {
        let kb = parse_kb("P(C1); P(C2); !P(C3)\n").unwrap();
        let s = Session::new(
            kb,
            SessionOptions {
                prior: Some(Prior::CarnapStar),
                trend: vec![16, 32, 64],
                explain: false,
                ..SessionOptions::default()
            },
        );
        let out = s.answer("P(Fresh)").unwrap();
        assert!(out.contains("CarnapStar"), "{out}");
        // Laplace: (2+1)/(3+2) = 0.6.
        let v: f64 = out
            .split("≈ ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((v - 0.6).abs() < 0.03, "{out}");
    }

    #[test]
    fn describe_lists_vocabulary_and_statements() {
        let s = Session::new(hepatitis(), SessionOptions::default());
        let d = s.describe();
        assert!(d.contains("2 statement(s)"), "{d}");
        assert!(d.contains("pred  Hep/1"), "{d}");
        assert!(d.contains("const Eric"), "{d}");
        assert!(d.contains("[unary:"), "{d}");
    }

    #[test]
    fn parse_errors_in_queries_surface() {
        let s = Session::new(hepatitis(), SessionOptions::default());
        assert!(s.answer("Hep(").is_err());
    }

    #[test]
    fn batch_jsonl_answers_each_query_once() {
        let s = Session::new(hepatitis(), SessionOptions::default());
        let queries = vec!["Hep(Eric)".to_string(), "!Hep(Eric)".to_string()];
        let (lines, failures) = s.answer_batch_jsonl(&queries);
        assert_eq!(failures, 0);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""query":"Hep(Eric)""#), "{}", lines[0]);
        assert!(lines[0].contains(r#""ok":true"#), "{}", lines[0]);
        assert!(lines[0].contains(r#""value":0.8"#), "{}", lines[0]);
        assert!(
            lines[0].contains(r#""trace":[{"stage":"theorems","outcome":"answered""#),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains("0.2"), "{}", lines[1]);
    }

    #[test]
    fn approx_sessions_answer_trap_queries_by_sampling() {
        // A conjunction over individuals sharing statistics: no theorem
        // pattern, so an exact session would pay a maxent sweep. The
        // approx session answers from the sampler with a CI.
        let kb = parse_kb("||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\nJaun(Tom)\n").unwrap();
        let s = Session::new(
            kb,
            SessionOptions {
                approx: true,
                mc_seed: Some(42),
                ..SessionOptions::default()
            },
        );
        let (line, ok) = s.answer_json_line("Hep(Eric) & Hep(Tom)");
        assert!(ok, "{line}");
        assert!(line.contains(r#""type":"approximate""#), "{line}");
        assert!(line.contains(r#""ci_half_width":"#), "{line}");
        assert!(line.contains(r#""mc":{"drawn":"#), "{line}");
        assert!(
            line.contains(r#""stage":"montecarlo","outcome":"answered""#),
            "{line}"
        );
        // Human-readable output carries the CI and the sampler counts.
        let text = s.answer("Hep(Eric) & Hep(Tom)").unwrap();
        assert!(text.contains("±"), "{text}");
        assert!(text.contains("Monte-Carlo"), "{text}");
    }

    #[test]
    fn approx_answers_are_identical_across_thread_counts() {
        let kb_src = "||Hep(x) | Jaun(x)||_x ~=_1 0.8\nJaun(Eric)\nJaun(Tom)\n";
        let mask = crate::json::mask_times;
        let line_at = |threads: usize| {
            let s = Session::new(
                parse_kb(kb_src).unwrap(),
                SessionOptions {
                    approx: true,
                    mc_seed: Some(7),
                    threads,
                    ..SessionOptions::default()
                },
            );
            mask(&s.answer_json_line("Hep(Eric) & Hep(Tom)").0)
        };
        let reference = line_at(1);
        assert_eq!(reference, line_at(2));
        assert_eq!(reference, line_at(4));
    }

    #[test]
    fn symmetry_sessions_scan_deeper_domains() {
        // A proportion-plus-binary KB outside every closed form: exact
        // enumeration answers it, and with --symmetry the scan runs to
        // the requested window with orbit counters in the provenance.
        let kb = parse_kb("||P(x)||_x ~=_1 1\nLikes(A, B)\n").unwrap();
        let s = Session::new(
            kb,
            SessionOptions {
                symmetry: true,
                max_n: Some(24),
                ..SessionOptions::default()
            },
        );
        let (line, ok) = s.answer_json_line("Likes(B, A)");
        assert!(ok, "{line}");
        assert!(line.contains(r#""orbits":"#), "{line}");
        assert!(line.contains(r#""max_n":24"#), "{line}");
    }

    #[test]
    fn batch_jsonl_isolates_bad_lines() {
        let s = Session::new(hepatitis(), SessionOptions::default());
        let queries = vec!["Hep(".to_string(), "Hep(Eric)".to_string()];
        let (lines, failures) = s.answer_batch_jsonl(&queries);
        assert_eq!(failures, 1);
        assert!(lines[0].contains(r#""ok":false"#), "{}", lines[0]);
        assert!(lines[0].contains(r#""error""#), "{}", lines[0]);
        assert!(lines[1].contains(r#""ok":true"#), "{}", lines[1]);
    }
}
