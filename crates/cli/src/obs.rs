//! `rwq obs`: span-log aggregation into a flamegraph-style table.
//!
//! The input is the JSONL written by `rwq serve --slow-log` (lines with
//! a `"spans"` array; access-log lines without one are skipped): each
//! trace is a parent-linked span tree. The output table aggregates
//! spans by name across every trace, with *total* time (the span's own
//! wall clock) and *self* time (total minus the direct children's
//! total). The server backdates the `request` span to admission time,
//! so in a well-formed trace children always fit inside their parent;
//! a span whose direct children exceed it is a malformed (or
//! pre-backdating) trace, counted and flagged in the header instead of
//! silently clamped.

use rw_server::proto::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

#[derive(Default)]
struct Agg {
    count: u64,
    total_us: u64,
    self_us: u64,
    cpu_us: u64,
}

/// One span record pulled out of a trace line's `"spans"` array.
struct Rec {
    id: u64,
    parent: Option<u64>,
    name: String,
    wall_us: u64,
    cpu_us: u64,
}

fn record(span: &Value) -> Option<Rec> {
    Some(Rec {
        id: span.get("id")?.as_u64()?,
        // `"parent":null` and a missing parent both mean a root span.
        parent: span.get("parent").and_then(Value::as_u64),
        name: span.get("name")?.as_str()?.to_string(),
        wall_us: span.get("wall_us")?.as_u64()?,
        cpu_us: span.get("cpu_us").and_then(Value::as_u64).unwrap_or(0),
    })
}

/// Aggregates a span-trace JSONL file into the `rwq obs` table. Lines
/// without a `"spans"` array (e.g. access-log lines) are counted and
/// skipped; a line that is not JSON at all is an error.
pub fn aggregate(content: &str) -> Result<String, String> {
    let mut traces = 0u64;
    let mut skipped = 0u64;
    let mut malformed = 0u64;
    let mut by_name: BTreeMap<String, Agg> = BTreeMap::new();
    for (idx, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = Value::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let Some(Value::Arr(spans)) = value.get("spans") else {
            skipped += 1;
            continue;
        };
        traces += 1;
        let records: Vec<Rec> = spans.iter().filter_map(record).collect();
        // Direct-children wall sums, for self = total − Σ(children).
        let mut child_wall: HashMap<u64, u64> = HashMap::new();
        for r in &records {
            if let Some(parent) = r.parent {
                *child_wall.entry(parent).or_default() += r.wall_us;
            }
        }
        for r in records {
            let children = child_wall.get(&r.id).copied().unwrap_or(0);
            let agg = by_name.entry(r.name).or_default();
            agg.count += 1;
            agg.total_us += r.wall_us;
            match r.wall_us.checked_sub(children) {
                Some(self_us) => agg.self_us += self_us,
                // Children exceeding their parent cannot come from a
                // correctly nested recording — flag the span rather
                // than fold a silent zero into the table.
                None => malformed += 1,
            }
            agg.cpu_us += r.cpu_us;
        }
    }
    if traces == 0 {
        return Err(format!(
            "no span traces found ({skipped} line(s) without a \"spans\" array) — \
             point `rwq obs` at a `--slow-log` file"
        ));
    }
    let mut rows: Vec<(String, Agg)> = by_name.into_iter().collect();
    // Hottest self time first; the BTreeMap order breaks ties by name.
    rows.sort_by_key(|(_, agg)| std::cmp::Reverse(agg.self_us));
    let spans: u64 = rows.iter().map(|(_, a)| a.count).sum();
    let mut out = format!("traces: {traces}, spans: {spans}");
    if skipped > 0 {
        let _ = write!(out, " ({skipped} non-trace line(s) skipped)");
    }
    if malformed > 0 {
        let _ = write!(
            out,
            " (warning: {malformed} span(s) whose children exceed them — malformed trace?)"
        );
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>14} {:>14} {:>14}",
        "span", "count", "total_us", "self_us", "cpu_us"
    );
    for (name, agg) in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>14} {:>14} {:>14}",
            name, agg.count, agg.total_us, agg.self_us, agg.cpu_us
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = r#"{"trace_id":7,"kb":"default","query":"P(C)","elapsed_us":900,"spans":[{"id":1,"parent":null,"name":"request","wall_us":900,"cpu_us":0},{"id":2,"parent":1,"name":"queue-wait","wall_us":100,"cpu_us":0},{"id":3,"parent":1,"name":"answer","wall_us":700,"cpu_us":650},{"id":4,"parent":3,"name":"stage:theorems","wall_us":600,"cpu_us":0}]}"#;

    #[test]
    fn self_time_subtracts_direct_children() {
        let table = aggregate(TRACE).unwrap();
        // request: 900 − (100 + 700) = 100 self.
        let request = table.lines().find(|l| l.starts_with("request")).unwrap();
        assert!(request.split_whitespace().any(|w| w == "100"), "{table}");
        // answer: 700 − 600 = 100 self; stage keeps its full 600.
        let answer = table.lines().find(|l| l.starts_with("answer")).unwrap();
        assert!(answer.split_whitespace().any(|w| w == "100"), "{table}");
        assert!(table.contains("stage:theorems"), "{table}");
        assert!(table.starts_with("traces: 1, spans: 4"), "{table}");
    }

    #[test]
    fn oversized_children_are_flagged_as_malformed_not_clamped() {
        // The server backdates the request span to admission time, so a
        // queue-wait larger than its parent cannot come from a healthy
        // recording; the aggregate must warn instead of silently
        // clamping self time at zero.
        let line = r#"{"spans":[{"id":1,"parent":null,"name":"request","wall_us":50,"cpu_us":0},{"id":2,"parent":1,"name":"queue-wait","wall_us":400,"cpu_us":0}]}"#;
        let table = aggregate(line).unwrap();
        assert!(
            table.contains("warning: 1 span(s) whose children exceed them"),
            "{table}"
        );
        // The flagged span contributes no self time (but keeps its
        // total); the intact child is unaffected.
        let request = table.lines().find(|l| l.starts_with("request")).unwrap();
        let cols: Vec<&str> = request.split_whitespace().collect();
        assert_eq!(cols[2], "50", "{table}");
        assert_eq!(cols[3], "0", "{table}");
        // Well-formed traces never trip the warning.
        assert!(!aggregate(TRACE).unwrap().contains("warning"), "clean");
    }

    #[test]
    fn aggregates_across_traces_and_skips_access_lines() {
        let access = r#"{"ts_us":1,"trace_id":9,"kb":"default","query":"P(C)","ok":true,"cache_hit":true,"queue_wait_us":3,"elapsed_us":12}"#;
        let content = format!("{TRACE}\n{access}\n{TRACE}\n");
        let table = aggregate(&content).unwrap();
        assert!(table.starts_with("traces: 2, spans: 8"), "{table}");
        assert!(table.contains("(1 non-trace line(s) skipped)"), "{table}");
        let request = table.lines().find(|l| l.starts_with("request")).unwrap();
        let cols: Vec<&str> = request.split_whitespace().collect();
        assert_eq!(cols[1], "2", "{table}"); // count
        assert_eq!(cols[2], "1800", "{table}"); // total
    }

    #[test]
    fn garbage_and_empty_inputs_are_structured_errors() {
        assert!(aggregate("not json\n").unwrap_err().contains("line 1"));
        assert!(aggregate("").unwrap_err().contains("no span traces"));
        let access_only = r#"{"ok":true,"elapsed_us":1}"#;
        assert!(aggregate(access_only).unwrap_err().contains("1 line(s)"));
    }
}
