//! Command-line parsing for `rwq` — hand-rolled so the workspace keeps its
//! small, offline dependency set.

use crate::session::SessionOptions;
use rw_propensity::Prior;
use rw_util::Rat;
use std::fmt;
use std::path::PathBuf;

/// A parsed `rwq` invocation.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// `rwq query <file> <query>... [options]`
    Query {
        /// The `.rwkb` knowledge-base file.
        file: PathBuf,
        /// One or more `L≈` queries.
        queries: Vec<String>,
        /// Session options parsed from flags.
        options: SessionOptions,
    },
    /// `rwq check <file>`: parse and describe the KB.
    Check {
        /// The `.rwkb` knowledge-base file.
        file: PathBuf,
    },
    /// `rwq repl <file> [options]`: answer queries from stdin.
    Repl {
        /// The `.rwkb` knowledge-base file.
        file: PathBuf,
        /// Session options parsed from flags.
        options: SessionOptions,
    },
    /// `rwq batch <file> [--threads N] [--cache] [--approx ...]`: queries
    /// from stdin (one per line), one JSON result object per line on
    /// stdout plus a closing summary line, against a single loaded KB.
    Batch {
        /// The `.rwkb` knowledge-base file.
        file: PathBuf,
        /// Session options (`--threads` / `--cache` and the `--approx`
        /// sampler knobs apply to batch).
        options: SessionOptions,
    },
    /// `rwq serve [file.rwkb] [--addr A] [--threads N] [--cache-shards S]
    /// [--max-queue Q] [--max-conns C] [--idle-timeout-ms T]`: run the
    /// persistent rw-server process. An optional positional KB file is
    /// preloaded under the name `default`. The first stdout line is
    /// `{"serving":{"addr":...,...}}` with the bound address.
    Serve {
        /// Optional KB preloaded as `default`.
        file: Option<PathBuf>,
        /// Listener/pool/cache/queue configuration.
        config: rw_server::ServerConfig,
        /// Enumeration-scan settings applied to the preloaded KB
        /// (`--symmetry` / `--min-n` / `--max-n`); KBs loaded later over
        /// the wire carry their own in the `load` request.
        scan: rw_server::proto::ScanParams,
    },
    /// `rwq shard --backend HOST:PORT ... [--addr A]`: run the
    /// consistent-hash front that routes queries across a fleet of
    /// `rwq serve` backends, with health probes and structured failover.
    Shard {
        /// Ring/listener/probe/retry configuration.
        config: rw_server::ShardConfig,
    },
    /// `rwq client --addr A [--retry N]`: forward JSONL requests from
    /// stdin to a running server, one response line per request on
    /// stdout.
    Client {
        /// The server address (`host:port`).
        addr: String,
        /// Reconnect attempts after a transient connection failure
        /// (refused/reset); `0` = fail immediately.
        retry: u32,
        /// First reconnect backoff in milliseconds, doubling per
        /// attempt.
        retry_backoff_ms: u64,
    },
    /// `rwq obs <trace.jsonl>`: aggregate a slow-query (or access) log
    /// into a flamegraph-style self/total table per span name.
    Obs {
        /// The JSONL span-trace file written by `rwq serve --slow-log`.
        path: PathBuf,
    },
    /// `rwq lab run <workload.jsonl> [--variants ...] [--threads 1,4]
    /// [--cache both] [--seed N] [--rows PATH] [--report PATH]`: run the
    /// workload through the experiment runner's variant matrix, emit one
    /// JSONL row per trial plus an analysis table, write the
    /// machine-readable gate report, and exit nonzero on any gate
    /// violation.
    Lab {
        /// The `workloads/*.jsonl` task-set file.
        workload: PathBuf,
        /// The variant matrix (engines × threads × cache) and run seed.
        config: rw_lab::RunConfig,
        /// Also write the trial rows to this file (they always stream to
        /// stdout).
        rows: Option<PathBuf>,
        /// Where to write `LAB_REPORT.json`.
        report: PathBuf,
    },
    /// `rwq help` (or no arguments).
    Help,
}

/// Argument errors, with the offending token.
#[derive(Debug, PartialEq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// The `rwq help` text.
pub const USAGE: &str = "\
rwq — random-worlds degrees of belief from statistical knowledge bases

USAGE:
  rwq query <file.rwkb> <query>... [options]
  rwq check <file.rwkb>
  rwq repl  <file.rwkb> [options]     (queries from stdin, one per line)
  rwq batch <file.rwkb> [--threads N] [--cache] [--approx ...]
                                      (queries from stdin, JSONL results out,
                                       closing {\"summary\":...} line)
  rwq serve [file.rwkb] [--addr A] [--threads N] [--cache-shards S] [--max-queue Q]
            [--max-conns C] [--idle-timeout-ms T]
            [--slow-log PATH [--slow-ms T]] [--access-log PATH]
            [--snapshot-dir PATH [--snapshot-interval-ms T]]
                                      (persistent server; optional file is
                                       preloaded as the KB named `default`;
                                       SIGTERM/SIGINT drain gracefully)
  rwq shard --backend HOST:PORT [--backend HOST:PORT ...] [--addr A]
            [--probe-interval-ms T] [--retry N] [--retry-backoff-ms T]
            [--vnodes V] [--threads N] [--max-queue Q] [--max-conns C]
                                      (consistent-hash front: routes queries
                                       across serve backends with health
                                       probes and structured failover)
  rwq client --addr A [--retry N [--retry-backoff-ms T]]
                                      (JSONL requests from stdin to a server)
  rwq obs <trace.jsonl>               (aggregate a slow-query span log into a
                                       flamegraph-style self/total table)
  rwq lab run <workload.jsonl> [--variants E1,E2,...] [--threads N1,N2,...]
              [--cache on|off|both] [--seed S] [--rows PATH] [--report PATH]
                                      (experiment runner: one JSONL row per
                                       trial, analysis table, LAB_REPORT.json;
                                       exits nonzero on gate violations)
  rwq help

OPTIONS:
  --tau P/Q            tolerance for finite-N output (default 1/10)
  --trend N1,N2,...    also print exact Pr_N at these domain sizes
  --prior NAME         use a propensity prior instead of random worlds:
                       per-predicate | carnap | lambda=X
  --quiet              suppress provenance / trend detail
  --threads N          worker threads for batch and serve (0 = one per
                       core; batch default 1 = stream answers
                       sequentially); with --approx also the sampler's
                       worker count (any verb)
  --addr HOST:PORT     serve: bind address (default 127.0.0.1:7878;
                       port 0 = pick a free port) / client: the server
  --cache-shards N     serve: shards of the shared answer cache (default 16)
  --max-queue N        serve: admission-queue capacity; queries beyond it
                       are rejected with code \"overloaded\" (default 1024)
  --max-conns N        serve: open-connection ceiling; connections beyond
                       it are refused with code \"overloaded\"
                       (default 10000)
  --idle-timeout-ms T  serve: evict connections idle for T milliseconds
                       (default 0 = never evict)
  --slow-log PATH      serve: append a structured JSONL line (query, KB
                       fingerprint, full span tree) for every request at
                       or over the --slow-ms threshold
  --slow-ms T          serve: slow-query threshold in milliseconds
                       (default 100; 0 logs every request)
  --access-log PATH    serve: append one JSONL line per answered request
  --snapshot-dir PATH  serve: persist the KB registry and answer caches
                       here (periodically and on drain) and reload them
                       warm on startup; a corrupted or version-skewed
                       snapshot is rejected with a structured error and
                       the server starts cold
  --snapshot-interval-ms T
                       serve: milliseconds between cache checkpoints
                       (default 5000; requires --snapshot-dir)
  --backend HOST:PORT  shard: one backend server (repeat per backend;
                       at least one required)
  --probe-interval-ms T
                       shard: health-probe cadence per backend in
                       milliseconds (default 250)
  --retry N            client / shard: reconnect attempts against one
                       peer after a transient connection failure
                       (client default 0 = fail fast; shard default 2,
                       then fail over to the ring successor)
  --retry-backoff-ms T first retry backoff in milliseconds, doubling
                       per attempt (default 50; on client requires
                       --retry)
  --vnodes V           shard: virtual nodes per backend on the hash
                       ring (default 64)
  --cache              share a canonical-query answer cache across the
                       session's queries (batch, query, repl)
  --symmetry           count symmetry-reduced orbit representatives in the
                       exact enumeration stage instead of raw worlds — the
                       finite-N scan reaches far deeper domains (query,
                       repl, batch; on serve it applies to the preloaded KB)
  --min-n N            first domain size of the enumeration scan (2..=64)
  --max-n N            last domain size of the enumeration scan (2..=64;
                       defaults: 8 plain, 40 with --symmetry)
  --approx             enable Monte-Carlo approximate inference: queries
                       missing every theorem pattern are answered by
                       sampling, with a 95% confidence interval
                       (batch, query, repl)
  --samples N          approx: total draw cap across the N-sweep
  --mc-seed S          approx: sampler seed (same seed => identical
                       answers at any --threads count)
  --ci X               approx: stop sampling once the CI half-width
                       reaches X (0 < X < 0.5)

LAB OPTIONS (rwq lab run):
  --variants E1,E2,...  engines to run: compiled | oracle | symmetry |
                        montecarlo | maxent (default compiled,oracle,montecarlo)
  --threads N1,N2,...   thread counts to run each engine under (default 1)
  --cache on|off|both   cache axis of the variant matrix (default both;
                        cached trials replay the query and verify the hit)
  --seed S              Monte-Carlo root seed (default 42)
  --rows PATH           also write the trial rows to PATH
  --report PATH         gate-report path (default LAB_REPORT.json)
";

fn parse_tau(s: &str) -> Result<Rat, ArgError> {
    let (p, q) = s
        .split_once('/')
        .ok_or_else(|| ArgError(format!("--tau expects P/Q, got `{s}`")))?;
    let p: i128 = p
        .trim()
        .parse()
        .map_err(|_| ArgError(format!("bad numerator `{p}`")))?;
    let q: i128 = q
        .trim()
        .parse()
        .map_err(|_| ArgError(format!("bad denominator `{q}`")))?;
    if p <= 0 || q <= 0 {
        return Err(ArgError(format!("--tau must be positive, got {s}")));
    }
    Ok(Rat::new(p, q))
}

fn parse_prior(s: &str) -> Result<Prior, ArgError> {
    match s {
        "per-predicate" => Ok(Prior::PerPredicate),
        "carnap" => Ok(Prior::CarnapStar),
        _ => {
            if let Some(rest) = s.strip_prefix("lambda=") {
                let v: f64 = rest
                    .parse()
                    .map_err(|_| ArgError(format!("bad λ value `{rest}`")))?;
                if v <= 0.0 {
                    return Err(ArgError("λ must be positive".to_string()));
                }
                Ok(Prior::Lambda(v))
            } else {
                Err(ArgError(format!(
                    "unknown prior `{s}` (expected per-predicate | carnap | lambda=X)"
                )))
            }
        }
    }
}

/// Parses a `--min-n` / `--max-n` domain size. The exact enumeration
/// stage scans `N` in `2..=MAX_SCAN_N`; the bounds mirror the server's
/// `load` validation so the two surfaces reject the same windows.
fn parse_scan_n(v: &str, flag: &str) -> Result<usize, ArgError> {
    let max = rw_core::solvers::MAX_SCAN_N;
    match v.parse::<usize>() {
        Ok(n) if (2..=max).contains(&n) => Ok(n),
        _ => Err(ArgError(format!(
            "{flag} expects a domain size in 2..={max}, got `{v}`"
        ))),
    }
}

/// An inverted scan window can never answer anything; reject it up front.
fn check_scan_window(min_n: Option<usize>, max_n: Option<usize>) -> Result<(), ArgError> {
    if let (Some(lo), Some(hi)) = (min_n, max_n) {
        if lo > hi {
            return Err(ArgError(format!("--min-n {lo} exceeds --max-n {hi}")));
        }
    }
    Ok(())
}

fn parse_trend(s: &str) -> Result<Vec<usize>, ArgError> {
    s.split(',')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .map_err(|_| ArgError(format!("bad --trend size `{t}`")))
        })
        .collect()
}

fn parse_options(args: &[String]) -> Result<(SessionOptions, Vec<String>), ArgError> {
    let mut options = SessionOptions::default();
    let mut positional = Vec::new();
    let mut i = 0usize;
    let value = |i: &mut usize, flag: &str| -> Result<String, ArgError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| ArgError(format!("{flag} expects a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--tau" => options.tau = parse_tau(&value(&mut i, "--tau")?)?,
            "--prior" => options.prior = Some(parse_prior(&value(&mut i, "--prior")?)?),
            "--trend" => options.trend = parse_trend(&value(&mut i, "--trend")?)?,
            "--quiet" => options.explain = false,
            "--threads" => {
                options.threads = parse_threads(&value(&mut i, "--threads")?)?;
            }
            "--cache" => options.cache = true,
            "--symmetry" => options.symmetry = true,
            "--min-n" => {
                options.min_n = Some(parse_scan_n(&value(&mut i, "--min-n")?, "--min-n")?);
            }
            "--max-n" => {
                options.max_n = Some(parse_scan_n(&value(&mut i, "--max-n")?, "--max-n")?);
            }
            "--approx" => options.approx = true,
            "--samples" => {
                let v = value(&mut i, "--samples")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| ArgError(format!("bad --samples count `{v}`")))?;
                if n == 0 {
                    return Err(ArgError("--samples must be positive".to_string()));
                }
                options.samples = Some(n);
            }
            "--mc-seed" => {
                let v = value(&mut i, "--mc-seed")?;
                options.mc_seed = Some(
                    v.parse()
                        .map_err(|_| ArgError(format!("bad --mc-seed `{v}`")))?,
                );
            }
            "--ci" => {
                let v = value(&mut i, "--ci")?;
                let ci: f64 = v
                    .parse()
                    .map_err(|_| ArgError(format!("bad --ci value `{v}`")))?;
                if !(ci > 0.0 && ci < 0.5) {
                    return Err(ArgError(format!(
                        "--ci must be a half-width in (0, 0.5), got {v}"
                    )));
                }
                options.ci = Some(ci);
            }
            flag if flag.starts_with("--") => {
                return Err(ArgError(format!("unknown option `{flag}`")));
            }
            _ => positional.push(args[i].clone()),
        }
        i += 1;
    }
    // Propensity sweeps need N points; give a sensible default ladder.
    if options.prior.is_some() && options.trend.is_empty() {
        options.trend = vec![16, 32, 64];
    }
    // The sampler knobs only mean something with the sampler on.
    if !options.approx {
        for (flag, set) in [
            ("--samples", options.samples.is_some()),
            ("--mc-seed", options.mc_seed.is_some()),
            ("--ci", options.ci.is_some()),
        ] {
            if set {
                return Err(ArgError(format!("{flag} requires --approx")));
            }
        }
    }
    if options.approx && options.prior.is_some() {
        return Err(ArgError(
            "--approx samples the random-worlds distribution; it cannot be combined with --prior"
                .to_string(),
        ));
    }
    check_scan_window(options.min_n, options.max_n)?;
    Ok((options, positional))
}

/// The one `--threads` rejection message, shared verbatim by every
/// subcommand that cannot use the flag — `query` and `repl` used to
/// word it differently, which made scripted error handling match one
/// verb and miss the other.
pub const THREADS_ERR: &str = "--threads applies to `batch`, `serve`, and `--approx` sessions \
     (0 = one worker per core); this subcommand answers one query at a time";

/// Only `batch` and `serve` shard work across threads; other verbs
/// answer one query at a time, so a `--threads` there is a
/// misunderstanding worth flagging — unless `--approx` is on, where the
/// count drives the sampler's worker pool instead.
fn reject_threads(options: &SessionOptions) -> Result<(), ArgError> {
    if options.threads != SessionOptions::default().threads && !options.approx {
        return Err(ArgError(THREADS_ERR.to_string()));
    }
    Ok(())
}

/// Parses a `--threads` value: any count, with `0` meaning one worker
/// per core — the same contract for `batch` and `serve`.
fn parse_threads(v: &str) -> Result<usize, ArgError> {
    v.parse()
        .map_err(|_| ArgError(format!("bad --threads count `{v}`")))
}

/// The CLI's default serving address (`rwq serve` without `--addr`).
pub const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7878";

/// Parses `rwq serve` arguments (its flag set is the server's, disjoint
/// from the per-query session options).
fn parse_serve(args: &[String]) -> Result<Command, ArgError> {
    let mut config = rw_server::ServerConfig {
        addr: DEFAULT_SERVE_ADDR.to_string(),
        ..rw_server::ServerConfig::default()
    };
    let mut scan = rw_server::proto::ScanParams::default();
    let mut slow_ms = None;
    let mut snapshot_interval_ms = None;
    let mut positional = Vec::new();
    let mut i = 0usize;
    let value = |i: &mut usize, flag: &str| -> Result<String, ArgError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| ArgError(format!("{flag} expects a value")))
    };
    let positive = |v: String, flag: &str| -> Result<usize, ArgError> {
        match v.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(ArgError(format!(
                "{flag} expects a positive count, got `{v}`"
            ))),
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => config.addr = value(&mut i, "--addr")?,
            "--threads" => config.threads = parse_threads(&value(&mut i, "--threads")?)?,
            "--cache-shards" => {
                config.cache_shards = positive(value(&mut i, "--cache-shards")?, "--cache-shards")?
            }
            "--max-queue" => {
                config.max_queue = positive(value(&mut i, "--max-queue")?, "--max-queue")?
            }
            "--max-conns" => {
                config.max_conns = positive(value(&mut i, "--max-conns")?, "--max-conns")?
            }
            "--idle-timeout-ms" => {
                let v = value(&mut i, "--idle-timeout-ms")?;
                config.idle_timeout_ms = v.parse::<u64>().map_err(|_| {
                    ArgError(format!("bad --idle-timeout-ms value `{v}` (0 disables)"))
                })?;
            }
            "--slow-log" => config.slow_log = Some(PathBuf::from(value(&mut i, "--slow-log")?)),
            "--slow-ms" => {
                let v = value(&mut i, "--slow-ms")?;
                slow_ms = Some(
                    v.parse::<u64>()
                        .map_err(|_| ArgError(format!("bad --slow-ms threshold `{v}`")))?,
                );
            }
            "--access-log" => {
                config.access_log = Some(PathBuf::from(value(&mut i, "--access-log")?))
            }
            "--snapshot-dir" => {
                config.snapshot_dir = Some(PathBuf::from(value(&mut i, "--snapshot-dir")?))
            }
            "--snapshot-interval-ms" => {
                let v = value(&mut i, "--snapshot-interval-ms")?;
                snapshot_interval_ms = Some(match v.parse::<u64>() {
                    Ok(ms) if ms > 0 => ms,
                    _ => {
                        return Err(ArgError(format!(
                            "bad --snapshot-interval-ms value `{v}` (positive milliseconds)"
                        )))
                    }
                });
            }
            "--symmetry" => scan.symmetry = true,
            "--min-n" => scan.min_n = Some(parse_scan_n(&value(&mut i, "--min-n")?, "--min-n")?),
            "--max-n" => scan.max_n = Some(parse_scan_n(&value(&mut i, "--max-n")?, "--max-n")?),
            flag if flag.starts_with("--") => {
                return Err(ArgError(format!("unknown serve option `{flag}`")));
            }
            _ => positional.push(args[i].clone()),
        }
        i += 1;
    }
    check_scan_window(scan.min_n, scan.max_n)?;
    match slow_ms {
        Some(ms) if config.slow_log.is_some() => config.slow_ms = ms,
        Some(_) => {
            return Err(ArgError(
                "--slow-ms sets the --slow-log threshold; pass --slow-log PATH too".to_string(),
            ))
        }
        None => {}
    }
    match snapshot_interval_ms {
        Some(ms) if config.snapshot_dir.is_some() => config.snapshot_interval_ms = ms,
        Some(_) => {
            return Err(ArgError(
                "--snapshot-interval-ms sets the --snapshot-dir checkpoint cadence; \
                 pass --snapshot-dir PATH too"
                    .to_string(),
            ))
        }
        None => {}
    }
    if positional.len() > 1 {
        return Err(ArgError(
            "serve takes at most one KB file (preloaded as `default`)".to_string(),
        ));
    }
    if positional.is_empty() && scan != rw_server::proto::ScanParams::default() {
        return Err(ArgError(
            "--symmetry/--min-n/--max-n on serve configure the preloaded KB; \
             pass a KB file or send them in `load` requests"
                .to_string(),
        ));
    }
    Ok(Command::Serve {
        file: positional.pop().map(PathBuf::from),
        config,
        scan,
    })
}

/// The client's default first reconnect backoff (`--retry-backoff-ms`).
pub const DEFAULT_RETRY_BACKOFF_MS: u64 = 50;

/// Parses `rwq client` arguments.
fn parse_client(args: &[String]) -> Result<Command, ArgError> {
    let mut addr = None;
    let mut retry = 0u32;
    let mut backoff = None;
    let mut i = 0usize;
    let value = |i: &mut usize, flag: &str| -> Result<String, ArgError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| ArgError(format!("{flag} expects a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(value(&mut i, "--addr")?),
            "--retry" => {
                let v = value(&mut i, "--retry")?;
                retry = v
                    .parse()
                    .map_err(|_| ArgError(format!("bad --retry count `{v}`")))?;
            }
            "--retry-backoff-ms" => {
                let v = value(&mut i, "--retry-backoff-ms")?;
                backoff = Some(match v.parse::<u64>() {
                    Ok(ms) if ms > 0 => ms,
                    _ => {
                        return Err(ArgError(format!(
                            "bad --retry-backoff-ms value `{v}` (positive milliseconds)"
                        )))
                    }
                });
            }
            other => {
                return Err(ArgError(format!(
                    "unknown client argument `{other}` (client takes --addr, --retry \
                     and --retry-backoff-ms)"
                )));
            }
        }
        i += 1;
    }
    if backoff.is_some() && retry == 0 {
        return Err(ArgError(
            "--retry-backoff-ms paces the --retry reconnects; pass --retry N too".to_string(),
        ));
    }
    match addr {
        Some(addr) => Ok(Command::Client {
            addr,
            retry,
            retry_backoff_ms: backoff.unwrap_or(DEFAULT_RETRY_BACKOFF_MS),
        }),
        None => Err(ArgError(
            "client requires --addr HOST:PORT (a running `rwq serve`)".to_string(),
        )),
    }
}

/// The CLI's default shard-front address (`rwq shard` without `--addr`).
pub const DEFAULT_SHARD_ADDR: &str = "127.0.0.1:7879";

/// Parses `rwq shard` arguments into a [`rw_server::ShardConfig`].
fn parse_shard(args: &[String]) -> Result<Command, ArgError> {
    let mut config = rw_server::ShardConfig {
        addr: DEFAULT_SHARD_ADDR.to_string(),
        ..rw_server::ShardConfig::default()
    };
    let mut i = 0usize;
    let value = |i: &mut usize, flag: &str| -> Result<String, ArgError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| ArgError(format!("{flag} expects a value")))
    };
    let positive = |v: String, flag: &str| -> Result<usize, ArgError> {
        match v.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(ArgError(format!(
                "{flag} expects a positive count, got `{v}`"
            ))),
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => config.addr = value(&mut i, "--addr")?,
            "--backend" => config.backends.push(value(&mut i, "--backend")?),
            "--threads" => config.threads = parse_threads(&value(&mut i, "--threads")?)?,
            "--max-queue" => {
                config.max_queue = positive(value(&mut i, "--max-queue")?, "--max-queue")?
            }
            "--max-conns" => {
                config.max_conns = positive(value(&mut i, "--max-conns")?, "--max-conns")?
            }
            "--probe-interval-ms" => {
                config.probe_interval_ms =
                    positive(value(&mut i, "--probe-interval-ms")?, "--probe-interval-ms")? as u64;
            }
            "--retry" => {
                let v = value(&mut i, "--retry")?;
                config.retry = v
                    .parse()
                    .map_err(|_| ArgError(format!("bad --retry count `{v}`")))?;
            }
            "--retry-backoff-ms" => {
                config.retry_backoff_ms =
                    positive(value(&mut i, "--retry-backoff-ms")?, "--retry-backoff-ms")? as u64;
            }
            "--vnodes" => config.vnodes = positive(value(&mut i, "--vnodes")?, "--vnodes")?,
            flag if flag.starts_with("--") => {
                return Err(ArgError(format!("unknown shard option `{flag}`")));
            }
            other => {
                return Err(ArgError(format!(
                    "shard takes no positional arguments (got `{other}`); \
                     backends are `--backend HOST:PORT`"
                )));
            }
        }
        i += 1;
    }
    if config.backends.is_empty() {
        return Err(ArgError(
            "shard requires at least one --backend HOST:PORT (a running `rwq serve`)".to_string(),
        ));
    }
    Ok(Command::Shard { config })
}

/// Parses `rwq lab` arguments. The only verb today is `run`; its flag
/// set configures the variant matrix, not a session, so it is disjoint
/// from the per-query options.
fn parse_lab(args: &[String]) -> Result<Command, ArgError> {
    match args.first().map(String::as_str) {
        Some("run") => {}
        Some(other) => {
            return Err(ArgError(format!(
                "unknown lab verb `{other}` (expected `lab run <workload.jsonl>`)"
            )))
        }
        None => {
            return Err(ArgError(
                "lab expects `lab run <workload.jsonl>`".to_string(),
            ))
        }
    }
    let args = &args[1..];
    let mut config = rw_lab::RunConfig::default();
    let mut rows = None;
    let mut report = PathBuf::from("LAB_REPORT.json");
    let mut positional = Vec::new();
    let mut i = 0usize;
    let value = |i: &mut usize, flag: &str| -> Result<String, ArgError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| ArgError(format!("{flag} expects a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--variants" => {
                let list = value(&mut i, "--variants")?;
                let mut engines = Vec::new();
                for word in list.split(',') {
                    let word = word.trim();
                    let Some(engine) = rw_lab::Engine::parse(word) else {
                        return Err(ArgError(format!(
                            "unknown engine `{word}` (expected compiled | oracle | symmetry \
                             | montecarlo | maxent)"
                        )));
                    };
                    if !engines.contains(&engine) {
                        engines.push(engine);
                    }
                }
                if engines.is_empty() {
                    return Err(ArgError(
                        "--variants expects at least one engine".to_string(),
                    ));
                }
                config.engines = engines;
            }
            "--threads" => {
                let list = value(&mut i, "--threads")?;
                let mut counts = Vec::new();
                for word in list.split(',') {
                    let word = word.trim();
                    match word.parse::<usize>() {
                        Ok(n) if n >= 1 => {
                            if !counts.contains(&n) {
                                counts.push(n);
                            }
                        }
                        _ => {
                            return Err(ArgError(format!(
                                "lab --threads expects a comma list of counts >= 1, got `{word}`"
                            )))
                        }
                    }
                }
                config.threads = counts;
            }
            "--cache" => {
                config.cache = match value(&mut i, "--cache")?.as_str() {
                    "on" => vec![true],
                    "off" => vec![false],
                    "both" => vec![false, true],
                    other => {
                        return Err(ArgError(format!(
                            "--cache expects on | off | both, got `{other}`"
                        )))
                    }
                };
            }
            "--seed" => {
                let v = value(&mut i, "--seed")?;
                config.seed = v
                    .parse()
                    .map_err(|_| ArgError(format!("bad --seed `{v}`")))?;
            }
            "--rows" => rows = Some(PathBuf::from(value(&mut i, "--rows")?)),
            "--report" => report = PathBuf::from(value(&mut i, "--report")?),
            flag if flag.starts_with("--") => {
                return Err(ArgError(format!("unknown lab option `{flag}`")));
            }
            _ => positional.push(args[i].clone()),
        }
        i += 1;
    }
    let [workload] = positional.as_slice() else {
        return Err(ArgError(
            "lab run expects exactly one workload file".to_string(),
        ));
    };
    Ok(Command::Lab {
        workload: PathBuf::from(workload),
        config,
        rows,
        report,
    })
}

/// Parses a full argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ArgError> {
    let Some(verb) = args.first() else {
        return Ok(Command::Help);
    };
    match verb.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "check" => {
            let (_, positional) = parse_options(&args[1..])?;
            let [file] = positional.as_slice() else {
                return Err(ArgError("check expects exactly one file".to_string()));
            };
            Ok(Command::Check {
                file: PathBuf::from(file),
            })
        }
        "serve" => parse_serve(&args[1..]),
        "shard" => parse_shard(&args[1..]),
        "client" => parse_client(&args[1..]),
        "obs" => {
            let [path] = &args[1..] else {
                return Err(ArgError(
                    "obs expects exactly one trace file (a `--slow-log` JSONL)".to_string(),
                ));
            };
            Ok(Command::Obs {
                path: PathBuf::from(path),
            })
        }
        "lab" => parse_lab(&args[1..]),
        "repl" => {
            let (options, positional) = parse_options(&args[1..])?;
            reject_threads(&options)?;
            let [file] = positional.as_slice() else {
                return Err(ArgError("repl expects exactly one file".to_string()));
            };
            Ok(Command::Repl {
                file: PathBuf::from(file),
                options,
            })
        }
        "batch" => {
            let (options, positional) = parse_options(&args[1..])?;
            if options.prior.is_some() {
                return Err(ArgError(
                    "batch always uses the random-worlds pipeline; --prior is not supported"
                        .to_string(),
                ));
            }
            // Rejected, not silently ignored: batch emits full JSON
            // objects, so the text-formatting flags have no effect.
            // (--threads / --cache and the --approx sampler knobs are the
            // batch-relevant options.)
            let concurrency_only = SessionOptions {
                threads: options.threads,
                cache: options.cache,
                approx: options.approx,
                samples: options.samples,
                mc_seed: options.mc_seed,
                ci: options.ci,
                symmetry: options.symmetry,
                min_n: options.min_n,
                max_n: options.max_n,
                ..SessionOptions::default()
            };
            if options != concurrency_only {
                return Err(ArgError(
                    "batch emits full JSON results; --tau, --trend and --quiet are not supported"
                        .to_string(),
                ));
            }
            let [file] = positional.as_slice() else {
                return Err(ArgError("batch expects exactly one file".to_string()));
            };
            Ok(Command::Batch {
                file: PathBuf::from(file),
                options,
            })
        }
        "query" => {
            let (options, mut positional) = parse_options(&args[1..])?;
            reject_threads(&options)?;
            if positional.len() < 2 {
                return Err(ArgError(
                    "query expects a file and at least one query".to_string(),
                ));
            }
            let file = PathBuf::from(positional.remove(0));
            Ok(Command::Query {
                file,
                queries: positional,
                options,
            })
        }
        other => Err(ArgError(format!(
            "unknown command `{other}` (try `rwq help`)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn query_with_options() {
        let cmd = parse(&strs(&[
            "query",
            "kb.rwkb",
            "Hep(Eric)",
            "--tau",
            "1/64",
            "--trend",
            "8,16",
            "--quiet",
        ]))
        .unwrap();
        match cmd {
            Command::Query {
                file,
                queries,
                options,
            } => {
                assert_eq!(file, PathBuf::from("kb.rwkb"));
                assert_eq!(queries, vec!["Hep(Eric)".to_string()]);
                assert_eq!(options.tau, Rat::new(1, 64));
                assert_eq!(options.trend, vec![8, 16]);
                assert!(!options.explain);
                assert_eq!(options.prior, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn priors_parse() {
        assert_eq!(parse_prior("per-predicate"), Ok(Prior::PerPredicate));
        assert_eq!(parse_prior("carnap"), Ok(Prior::CarnapStar));
        assert_eq!(parse_prior("lambda=3.5"), Ok(Prior::Lambda(3.5)));
        assert!(parse_prior("lambda=-1").is_err());
        assert!(parse_prior("dirichlet").is_err());
    }

    #[test]
    fn propensity_gets_default_trend() {
        let cmd = parse(&strs(&["query", "kb", "P(C)", "--prior", "carnap"])).unwrap();
        match cmd {
            Command::Query { options, .. } => assert_eq!(options.trend, vec![16, 32, 64]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_informative() {
        assert!(parse(&strs(&["frobnicate"]))
            .unwrap_err()
            .0
            .contains("unknown command"));
        assert!(parse(&strs(&["query", "kb"]))
            .unwrap_err()
            .0
            .contains("at least one query"));
        assert!(parse(&strs(&["check"]))
            .unwrap_err()
            .0
            .contains("exactly one file"));
        assert!(parse(&strs(&["query", "kb", "q", "--tau"]))
            .unwrap_err()
            .0
            .contains("expects a value"));
        assert!(parse(&strs(&["query", "kb", "q", "--tau", "0/3"]))
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(parse(&strs(&["query", "kb", "q", "--wat"]))
            .unwrap_err()
            .0
            .contains("unknown option"));
    }

    #[test]
    fn batch_parses_and_rejects_priors() {
        let cmd = parse(&strs(&["batch", "kb.rwkb"])).unwrap();
        assert_eq!(
            cmd,
            Command::Batch {
                file: PathBuf::from("kb.rwkb"),
                options: SessionOptions::default(),
            }
        );
        assert!(parse(&strs(&["batch"]))
            .unwrap_err()
            .0
            .contains("exactly one file"));
        // Formatting flags are rejected outright rather than silently
        // ignored.
        for flagged in [
            vec!["batch", "kb", "--quiet"],
            vec!["batch", "kb", "--tau", "1/64"],
            vec!["batch", "kb", "--trend", "8,16"],
        ] {
            assert!(
                parse(&strs(&flagged))
                    .unwrap_err()
                    .0
                    .contains("not supported"),
                "{flagged:?}"
            );
        }
        assert!(parse(&strs(&["batch", "kb", "--prior", "carnap"]))
            .unwrap_err()
            .0
            .contains("--prior"));
    }

    #[test]
    fn batch_accepts_threads_and_cache() {
        let cmd = parse(&strs(&["batch", "kb.rwkb", "--threads", "4", "--cache"])).unwrap();
        match cmd {
            Command::Batch { options, .. } => {
                assert_eq!(options.threads, 4);
                assert!(options.cache);
            }
            other => panic!("{other:?}"),
        }
        // 0 = one worker per core.
        match parse(&strs(&["batch", "kb.rwkb", "--threads", "0"])).unwrap() {
            Command::Batch { options, .. } => assert_eq!(options.threads, 0),
            other => panic!("{other:?}"),
        }
        assert!(parse(&strs(&["batch", "kb", "--threads", "four"]))
            .unwrap_err()
            .0
            .contains("bad --threads"));
        assert!(parse(&strs(&["batch", "kb", "--threads"]))
            .unwrap_err()
            .0
            .contains("expects a value"));
    }

    #[test]
    fn threads_rejected_outside_batch_with_one_unified_message() {
        // The rejection text is a single constant — `query` and `repl`
        // used to word it differently (the verb was interpolated), so
        // scripts matching one missed the other.
        let mut seen = Vec::new();
        for verb in ["query", "repl"] {
            let err = parse(&strs(&[verb, "kb", "P(C)", "--threads", "2"])).unwrap_err();
            assert_eq!(err.0, THREADS_ERR, "{verb}");
            seen.push(err.0);
        }
        assert_eq!(seen[0], seen[1]);
        // ...while batch and serve accept the flag, including 0 = per-core.
        for args in [
            vec!["batch", "kb", "--threads", "0"],
            vec!["serve", "kb", "--threads", "0"],
            vec!["serve", "--threads", "4"],
        ] {
            assert!(parse(&strs(&args)).is_ok(), "{args:?}");
        }
        match parse(&strs(&["query", "kb", "P(C)", "--cache"])).unwrap() {
            Command::Query { options, .. } => assert!(options.cache),
            other => panic!("{other:?}"),
        }
        match parse(&strs(&["repl", "kb", "--cache"])).unwrap() {
            Command::Repl { options, .. } => assert!(options.cache),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn approx_flags_parse_for_every_serving_verb() {
        let cmd = parse(&strs(&[
            "query",
            "kb",
            "P(C)",
            "--approx",
            "--samples",
            "4096",
            "--mc-seed",
            "7",
            "--ci",
            "0.05",
            "--threads",
            "4",
        ]))
        .unwrap();
        match cmd {
            Command::Query { options, .. } => {
                assert!(options.approx);
                assert_eq!(options.samples, Some(4096));
                assert_eq!(options.mc_seed, Some(7));
                assert_eq!(options.ci, Some(0.05));
                assert_eq!(options.threads, 4); // sampler workers
            }
            other => panic!("{other:?}"),
        }
        match parse(&strs(&["batch", "kb", "--approx", "--mc-seed", "9"])).unwrap() {
            Command::Batch { options, .. } => assert_eq!(options.mc_seed, Some(9)),
            other => panic!("{other:?}"),
        }
        match parse(&strs(&["repl", "kb", "--approx"])).unwrap() {
            Command::Repl { options, .. } => assert!(options.approx),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn approx_flag_validation() {
        // Sampler knobs require --approx.
        for flagged in [
            vec!["query", "kb", "q", "--samples", "100"],
            vec!["query", "kb", "q", "--mc-seed", "1"],
            vec!["batch", "kb", "--ci", "0.1"],
        ] {
            assert!(
                parse(&strs(&flagged))
                    .unwrap_err()
                    .0
                    .contains("requires --approx"),
                "{flagged:?}"
            );
        }
        // --threads without --approx is still rejected for query.
        assert_eq!(
            parse(&strs(&["query", "kb", "q", "--threads", "2"]))
                .unwrap_err()
                .0,
            THREADS_ERR
        );
        // Bounds and parse errors.
        assert!(
            parse(&strs(&["query", "kb", "q", "--approx", "--ci", "0.7"]))
                .unwrap_err()
                .0
                .contains("half-width")
        );
        assert!(
            parse(&strs(&["query", "kb", "q", "--approx", "--samples", "0"]))
                .unwrap_err()
                .0
                .contains("positive")
        );
        // Approximate inference and propensity priors are different
        // semantics, not a stack.
        assert!(parse(&strs(&[
            "query", "kb", "q", "--approx", "--prior", "carnap"
        ]))
        .unwrap_err()
        .0
        .contains("--prior"));
    }

    #[test]
    fn scan_flags_parse_for_query_batch_and_serve() {
        match parse(&strs(&[
            "query",
            "kb",
            "P(C)",
            "--symmetry",
            "--min-n",
            "4",
            "--max-n",
            "32",
        ]))
        .unwrap()
        {
            Command::Query { options, .. } => {
                assert!(options.symmetry);
                assert_eq!(options.min_n, Some(4));
                assert_eq!(options.max_n, Some(32));
            }
            other => panic!("{other:?}"),
        }
        match parse(&strs(&["batch", "kb", "--symmetry", "--max-n", "40"])).unwrap() {
            Command::Batch { options, .. } => {
                assert!(options.symmetry);
                assert_eq!(options.max_n, Some(40));
            }
            other => panic!("{other:?}"),
        }
        match parse(&strs(&["repl", "kb", "--min-n", "3"])).unwrap() {
            Command::Repl { options, .. } => assert_eq!(options.min_n, Some(3)),
            other => panic!("{other:?}"),
        }
        match parse(&strs(&["serve", "kb.rwkb", "--symmetry", "--max-n", "48"])).unwrap() {
            Command::Serve { scan, .. } => {
                assert!(scan.symmetry);
                assert_eq!(scan.min_n, None);
                assert_eq!(scan.max_n, Some(48));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scan_flag_validation() {
        // The window bounds mirror the server's `load` validation.
        for bad in [
            vec!["query", "kb", "q", "--min-n", "1"],
            vec!["query", "kb", "q", "--max-n", "65"],
            vec!["batch", "kb", "--max-n", "0"],
            vec!["serve", "kb", "--min-n", "huge"],
        ] {
            assert!(
                parse(&strs(&bad)).unwrap_err().0.contains("2..=64"),
                "{bad:?}"
            );
        }
        // Inverted windows are rejected on every verb that takes them.
        for bad in [
            vec!["query", "kb", "q", "--min-n", "10", "--max-n", "4"],
            vec!["serve", "kb", "--min-n", "10", "--max-n", "4"],
        ] {
            assert!(
                parse(&strs(&bad)).unwrap_err().0.contains("exceeds"),
                "{bad:?}"
            );
        }
        // On serve the scan knobs configure the preloaded KB; without a
        // file there is nothing for them to apply to.
        assert!(parse(&strs(&["serve", "--symmetry"]))
            .unwrap_err()
            .0
            .contains("preloaded KB"));
    }

    #[test]
    fn serve_parses_defaults_and_flags() {
        match parse(&strs(&["serve"])).unwrap() {
            Command::Serve { file, config, .. } => {
                assert_eq!(file, None);
                assert_eq!(config.addr, DEFAULT_SERVE_ADDR);
                assert_eq!(config.threads, 0); // per-core
                assert_eq!(config.cache_shards, 16);
                assert_eq!(config.max_queue, 1024);
                assert_eq!(config.max_conns, 10_000);
                assert_eq!(config.idle_timeout_ms, 0); // never evict
                assert!(!config.test_ops);
                assert_eq!(config.slow_log, None);
                assert_eq!(config.slow_ms, 100);
                assert_eq!(config.access_log, None);
                assert_eq!(config.snapshot_dir, None);
                assert_eq!(config.snapshot_interval_ms, 5000);
            }
            other => panic!("{other:?}"),
        }
        match parse(&strs(&[
            "serve",
            "kb.rwkb",
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "4",
            "--cache-shards",
            "8",
            "--max-queue",
            "64",
            "--max-conns",
            "2048",
            "--idle-timeout-ms",
            "30000",
            "--slow-log",
            "slow.jsonl",
            "--slow-ms",
            "0",
            "--access-log",
            "access.jsonl",
            "--snapshot-dir",
            "snaps",
            "--snapshot-interval-ms",
            "250",
        ]))
        .unwrap()
        {
            Command::Serve { file, config, .. } => {
                assert_eq!(file, Some(PathBuf::from("kb.rwkb")));
                assert_eq!(config.addr, "127.0.0.1:0");
                assert_eq!(config.threads, 4);
                assert_eq!(config.cache_shards, 8);
                assert_eq!(config.max_queue, 64);
                assert_eq!(config.max_conns, 2048);
                assert_eq!(config.idle_timeout_ms, 30_000);
                assert_eq!(config.slow_log, Some(PathBuf::from("slow.jsonl")));
                assert_eq!(config.slow_ms, 0);
                assert_eq!(config.access_log, Some(PathBuf::from("access.jsonl")));
                assert_eq!(config.snapshot_dir, Some(PathBuf::from("snaps")));
                assert_eq!(config.snapshot_interval_ms, 250);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_snapshot_flag_validation() {
        // The interval paces --snapshot-dir checkpoints; alone it has
        // nothing to pace (same contract as --slow-ms/--slow-log).
        assert!(parse(&strs(&["serve", "--snapshot-interval-ms", "250"]))
            .unwrap_err()
            .0
            .contains("pass --snapshot-dir"));
        assert!(parse(&strs(&[
            "serve",
            "--snapshot-dir",
            "snaps",
            "--snapshot-interval-ms",
            "0"
        ]))
        .unwrap_err()
        .0
        .contains("bad --snapshot-interval-ms"));
        assert!(parse(&strs(&["serve", "--snapshot-dir"]))
            .unwrap_err()
            .0
            .contains("expects a value"));
    }

    #[test]
    fn serve_flag_validation() {
        assert!(parse(&strs(&["serve", "a.rwkb", "b.rwkb"]))
            .unwrap_err()
            .0
            .contains("at most one KB file"));
        assert!(parse(&strs(&["serve", "--max-queue", "0"]))
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(parse(&strs(&["serve", "--max-conns", "0"]))
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(parse(&strs(&["serve", "--idle-timeout-ms", "soon"]))
            .unwrap_err()
            .0
            .contains("bad --idle-timeout-ms"));
        assert!(parse(&strs(&["serve", "--cache-shards", "none"]))
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(parse(&strs(&["serve", "--threads", "four"]))
            .unwrap_err()
            .0
            .contains("bad --threads"));
        assert!(parse(&strs(&["serve", "--quiet"]))
            .unwrap_err()
            .0
            .contains("unknown serve option"));
        assert!(parse(&strs(&["serve", "--addr"]))
            .unwrap_err()
            .0
            .contains("expects a value"));
        assert!(parse(&strs(&["serve", "--slow-ms", "50"]))
            .unwrap_err()
            .0
            .contains("--slow-log"));
        assert!(parse(&strs(&[
            "serve",
            "--slow-log",
            "s.jsonl",
            "--slow-ms",
            "soon"
        ]))
        .unwrap_err()
        .0
        .contains("bad --slow-ms"));
    }

    #[test]
    fn obs_takes_exactly_one_trace_file() {
        assert_eq!(
            parse(&strs(&["obs", "slow.jsonl"])).unwrap(),
            Command::Obs {
                path: PathBuf::from("slow.jsonl")
            }
        );
        assert!(parse(&strs(&["obs"]))
            .unwrap_err()
            .0
            .contains("exactly one trace file"));
        assert!(parse(&strs(&["obs", "a.jsonl", "b.jsonl"]))
            .unwrap_err()
            .0
            .contains("exactly one trace file"));
    }

    #[test]
    fn client_requires_addr() {
        assert_eq!(
            parse(&strs(&["client", "--addr", "127.0.0.1:7878"])).unwrap(),
            Command::Client {
                addr: "127.0.0.1:7878".to_string(),
                retry: 0,
                retry_backoff_ms: DEFAULT_RETRY_BACKOFF_MS,
            }
        );
        assert!(parse(&strs(&["client"]))
            .unwrap_err()
            .0
            .contains("requires --addr"));
        assert!(parse(&strs(&["client", "extra"]))
            .unwrap_err()
            .0
            .contains("unknown client argument"));
    }

    #[test]
    fn client_retry_flags_parse_and_validate() {
        match parse(&strs(&[
            "client",
            "--addr",
            "127.0.0.1:7878",
            "--retry",
            "5",
            "--retry-backoff-ms",
            "20",
        ]))
        .unwrap()
        {
            Command::Client {
                retry,
                retry_backoff_ms,
                ..
            } => {
                assert_eq!(retry, 5);
                assert_eq!(retry_backoff_ms, 20);
            }
            other => panic!("{other:?}"),
        }
        // The backoff knob paces reconnects; without --retry there are
        // none to pace.
        assert!(parse(&strs(&[
            "client",
            "--addr",
            "a:1",
            "--retry-backoff-ms",
            "20"
        ]))
        .unwrap_err()
        .0
        .contains("pass --retry"));
        assert!(parse(&strs(&["client", "--addr", "a:1", "--retry", "x"]))
            .unwrap_err()
            .0
            .contains("bad --retry"));
        assert!(parse(&strs(&[
            "client",
            "--addr",
            "a:1",
            "--retry",
            "1",
            "--retry-backoff-ms",
            "0"
        ]))
        .unwrap_err()
        .0
        .contains("bad --retry-backoff-ms"));
    }

    #[test]
    fn shard_parses_backends_and_knobs() {
        match parse(&strs(&["shard", "--backend", "127.0.0.1:7878"])).unwrap() {
            Command::Shard { config } => {
                assert_eq!(config.addr, DEFAULT_SHARD_ADDR);
                assert_eq!(config.backends, vec!["127.0.0.1:7878".to_string()]);
                // The remaining knobs keep the library defaults.
                assert_eq!(
                    config,
                    rw_server::ShardConfig {
                        addr: DEFAULT_SHARD_ADDR.to_string(),
                        backends: vec!["127.0.0.1:7878".to_string()],
                        ..rw_server::ShardConfig::default()
                    }
                );
            }
            other => panic!("{other:?}"),
        }
        match parse(&strs(&[
            "shard",
            "--addr",
            "127.0.0.1:0",
            "--backend",
            "127.0.0.1:7001",
            "--backend",
            "127.0.0.1:7002",
            "--probe-interval-ms",
            "100",
            "--retry",
            "3",
            "--retry-backoff-ms",
            "10",
            "--vnodes",
            "32",
            "--threads",
            "4",
            "--max-queue",
            "256",
            "--max-conns",
            "512",
        ]))
        .unwrap()
        {
            Command::Shard { config } => {
                assert_eq!(config.addr, "127.0.0.1:0");
                assert_eq!(config.backends.len(), 2);
                assert_eq!(config.probe_interval_ms, 100);
                assert_eq!(config.retry, 3);
                assert_eq!(config.retry_backoff_ms, 10);
                assert_eq!(config.vnodes, 32);
                assert_eq!(config.threads, 4);
                assert_eq!(config.max_queue, 256);
                assert_eq!(config.max_conns, 512);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shard_rejects_bad_inputs() {
        assert!(parse(&strs(&["shard"]))
            .unwrap_err()
            .0
            .contains("at least one --backend"));
        assert!(parse(&strs(&["shard", "127.0.0.1:7878"]))
            .unwrap_err()
            .0
            .contains("no positional arguments"));
        assert!(parse(&strs(&["shard", "--backend", "a:1", "--quiet"]))
            .unwrap_err()
            .0
            .contains("unknown shard option"));
        assert!(
            parse(&strs(&["shard", "--backend", "a:1", "--vnodes", "0"]))
                .unwrap_err()
                .0
                .contains("positive")
        );
        assert!(parse(&strs(&[
            "shard",
            "--backend",
            "a:1",
            "--probe-interval-ms",
            "never"
        ]))
        .unwrap_err()
        .0
        .contains("positive"));
        assert!(parse(&strs(&["shard", "--backend"]))
            .unwrap_err()
            .0
            .contains("expects a value"));
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&strs(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn lab_run_parses_the_variant_matrix() {
        let cmd = parse(&strs(&[
            "lab",
            "run",
            "workloads/paper_examples.jsonl",
            "--variants",
            "compiled,oracle,montecarlo",
            "--threads",
            "1,4",
            "--cache",
            "on",
            "--seed",
            "7",
            "--rows",
            "rows.jsonl",
            "--report",
            "out/report.json",
        ]))
        .unwrap();
        match cmd {
            Command::Lab {
                workload,
                config,
                rows,
                report,
            } => {
                assert_eq!(workload, PathBuf::from("workloads/paper_examples.jsonl"));
                assert_eq!(
                    config.engines,
                    vec![
                        rw_lab::Engine::Compiled,
                        rw_lab::Engine::Oracle,
                        rw_lab::Engine::MonteCarlo
                    ]
                );
                assert_eq!(config.threads, vec![1, 4]);
                assert_eq!(config.cache, vec![true]);
                assert_eq!(config.seed, 7);
                assert_eq!(rows, Some(PathBuf::from("rows.jsonl")));
                assert_eq!(report, PathBuf::from("out/report.json"));
            }
            other => panic!("expected lab command, got {other:?}"),
        }
    }

    #[test]
    fn lab_defaults_mirror_run_config_defaults() {
        let cmd = parse(&strs(&["lab", "run", "w.jsonl"])).unwrap();
        match cmd {
            Command::Lab {
                config,
                rows,
                report,
                ..
            } => {
                assert_eq!(config, rw_lab::RunConfig::default());
                assert_eq!(rows, None);
                assert_eq!(report, PathBuf::from("LAB_REPORT.json"));
            }
            other => panic!("expected lab command, got {other:?}"),
        }
    }

    #[test]
    fn lab_rejects_bad_inputs() {
        assert!(parse(&strs(&["lab"])).unwrap_err().0.contains("lab run"));
        assert!(parse(&strs(&["lab", "walk", "w.jsonl"]))
            .unwrap_err()
            .0
            .contains("unknown lab verb"));
        assert!(parse(&strs(&["lab", "run"]))
            .unwrap_err()
            .0
            .contains("exactly one workload"));
        assert!(
            parse(&strs(&["lab", "run", "w.jsonl", "--variants", "warp"]))
                .unwrap_err()
                .0
                .contains("unknown engine")
        );
        assert!(parse(&strs(&["lab", "run", "w.jsonl", "--threads", "0"]))
            .unwrap_err()
            .0
            .contains("counts >= 1"));
        assert!(parse(&strs(&["lab", "run", "w.jsonl", "--cache", "maybe"]))
            .unwrap_err()
            .0
            .contains("on | off | both"));
        assert!(parse(&strs(&["lab", "run", "w.jsonl", "--quiet"]))
            .unwrap_err()
            .0
            .contains("unknown lab option"));
    }
}
