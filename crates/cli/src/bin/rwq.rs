//! `rwq` binary: parse arguments, dispatch to the library, exit.

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match rw_cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", rw_cli::USAGE);
            std::process::exit(2);
        }
    };
    let stdin = std::io::stdin();
    let mut locked = stdin.lock();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match rw_cli::run(cmd, &mut locked, &mut out) {
        Ok(code) => {
            let _ = out.flush();
            std::process::exit(code);
        }
        Err(e) => {
            eprintln!("io error: {e}");
            std::process::exit(3);
        }
    }
}
