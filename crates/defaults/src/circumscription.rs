//! Propositional circumscription \[McC80\]: entailment in *minimal* models.
//!
//! The paper's §3 invokes circumscription repeatedly: the
//! abnormality-predicate encoding of defaults (§3.1), its treatment of the
//! lottery paradox (§3.5: every minimal model makes a *different* single
//! ticket win, so no `¬Winner(c)` conclusion survives skeptical
//! entailment), and Lifschitz's universal-conclusion benchmarks. This
//! module decides `CIRC(T; P; Z; Q) ⊨ φ` exactly by enumerating models and
//! filtering to the minimal ones.
//!
//! A model `M` is minimal when no model `M'` of `T` agrees with `M` on the
//! *fixed* variables and makes a strictly smaller set of *minimized*
//! variables true; the remaining (varying) variables are unconstrained.

use crate::worldset::WorldSet;
use rw_epsilon::PropFormula;

/// Which variables are minimized, which are fixed, and (implicitly) which
/// vary: anything mentioned in neither list.
#[derive(Clone, Debug, Default)]
pub struct CircPolicy {
    /// Variables whose extension is minimized (abnormalities, `Winner`...).
    pub minimized: Vec<usize>,
    /// Variables that must keep their truth value when comparing models.
    pub fixed: Vec<usize>,
}

impl CircPolicy {
    /// Minimize `minimized`, let everything else vary.
    pub fn minimize(minimized: Vec<usize>) -> CircPolicy {
        CircPolicy {
            minimized,
            fixed: Vec::new(),
        }
    }

    /// Minimize `minimized`, fix `fixed`, vary the rest.
    pub fn with_fixed(minimized: Vec<usize>, fixed: Vec<usize>) -> CircPolicy {
        CircPolicy { minimized, fixed }
    }

    fn mask(vars: &[usize]) -> u32 {
        vars.iter().fold(0u32, |m, &v| {
            assert!(v < 32, "variable index {v} out of range");
            m | 1 << v
        })
    }
}

/// The minimal models of `theory` under `policy`, over `nvars` variables.
pub fn minimal_models(theory: &PropFormula, policy: &CircPolicy, nvars: usize) -> Vec<u32> {
    let nvars = nvars.max(theory.var_count());
    let models: Vec<u32> = WorldSet::models(theory, nvars).iter().collect();
    let min_mask = CircPolicy::mask(&policy.minimized);
    let fix_mask = CircPolicy::mask(&policy.fixed);

    models
        .iter()
        .copied()
        .filter(|&m| {
            // m is minimal iff no model m' matches on fixed vars and has a
            // strictly smaller minimized-true set.
            !models.iter().any(|&m2| {
                m2 & fix_mask == m & fix_mask
                    && m2 & min_mask != m & min_mask
                    && m2 & min_mask & !(m & min_mask) == 0
            })
        })
        .collect()
}

/// `CIRC(theory; policy) ⊨ query`: truth in every minimal model. An
/// unsatisfiable theory entails everything.
///
/// ```
/// use rw_defaults::{circ_entails, CircPolicy};
/// use rw_epsilon::prop::VarTable;
///
/// // Circumscribing the abnormality concludes flight (§3.1).
/// let mut vt = VarTable::new();
/// let t = vt.parse("bird & (bird & !ab => fly)").unwrap();
/// let ab = vt.var("ab");
/// let fly = vt.parse("fly").unwrap();
/// assert!(circ_entails(&t, &CircPolicy::minimize(vec![ab]), vt.len(), &fly));
/// ```
pub fn circ_entails(
    theory: &PropFormula,
    policy: &CircPolicy,
    nvars: usize,
    query: &PropFormula,
) -> bool {
    let nvars = nvars.max(query.var_count());
    minimal_models(theory, policy, nvars)
        .into_iter()
        .all(|m| query.eval(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rw_epsilon::prop::VarTable;

    #[test]
    fn minimization_prefers_false() {
        let mut vt = VarTable::new();
        let t = vt.parse("p or q").unwrap();
        let p = vt.parse("p").unwrap();
        // Minimizing p alone: minimal models have p false when possible.
        let policy = CircPolicy::minimize(vec![0]);
        assert!(circ_entails(&t, &policy, vt.len(), &PropFormula::not(p)));
    }

    #[test]
    fn abnormality_encoding_concludes_flight() {
        // bird ∧ (bird ∧ ¬ab ⇒ fly), circumscribing ab (fly varies):
        // minimal models set ab = false, so fly follows — the
        // circumscriptive reading of `birds typically fly` (§3.1).
        let mut vt = VarTable::new();
        let t = vt.parse("bird & (bird & !ab => fly)").unwrap();
        let ab = vt.var("ab");
        let policy = CircPolicy::minimize(vec![ab]);
        let fly = vt.parse("fly").unwrap();
        assert!(circ_entails(&t, &policy, vt.len(), &fly));
    }

    #[test]
    fn fixed_variables_split_comparisons() {
        let mut vt = VarTable::new();
        // p ⇔ q, minimize p with q FIXED: no comparison can flip p without
        // flipping q, so both models are minimal and nothing is concluded.
        let t = vt.parse("(p => q) & (q => p)").unwrap();
        let not_p = vt.parse("!p").unwrap();
        let fixed = CircPolicy::with_fixed(vec![0], vec![1]);
        assert!(!circ_entails(&t, &fixed, vt.len(), &not_p));
        // With q varying instead, the (¬p, ¬q) model beats (p, q).
        let varying = CircPolicy::minimize(vec![0]);
        assert!(circ_entails(&t, &varying, vt.len(), &not_p));
    }

    #[test]
    fn lottery_no_individual_loser_conclusion() {
        // §3.5: three ticket holders, exactly one winner. Minimizing the
        // winners yields three minimal models — one per winner — so
        // ¬Winner(c) is NOT circumscriptively entailed for any c, yet
        // `someone wins` is.
        let mut vt = VarTable::new();
        let t = vt
            .parse(
                "(w1 or w2 or w3) & \
                 (w1 => !w2 & !w3) & (w2 => !w1 & !w3) & (w3 => !w1 & !w2)",
            )
            .unwrap();
        let policy = CircPolicy::minimize(vec![0, 1, 2]);
        let minimal = minimal_models(&t, &policy, vt.len());
        assert_eq!(minimal.len(), 3);
        let not_w1 = vt.parse("!w1").unwrap();
        let someone = vt.parse("w1 or w2 or w3").unwrap();
        assert!(!circ_entails(&t, &policy, vt.len(), &not_w1));
        assert!(circ_entails(&t, &policy, vt.len(), &someone));
    }

    #[test]
    fn unsatisfiable_theory_entails_everything() {
        let mut vt = VarTable::new();
        let t = vt.parse("p & !p").unwrap();
        let q = vt.parse("q").unwrap();
        assert!(circ_entails(
            &t,
            &CircPolicy::minimize(vec![0]),
            vt.len(),
            &q
        ));
    }

    #[test]
    fn empty_policy_keeps_all_models() {
        let mut vt = VarTable::new();
        let t = vt.parse("p or q").unwrap();
        let policy = CircPolicy::default();
        assert_eq!(minimal_models(&t, &policy, vt.len()).len(), 3);
    }
}
