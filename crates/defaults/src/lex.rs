//! Lexicographic entailment [Leh95, BCD+93]: the refinement of System Z
//! that counts violations per priority level instead of only tracking the
//! worst one.
//!
//! The paper's §3.3 introduces the *drowning problem*: a subclass that is
//! exceptional in one respect (penguins do not fly) is blocked by System Z
//! from inheriting every *unrelated* default (yellow things are easy to
//! see), because System Z ranks worlds only by the highest-priority rule
//! they falsify. Lexicographic entailment repairs this by comparing, level
//! by level from most-specific to most-normal, *how many* rules a world
//! violates. Random worlds repairs it too (Theorem 5.16, Example 5.21);
//! this module lets the experiment harness line the three systems up on the
//! same rule sets.
//!
//! Priorities come from the same toleration partition (`z_partition`) that
//! System Z uses, so the two systems differ only in the world ordering.

use rw_epsilon::prop::DefaultRule;
use rw_epsilon::systems::z_partition;
use rw_epsilon::PropFormula;

fn world_count(rules: &[DefaultRule], extra: &[&PropFormula]) -> u32 {
    let mut n = 0usize;
    for r in rules {
        n = n.max(r.var_count());
    }
    for f in extra {
        n = n.max(f.var_count());
    }
    assert!(n <= 25, "too many propositional variables ({n})");
    1u32 << n
}

/// The violation signature of a world: for each priority level, from the
/// most specific (highest toleration rank) down to the most normal, the
/// number of rules in that level the world falsifies.
pub fn violation_signature(
    rules: &[DefaultRule],
    partition: &[Vec<usize>],
    world: u32,
) -> Vec<usize> {
    partition
        .iter()
        .rev()
        .map(|level| level.iter().filter(|&&i| rules[i].falsified(world)).count())
        .collect()
}

/// Lexicographic entailment: does every lex-minimal `premise`-world satisfy
/// `conclusion`? Returns `None` when the rule set is ε-inconsistent (no
/// toleration partition exists). A premise with no worlds entails
/// everything vacuously.
///
/// ```
/// use rw_defaults::lex_entails;
/// use rw_epsilon::prop::{DefaultRule, VarTable};
///
/// let mut vt = VarTable::new();
/// let rules = vec![
///     DefaultRule::new(vt.parse("bird").unwrap(), vt.parse("fly").unwrap()),
///     DefaultRule::new(vt.parse("penguin").unwrap(), vt.parse("!fly").unwrap()),
///     DefaultRule::new(vt.parse("penguin").unwrap(), vt.parse("bird").unwrap()),
///     DefaultRule::new(vt.parse("yellow").unwrap(), vt.parse("see").unwrap()),
/// ];
/// let yp = vt.parse("yellow & penguin").unwrap();
/// let see = vt.parse("see").unwrap();
/// // The yellow penguin is easy to see — no drowning (§3.3).
/// assert_eq!(lex_entails(&rules, &yp, &see), Some(true));
/// ```
pub fn lex_entails(
    rules: &[DefaultRule],
    premise: &PropFormula,
    conclusion: &PropFormula,
) -> Option<bool> {
    let partition = z_partition(rules)?;
    let worlds = world_count(rules, &[premise, conclusion]);

    let mut best: Option<Vec<usize>> = None;
    let mut all_satisfy = true;
    for w in 0..worlds {
        if !premise.eval(w) {
            continue;
        }
        let sig = violation_signature(rules, &partition, w);
        match &best {
            Some(b) if sig > *b => continue,
            Some(b) if sig == *b => {
                all_satisfy = all_satisfy && conclusion.eval(w);
            }
            _ => {
                best = Some(sig);
                all_satisfy = conclusion.eval(w);
            }
        }
    }
    Some(all_satisfy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rw_epsilon::prop::VarTable;
    use rw_epsilon::z_entails;

    fn rule(vt: &mut VarTable, p: &str, c: &str) -> DefaultRule {
        DefaultRule::new(vt.parse(p).unwrap(), vt.parse(c).unwrap())
    }

    /// The paper's KB_fly + yellow default (§3.3, Example 5.21).
    fn drowning_rules(vt: &mut VarTable) -> Vec<DefaultRule> {
        vec![
            rule(vt, "bird", "fly"),
            rule(vt, "penguin", "!fly"),
            rule(vt, "penguin", "bird"),
            rule(vt, "yellow", "easy_to_see"),
        ]
    }

    #[test]
    fn simple_default_fires() {
        let mut vt = VarTable::new();
        let rules = vec![rule(&mut vt, "bird", "fly")];
        let bird = vt.parse("bird").unwrap();
        let fly = vt.parse("fly").unwrap();
        assert_eq!(lex_entails(&rules, &bird, &fly), Some(true));
    }

    #[test]
    fn specificity_holds() {
        let mut vt = VarTable::new();
        let rules = drowning_rules(&mut vt);
        let penguin = vt.parse("penguin").unwrap();
        let not_fly = vt.parse("!fly").unwrap();
        assert_eq!(lex_entails(&rules, &penguin, &not_fly), Some(true));
    }

    #[test]
    fn lex_solves_the_drowning_problem_where_z_drowns() {
        let mut vt = VarTable::new();
        let rules = drowning_rules(&mut vt);
        let yp = vt.parse("yellow & penguin").unwrap();
        let ets = vt.parse("easy_to_see").unwrap();
        // System Z drowns: the yellow penguin cannot inherit visibility.
        assert_eq!(z_entails(&rules, &yp, &ets), Some(false));
        // Lexicographic entailment does not.
        assert_eq!(lex_entails(&rules, &yp, &ets), Some(true));
    }

    #[test]
    fn exceptional_subclass_inheritance() {
        // Warm-bloodedness (§3.3): a bird default unrelated to flight.
        let mut vt = VarTable::new();
        let mut rules = drowning_rules(&mut vt);
        rules.push(rule(&mut vt, "bird", "warm_blooded"));
        let penguin = vt.parse("penguin").unwrap();
        let wb = vt.parse("warm_blooded").unwrap();
        assert_eq!(z_entails(&rules, &penguin, &wb), Some(false));
        assert_eq!(lex_entails(&rules, &penguin, &wb), Some(true));
    }

    #[test]
    fn inconsistent_rules_return_none() {
        let mut vt = VarTable::new();
        let rules = vec![rule(&mut vt, "p", "q"), rule(&mut vt, "p", "!q")];
        let p = vt.parse("p").unwrap();
        let q = vt.parse("q").unwrap();
        assert_eq!(lex_entails(&rules, &p, &q), None);
    }

    #[test]
    fn unsatisfiable_premise_entails_vacuously() {
        let mut vt = VarTable::new();
        let rules = vec![rule(&mut vt, "p", "q")];
        let contradiction = vt.parse("p & !p").unwrap();
        let q = vt.parse("q").unwrap();
        assert_eq!(lex_entails(&rules, &contradiction, &q), Some(true));
    }

    #[test]
    fn nixon_diamond_remains_ambiguous() {
        let mut vt = VarTable::new();
        let rules = vec![
            rule(&mut vt, "quaker", "pacifist"),
            rule(&mut vt, "republican", "!pacifist"),
        ];
        let both = vt.parse("quaker & republican").unwrap();
        let pac = vt.parse("pacifist").unwrap();
        // Both one-violation worlds are lex-minimal: no conclusion either
        // way, matching random worlds' symmetric 1/2 (§5.3).
        assert_eq!(lex_entails(&rules, &both, &pac), Some(false));
        assert_eq!(
            lex_entails(&rules, &both, &PropFormula::not(pac)),
            Some(false)
        );
    }

    #[test]
    fn signature_orders_most_specific_first() {
        let mut vt = VarTable::new();
        let rules = drowning_rules(&mut vt);
        let partition = z_partition(&rules).unwrap();
        // A world where a penguin flies violates a level-1 rule; signature
        // leads with the most specific level.
        let penguin = vt.var("penguin");
        let bird = vt.var("bird");
        let fly = vt.var("fly");
        let w = (1 << penguin | 1 << bird | 1 << fly) as u32;
        let sig = violation_signature(&rules, &partition, w);
        assert_eq!(sig.len(), partition.len());
        assert!(sig[0] >= 1, "penguin→¬fly violation counts at the front");
    }
}
