//! Sets of propositional worlds as bitsets.
//!
//! A deductively closed propositional theory is determined by its set of
//! models, so the Reiter fixpoint and circumscription machinery work
//! entirely with [`WorldSet`]s: `Th(T) ⊢ φ` becomes `models(T) ⊆
//! models(φ)`, and consistency of `T ∪ {φ}` becomes `models(T) ∩ models(φ)
//! ≠ ∅`. Worlds are truth assignments packed as `u32` bitmasks (bit `i` =
//! variable `i`), matching `rw_epsilon::prop`.

use rw_epsilon::PropFormula;

/// A set of propositional worlds over a fixed variable count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorldSet {
    nvars: usize,
    bits: Vec<u64>,
}

impl WorldSet {
    const MAX_VARS: usize = 25;

    fn word_count(nvars: usize) -> usize {
        let worlds = 1usize << nvars;
        worlds.div_ceil(64)
    }

    /// The empty set over `nvars` variables.
    pub fn empty(nvars: usize) -> WorldSet {
        assert!(nvars <= Self::MAX_VARS, "too many variables ({nvars})");
        WorldSet {
            nvars,
            bits: vec![0; Self::word_count(nvars)],
        }
    }

    /// All `2^nvars` worlds.
    pub fn full(nvars: usize) -> WorldSet {
        let mut s = WorldSet::empty(nvars);
        let worlds = 1usize << nvars;
        for w in 0..worlds {
            s.insert(w as u32);
        }
        s
    }

    /// The models of a formula.
    pub fn models(f: &PropFormula, nvars: usize) -> WorldSet {
        assert!(
            f.var_count() <= nvars,
            "formula mentions variable {} outside the vocabulary of {nvars}",
            f.var_count() - 1
        );
        let mut s = WorldSet::empty(nvars);
        let worlds = 1u32 << nvars;
        for w in 0..worlds {
            if f.eval(w) {
                s.insert(w);
            }
        }
        s
    }

    /// Number of variables this set ranges over.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Adds a world (a truth-assignment bitmask) to the set.
    pub fn insert(&mut self, world: u32) {
        self.bits[(world / 64) as usize] |= 1u64 << (world % 64);
    }

    /// Membership test.
    pub fn contains(&self, world: u32) -> bool {
        self.bits[(world / 64) as usize] >> (world % 64) & 1 == 1
    }

    /// Number of worlds in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// No worlds: the corresponding theory is inconsistent.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    fn check_compat(&self, other: &WorldSet) {
        assert_eq!(
            self.nvars, other.nvars,
            "world sets over different vocabularies"
        );
    }

    /// Set intersection (conjunction of theories).
    pub fn intersect(&self, other: &WorldSet) -> WorldSet {
        self.check_compat(other);
        WorldSet {
            nvars: self.nvars,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Set union (disjunction of theories).
    pub fn union(&self, other: &WorldSet) -> WorldSet {
        self.check_compat(other);
        WorldSet {
            nvars: self.nvars,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// `self ⊆ other`: the theory with models `self` entails the one with
    /// models `other`.
    pub fn is_subset(&self, other: &WorldSet) -> bool {
        self.check_compat(other);
        self.bits.iter().zip(&other.bits).all(|(a, b)| a & !b == 0)
    }

    /// Entailment of a formula by the theory with these models.
    pub fn entails(&self, f: &PropFormula) -> bool {
        self.is_subset(&WorldSet::models(f, self.nvars))
    }

    /// Is the theory with these models consistent with `f`?
    pub fn consistent_with(&self, f: &PropFormula) -> bool {
        !self.intersect(&WorldSet::models(f, self.nvars)).is_empty()
    }

    /// Iterate the worlds in the set in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let nvars = self.nvars;
        (0..1u32 << nvars).filter(move |&w| self.contains(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rw_epsilon::prop::VarTable;

    #[test]
    fn models_of_conjunction() {
        let mut vt = VarTable::new();
        let f = vt.parse("p & q").unwrap();
        let s = WorldSet::models(&f, 2);
        assert_eq!(s.len(), 1);
        assert!(s.contains(0b11));
        assert!(!s.contains(0b01));
    }

    #[test]
    fn padding_vars_multiply_models() {
        let mut vt = VarTable::new();
        let f = vt.parse("p").unwrap();
        // With 3 variables, `p` has 4 models (q, r free).
        assert_eq!(WorldSet::models(&f, 3).len(), 4);
    }

    #[test]
    fn subset_and_entailment() {
        let mut vt = VarTable::new();
        let pq = WorldSet::models(&vt.parse("p & q").unwrap(), 2);
        let p = WorldSet::models(&vt.parse("p").unwrap(), 2);
        assert!(pq.is_subset(&p));
        assert!(!p.is_subset(&pq));
        assert!(pq.entails(&vt.parse("q").unwrap()));
        assert!(!p.entails(&vt.parse("q").unwrap()));
    }

    #[test]
    fn consistency_checks() {
        let mut vt = VarTable::new();
        let p = WorldSet::models(&vt.parse("p").unwrap(), 2);
        assert!(p.consistent_with(&vt.parse("q").unwrap()));
        assert!(!p.consistent_with(&vt.parse("!p").unwrap()));
        let empty = WorldSet::empty(2);
        // An inconsistent theory is consistent with nothing...
        assert!(!empty.consistent_with(&vt.parse("p").unwrap()));
        // ...and entails everything.
        assert!(empty.entails(&vt.parse("p & !p").unwrap()));
    }

    #[test]
    fn boolean_algebra() {
        let mut vt = VarTable::new();
        let p = WorldSet::models(&vt.parse("p").unwrap(), 2);
        let q = WorldSet::models(&vt.parse("q").unwrap(), 2);
        let p_and_q = WorldSet::models(&vt.parse("p & q").unwrap(), 2);
        let p_or_q = WorldSet::models(&vt.parse("p or q").unwrap(), 2);
        assert_eq!(p.intersect(&q), p_and_q);
        assert_eq!(p.union(&q), p_or_q);
        assert_eq!(WorldSet::full(2).len(), 4);
    }

    #[test]
    fn iter_visits_members_in_order() {
        let mut vt = VarTable::new();
        let s = WorldSet::models(&vt.parse("p or q").unwrap(), 2);
        let worlds: Vec<u32> = s.iter().collect();
        assert_eq!(worlds, vec![0b01, 0b10, 0b11]);
    }

    #[test]
    #[should_panic(expected = "different vocabularies")]
    fn mismatched_vocabularies_panic() {
        let a = WorldSet::empty(2);
        let b = WorldSet::empty(3);
        let _ = a.intersect(&b);
    }
}
