//! Reiter extensions \[Rei80\] and the skeptical/credulous consequence
//! relations over them.
//!
//! The paper's §3 and §5 measure random worlds against default logic on
//! several benchmarks — the Nixon diamond's two extensions, Poole's
//! broken-arm anomaly (Example 5.4: default logic's *single* extension says
//! both arms are usable), the failure of specificity under naive normal
//! encodings, and the lottery paradox. This module computes all extensions
//! exactly so those comparisons are reproducible.
//!
//! ## Algorithm
//!
//! Every extension of `(W, D)` has the form `Th(W ∪ consequents(S))` for
//! some `S ⊆ D` [Rei80, Thm 2.5], so candidates are enumerated as subsets.
//! For a candidate `E` (represented by its model set), the Reiter operator
//! `Γ(E)` is evaluated by a fixpoint loop: starting from `models(W)`,
//! repeatedly apply any default whose prerequisite is entailed by the
//! current theory and whose justifications are each consistent with the
//! *candidate* `E`; `E` is an extension iff the fixpoint's model set equals
//! `E`'s. The loop enforces groundedness (prerequisites must be derivable
//! from facts plus previously applied consequents), and checking
//! justifications against the candidate rather than the growing theory is
//! exactly what distinguishes `Γ` from naive forward chaining.
//!
//! Cost is `O(2^|D| · |D|² · 2^n/64)`; the paper's benchmark theories have
//! at most a dozen defaults.

use crate::theory::DefaultTheory;
use crate::worldset::WorldSet;
use rw_epsilon::PropFormula;

/// One Reiter extension.
#[derive(Clone, Debug, PartialEq)]
pub struct Extension {
    /// Models of the extension (it is `Th` of facts + generating
    /// consequents, so the model set determines it).
    pub models: WorldSet,
    /// Indices into `theory.defaults` of the generating defaults, in the
    /// order the fixpoint applied them.
    pub generating: Vec<usize>,
}

impl Extension {
    /// Does the extension contain `f`?
    pub fn contains(&self, f: &PropFormula) -> bool {
        self.models.entails(f)
    }

    /// Is the extension consistent?
    pub fn is_consistent(&self) -> bool {
        !self.models.is_empty()
    }
}

/// Computes `Γ(candidate)`'s model set, returning the applied defaults.
fn gamma(theory: &DefaultTheory, facts: &WorldSet, candidate: &WorldSet) -> (WorldSet, Vec<usize>) {
    let mut current = facts.clone();
    let mut applied = vec![false; theory.defaults.len()];
    let mut order = Vec::new();
    loop {
        let mut progressed = false;
        for (i, d) in theory.defaults.iter().enumerate() {
            if applied[i] {
                continue;
            }
            if !current.entails(&d.prereq) {
                continue;
            }
            if !d
                .justifications
                .iter()
                .all(|j| candidate.consistent_with(j))
            {
                continue;
            }
            current = current.intersect(&WorldSet::models(&d.consequent, current.nvars()));
            applied[i] = true;
            order.push(i);
            progressed = true;
        }
        if !progressed {
            return (current, order);
        }
    }
}

/// All extensions of the theory over a vocabulary of `nvars` variables
/// (use [`DefaultTheory::var_count`] unless extra query variables need to
/// be carried). Extensions are returned in subset-enumeration order,
/// deduplicated by model set.
///
/// ```
/// use rw_defaults::DefaultTheory;
/// use rw_epsilon::prop::VarTable;
///
/// // The Nixon diamond: two extensions, one per default.
/// let mut vt = VarTable::new();
/// let mut t = DefaultTheory::new();
/// t.fact_str(&mut vt, "quaker & republican").unwrap();
/// t.normal_str(&mut vt, "quaker", "pacifist").unwrap();
/// t.normal_str(&mut vt, "republican", "!pacifist").unwrap();
/// assert_eq!(rw_defaults::extensions(&t, vt.len()).len(), 2);
/// ```
pub fn extensions(theory: &DefaultTheory, nvars: usize) -> Vec<Extension> {
    let nvars = nvars.max(theory.var_count());
    let mut facts = WorldSet::full(nvars);
    for f in &theory.facts {
        facts = facts.intersect(&WorldSet::models(f, nvars));
    }

    let m = theory.defaults.len();
    assert!(m <= 20, "too many defaults ({m}) for subset enumeration");
    let consequent_models: Vec<WorldSet> = theory
        .defaults
        .iter()
        .map(|d| WorldSet::models(&d.consequent, nvars))
        .collect();

    let mut found: Vec<Extension> = Vec::new();
    for subset in 0u32..1 << m {
        let mut candidate = facts.clone();
        for (i, cm) in consequent_models.iter().enumerate() {
            if subset >> i & 1 == 1 {
                candidate = candidate.intersect(cm);
            }
        }
        let (fixpoint, order) = gamma(theory, &facts, &candidate);
        if fixpoint == candidate && !found.iter().any(|e| e.models == candidate) {
            found.push(Extension {
                models: candidate,
                generating: order,
            });
        }
    }
    found
}

/// Skeptical consequence: `f` belongs to *every* extension. A theory with
/// no extension (possible only with non-normal defaults) skeptically
/// entails nothing — the alternative convention, "entails everything",
/// would make self-defeating defaults like `true : p / ¬p` omniscient.
pub fn skeptical(theory: &DefaultTheory, nvars: usize, f: &PropFormula) -> bool {
    let exts = extensions(theory, nvars.max(f.var_count()));
    !exts.is_empty() && exts.iter().all(|e| e.contains(f))
}

/// Credulous consequence: `f` belongs to *some* extension.
pub fn credulous(theory: &DefaultTheory, nvars: usize, f: &PropFormula) -> bool {
    extensions(theory, nvars.max(f.var_count()))
        .iter()
        .any(|e| e.contains(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory::Default;
    use rw_epsilon::prop::VarTable;

    fn parse(vt: &mut VarTable, s: &str) -> PropFormula {
        vt.parse(s).unwrap()
    }

    #[test]
    fn no_defaults_single_extension_is_th_w() {
        let mut vt = VarTable::new();
        let mut t = DefaultTheory::new();
        t.fact_str(&mut vt, "p").unwrap();
        let exts = extensions(&t, vt.len());
        assert_eq!(exts.len(), 1);
        assert!(exts[0].contains(&parse(&mut vt, "p")));
        assert!(!exts[0].contains(&parse(&mut vt, "!p")));
    }

    #[test]
    fn normal_default_fires() {
        let mut vt = VarTable::new();
        let mut t = DefaultTheory::new();
        t.fact_str(&mut vt, "bird").unwrap();
        t.normal_str(&mut vt, "bird", "fly").unwrap();
        let exts = extensions(&t, vt.len());
        assert_eq!(exts.len(), 1);
        assert!(exts[0].contains(&parse(&mut vt, "fly")));
        assert_eq!(exts[0].generating, vec![0]);
    }

    #[test]
    fn blocked_justification_does_not_fire() {
        let mut vt = VarTable::new();
        let mut t = DefaultTheory::new();
        t.fact_str(&mut vt, "bird & !fly").unwrap();
        t.normal_str(&mut vt, "bird", "fly").unwrap();
        let exts = extensions(&t, vt.len());
        assert_eq!(exts.len(), 1);
        assert!(exts[0].contains(&parse(&mut vt, "!fly")));
        assert!(exts[0].generating.is_empty());
    }

    #[test]
    fn nixon_diamond_two_extensions() {
        // quaker → pacifist; republican → ¬pacifist; both facts hold.
        let mut vt = VarTable::new();
        let mut t = DefaultTheory::new();
        t.fact_str(&mut vt, "quaker & republican").unwrap();
        t.normal_str(&mut vt, "quaker", "pacifist").unwrap();
        t.normal_str(&mut vt, "republican", "!pacifist").unwrap();
        let exts = extensions(&t, vt.len());
        assert_eq!(exts.len(), 2);
        let pac = parse(&mut vt, "pacifist");
        assert!(credulous(&t, vt.len(), &pac));
        assert!(credulous(&t, vt.len(), &PropFormula::not(pac.clone())));
        assert!(!skeptical(&t, vt.len(), &pac));
    }

    #[test]
    fn naive_normal_encoding_loses_specificity() {
        // The paper §3.3: with normal defaults, Tweety the penguin has one
        // extension where it flies and one where it doesn't — specificity
        // fails under the obvious encoding.
        let mut vt = VarTable::new();
        let mut t = DefaultTheory::new();
        t.fact_str(&mut vt, "penguin").unwrap();
        t.fact_str(&mut vt, "penguin => bird").unwrap();
        t.normal_str(&mut vt, "bird", "fly").unwrap();
        t.normal_str(&mut vt, "penguin", "!fly").unwrap();
        let exts = extensions(&t, vt.len());
        assert_eq!(exts.len(), 2);
        assert!(!skeptical(&t, vt.len(), &parse(&mut vt, "!fly")));
    }

    #[test]
    fn semi_normal_encoding_restores_specificity() {
        // \[RC81\]: guard the bird default with ¬penguin.
        let mut vt = VarTable::new();
        let mut t = DefaultTheory::new();
        t.fact_str(&mut vt, "penguin").unwrap();
        t.fact_str(&mut vt, "penguin => bird").unwrap();
        let bird = parse(&mut vt, "bird");
        let fly = parse(&mut vt, "fly");
        let not_penguin = parse(&mut vt, "!penguin");
        t.default_rule(Default::semi_normal(bird, fly, not_penguin));
        t.normal_str(&mut vt, "penguin", "!fly").unwrap();
        let exts = extensions(&t, vt.len());
        assert_eq!(exts.len(), 1);
        assert!(exts[0].contains(&parse(&mut vt, "!fly")));
    }

    #[test]
    fn inconsistent_facts_single_inconsistent_extension() {
        let mut vt = VarTable::new();
        let mut t = DefaultTheory::new();
        t.fact_str(&mut vt, "p & !p").unwrap();
        t.normal_str(&mut vt, "p", "q").unwrap();
        let exts = extensions(&t, vt.len());
        assert_eq!(exts.len(), 1);
        assert!(!exts[0].is_consistent());
        // The inconsistent extension contains everything.
        assert!(exts[0].contains(&parse(&mut vt, "!q")));
    }

    #[test]
    fn non_normal_theory_can_lack_extensions() {
        // The classic `true : p / ¬p` has no extension: applying it is
        // self-defeating, not applying it is ungrounded... the fixpoint
        // never closes on any candidate.
        let mut vt = VarTable::new();
        let p = parse(&mut vt, "p");
        let mut t = DefaultTheory::new();
        t.default_rule(Default::new(
            PropFormula::True,
            vec![p.clone()],
            PropFormula::not(p),
        ));
        assert!(extensions(&t, vt.len()).is_empty());
    }

    #[test]
    fn grounded_chaining_orders_defaults() {
        let mut vt = VarTable::new();
        let mut t = DefaultTheory::new();
        t.fact_str(&mut vt, "a").unwrap();
        // c → d listed first but only applicable after a → c fires.
        t.normal_str(&mut vt, "c", "d").unwrap();
        t.normal_str(&mut vt, "a", "c").unwrap();
        let exts = extensions(&t, vt.len());
        assert_eq!(exts.len(), 1);
        assert_eq!(exts[0].generating, vec![1, 0]);
        assert!(exts[0].contains(&parse(&mut vt, "d")));
    }

    #[test]
    fn ungrounded_self_support_rejected() {
        // p → p must not bootstrap itself: Th(W) stays the only extension
        // and does not contain p.
        let mut vt = VarTable::new();
        let mut t = DefaultTheory::new();
        t.normal_str(&mut vt, "p", "p").unwrap();
        let exts = extensions(&t, vt.len());
        assert_eq!(exts.len(), 1);
        assert!(!exts[0].contains(&parse(&mut vt, "p")));
    }

    #[test]
    fn poole_broken_arm_single_extension_anomaly() {
        // Example 5.4 / \[Poo89\]: arms are typically usable, broken arms are
        // typically NOT usable (both links are defaults, mirroring the
        // paper's statistical KB'_arm), and the hard fact is only the
        // disjunction `lb ∨ rb`. Because default logic cannot reason by
        // cases (it fails the Or rule, §3.2), neither exception default's
        // prerequisite is ever derivable, and the unique extension says
        // BOTH arms are usable — the anomaly the paper contrasts with
        // random worlds' `exactly one usable` answer.
        let mut vt = VarTable::new();
        let mut t = DefaultTheory::new();
        t.fact_str(&mut vt, "lb or rb").unwrap();
        t.normal_str(&mut vt, "true", "lu").unwrap();
        t.normal_str(&mut vt, "true", "ru").unwrap();
        t.normal_str(&mut vt, "lb", "!lu").unwrap();
        t.normal_str(&mut vt, "rb", "!ru").unwrap();
        let exts = extensions(&t, vt.len());
        assert_eq!(exts.len(), 1, "Poole's anomaly: a unique extension");
        assert!(exts[0].contains(&parse(&mut vt, "lu & ru")));
        // The exception defaults never fired.
        assert_eq!(exts[0].generating, vec![0, 1]);
    }

    #[test]
    fn skeptical_of_extensionless_theory_is_empty() {
        let mut vt = VarTable::new();
        let p = parse(&mut vt, "p");
        let mut t = DefaultTheory::new();
        t.default_rule(Default::new(
            PropFormula::True,
            vec![p.clone()],
            PropFormula::not(p.clone()),
        ));
        assert!(!skeptical(&t, vt.len(), &p));
        assert!(!credulous(&t, vt.len(), &p));
    }
}
