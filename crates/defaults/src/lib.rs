#![warn(missing_docs)]

//! Classical default-reasoning comparators for the random-worlds method.
//!
//! The paper (§3) motivates random worlds by walking through what the
//! classical nonmonotonic systems get wrong on a shared benchmark suite:
//!
//! * **Reiter's default logic** \[Rei80\] ([`reiter`]): multiple extensions
//!   on the Nixon diamond, loss of specificity under the obvious normal
//!   encoding (repairable with semi-normal guards \[RC81\], at the price of
//!   modularity — §3.3), and the broken-arm anomaly of Example 5.4, where
//!   the failure of reasoning by cases (the Or rule) leaves the unique
//!   extension claiming both arms usable.
//! * **Circumscription** \[McC80\] ([`circumscription`]): minimal-model
//!   entailment, the abnormality encoding of defaults, and its §3.5
//!   treatment of the lottery paradox (no individual `¬Winner(c)`
//!   conclusion survives, though `someone wins` does).
//! * **Lexicographic entailment** \[Leh95\] ([`lex`]): the System-Z
//!   refinement that counts violations per priority level and thereby
//!   escapes the *drowning problem* (§3.3) — the comparison point for the
//!   paper's Example 5.21, which random worlds handles via Theorem 5.16.
//!
//! System P (ε-semantics), System Z and GMP90's ME-plausibility live in
//! `rw-epsilon`; this crate completes the §3 landscape so the experiment
//! harness can line every system up against `Pr∞(· | KB)`.

pub mod circumscription;
pub mod lex;
pub mod reiter;
pub mod statistical;
pub mod theory;
pub mod worldset;

pub use circumscription::{circ_entails, minimal_models, CircPolicy};
pub use lex::{lex_entails, violation_signature};
pub use reiter::{credulous, extensions, skeptical, Extension};
pub use statistical::{parse_suite, DefaultSuite, SuiteError};
pub use theory::{Default, DefaultTheory};
pub use worldset::WorldSet;
