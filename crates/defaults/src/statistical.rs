//! Default-reasoning suites under the paper's statistical reading — the
//! `@defaults` knowledge-base format.
//!
//! The paper's §3 benchmark suites (Nixon diamond, penguin specificity,
//! the lottery paradox) are written as *default theories*: hard facts
//! plus rules "A's are typically B's". Random worlds reads such a rule
//! statistically — `||B(x) | A(x)||_x ≈_i 1`, the `A(x) ->_i B(x)`
//! sugar of the `L≈` concrete syntax — and this module compiles a
//! line-oriented suite description into exactly that, so default
//! workloads reach every serving surface through the ordinary
//! knowledge-base loader:
//!
//! ```text
//! @defaults
//! fact Penguin(Tweety)
//! axiom forall x (Penguin(x) => Bird(x))
//! rule Bird(x) -> Fly(x)
//! rule Penguin(x) -> !Fly(x)
//! ```
//!
//! Each `rule` receives a fresh tolerance index in declaration order,
//! so distinct defaults have unspecified relative strengths (the §5.3
//! convention the paper's examples assume).
//!
//! [`DefaultSuite::ground_theory`] additionally bridges a suite to a
//! propositional Reiter theory ([`crate::DefaultTheory`]) by grounding
//! rules and single-variable axioms over the constants the facts
//! mention — the comparator the §3 landscape lines up against
//! `Pr∞(· | KB)`: same suite, classical extensions on one side,
//! degrees of belief on the other.

use crate::theory::DefaultTheory;
use rw_epsilon::prop::VarTable;
use std::fmt;

/// A parse failure, tagged with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuiteError {
    /// 1-based line number within the suite source.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "defaults line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SuiteError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, SuiteError> {
    Err(SuiteError {
        line,
        message: message.into(),
    })
}

/// A parsed default-reasoning suite: facts, hard axioms, default rules.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DefaultSuite {
    /// Ground facts, verbatim `L≈` statements (e.g. `Penguin(Tweety)`).
    pub facts: Vec<String>,
    /// Hard axioms, verbatim `L≈` statements (e.g. taxonomies).
    pub axioms: Vec<String>,
    /// Default rules `(antecedent, consequent)` — `A(x) -> B(x)` pairs,
    /// each compiled with its own tolerance index.
    pub rules: Vec<(String, String)>,
}

impl DefaultSuite {
    /// The `L≈` source the suite compiles to: facts and axioms
    /// verbatim, each rule as `lhs ->_i rhs` (the statistical reading,
    /// indices in declaration order).
    pub fn to_l_source(&self) -> String {
        let mut statements: Vec<String> = Vec::new();
        for (i, (lhs, rhs)) in self.rules.iter().enumerate() {
            statements.push(format!("{lhs} ->_{} {rhs}", i + 1));
        }
        statements.extend(self.axioms.iter().cloned());
        statements.extend(self.facts.iter().cloned());
        statements.join("; ")
    }

    /// The constants mentioned by ground-atom facts (`Pred(Const)` or
    /// `!Pred(Const)`), in first-mention order — the grounding domain
    /// for [`Self::ground_theory`].
    pub fn constants(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for fact in &self.facts {
            if let Some((_, c)) = split_ground_atom(fact) {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Grounds the suite into a propositional Reiter theory over the
    /// constants of [`Self::constants`]: the atom `P(c)` becomes the
    /// propositional variable `P_c`, each rule becomes one normal
    /// default per constant, and single-variable axioms of the shape
    /// `forall x (A(x) => B(x))` become hard implications. Suites
    /// using shapes outside that fragment (non-unary atoms, nested
    /// statistics) return an error — the bridge exists for the §3
    /// benchmark suites, which are all inside it.
    pub fn ground_theory(&self) -> Result<(VarTable, DefaultTheory), String> {
        let constants = self.constants();
        if constants.is_empty() {
            return Err("no ground-atom facts to ground over".to_string());
        }
        let mut vt = VarTable::new();
        let mut theory = DefaultTheory::new();
        for fact in &self.facts {
            let Some((atom, _)) = split_ground_atom(fact) else {
                return Err(format!("fact `{fact}` is not a (negated) ground atom"));
            };
            let polarity = if fact.trim_start().starts_with('!') {
                "!"
            } else {
                ""
            };
            theory.fact_str(&mut vt, &format!("{polarity}{atom}"))?;
        }
        for axiom in &self.axioms {
            let Some((lhs, rhs)) = split_unary_axiom(axiom) else {
                return Err(format!(
                    "axiom `{axiom}` is outside the groundable fragment \
                     `forall x (A(x) => B(x))`"
                ));
            };
            for c in &constants {
                let ground = format!("{} => {}", mangle(&lhs, c)?, mangle(&rhs, c)?);
                theory.fact_str(&mut vt, &ground)?;
            }
        }
        for (lhs, rhs) in &self.rules {
            for c in &constants {
                theory.normal_str(&mut vt, &mangle(lhs, c)?, &mangle(rhs, c)?)?;
            }
        }
        Ok((vt, theory))
    }
}

/// Splits a ground unary-atom fact `P(Const)` / `!P(Const)` into the
/// mangled propositional atom (`P_Const`) and the constant.
fn split_ground_atom(fact: &str) -> Option<(String, String)> {
    let s = fact.trim().trim_start_matches('!').trim();
    let (pred, rest) = s.split_once('(')?;
    let arg = rest.strip_suffix(')')?;
    let pred = pred.trim();
    let arg = arg.trim();
    let ident = |t: &str| {
        !t.is_empty()
            && t.chars().next().unwrap().is_ascii_uppercase()
            && t.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')
    };
    if !ident(pred) || !ident(arg) {
        return None;
    }
    Some((format!("{pred}_{arg}"), arg.to_string()))
}

/// Splits `forall x (A(x) => B(x))` into its `(A(x), B(x))` sides
/// (whitespace-tolerant; any single variable name).
fn split_unary_axiom(axiom: &str) -> Option<(String, String)> {
    let s = axiom.trim().strip_prefix("forall")?.trim_start();
    let (_var, rest) = s.split_once('(')?;
    let body = rest.trim().strip_suffix(')')?;
    let (lhs, rhs) = body.split_once("=>")?;
    Some((lhs.trim().to_string(), rhs.trim().to_string()))
}

/// Grounds a single-variable literal pattern `P(x)` / `!P(x)` at a
/// constant, producing the mangled propositional form (`P_c` / `!P_c`).
fn mangle(pattern: &str, constant: &str) -> Result<String, String> {
    let (body, neg) = match pattern.trim().strip_prefix('!') {
        Some(rest) => (rest.trim(), "!"),
        None => (pattern.trim(), ""),
    };
    let Some((pred, rest)) = body.split_once('(') else {
        return Err(format!("`{pattern}` is not a unary literal pattern"));
    };
    let Some(var) = rest.strip_suffix(')') else {
        return Err(format!("`{pattern}` is not a unary literal pattern"));
    };
    if var.trim().chars().any(|c| !c.is_ascii_lowercase()) {
        return Err(format!(
            "`{pattern}` must use a single lowercase variable to ground"
        ));
    }
    Ok(format!("{neg}{}_{constant}", pred.trim()))
}

/// Parses suite source (without the `@defaults` header line). Lines:
/// `fact <stmt>`, `axiom <stmt>`, `rule <lhs> -> <rhs>`; `#` starts a
/// comment; blank lines are skipped.
pub fn parse_suite(src: &str) -> Result<DefaultSuite, SuiteError> {
    let mut suite = DefaultSuite::default();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let Some((keyword, rest)) = line.split_once(char::is_whitespace) else {
            return err(line_no, format!("`{line}` has no payload"));
        };
        let rest = rest.trim();
        match keyword {
            "fact" => suite.facts.push(rest.to_string()),
            "axiom" => suite.axioms.push(rest.to_string()),
            "rule" => {
                // `->_` would collide with the compiled tolerance
                // indices; the suite assigns those itself.
                let Some((lhs, rhs)) = rest.split_once("->") else {
                    return err(line_no, format!("rule `{rest}` has no `->`"));
                };
                if rhs.starts_with('_') {
                    return err(
                        line_no,
                        "rules take plain `->`; tolerance indices are assigned \
                         in declaration order",
                    );
                }
                let (lhs, rhs) = (lhs.trim(), rhs.trim());
                if lhs.is_empty() || rhs.is_empty() {
                    return err(line_no, format!("rule `{rest}` needs both sides"));
                }
                suite.rules.push((lhs.to_string(), rhs.to_string()));
            }
            other => {
                return err(
                    line_no,
                    format!("unknown suite keyword `{other}` (expected fact | axiom | rule)"),
                );
            }
        }
    }
    if suite.facts.is_empty() && suite.axioms.is_empty() && suite.rules.is_empty() {
        return err(1, "suite contains no statements");
    }
    Ok(suite)
}

/// Parses a full `@defaults` source: the first non-comment line must be
/// the bare `@defaults` header, the rest is suite syntax.
pub fn parse_source(src: &str) -> Result<DefaultSuite, SuiteError> {
    let mut header_line = 0usize;
    let mut lines = src.lines();
    let header = loop {
        header_line += 1;
        let Some(raw) = lines.next() else {
            return err(header_line, "missing `@defaults` header");
        };
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        };
        if !line.trim().is_empty() {
            break line.trim().to_string();
        }
    };
    if header != "@defaults" {
        return err(header_line, "expected a bare `@defaults` header");
    }
    let body: String = src.lines().skip(header_line).collect::<Vec<_>>().join("\n");
    parse_suite(&body).map_err(|e| SuiteError {
        line: e.line + header_line,
        message: e.message,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reiter::{extensions, skeptical};

    const PENGUIN: &str = "\
@defaults
fact Penguin(Tweety)
axiom forall x (Penguin(x) => Bird(x))
rule Bird(x) -> Fly(x)
rule Penguin(x) -> !Fly(x)
";

    #[test]
    fn penguin_suite_compiles_to_statistical_reading() {
        let suite = parse_source(PENGUIN).unwrap();
        assert_eq!(
            suite.to_l_source(),
            "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
             forall x (Penguin(x) => Bird(x)); Penguin(Tweety)"
        );
    }

    #[test]
    fn nixon_suite_grounds_to_a_two_extension_reiter_theory() {
        let suite = parse_source(
            "@defaults\n\
             fact Quaker(Nixon)\nfact Republican(Nixon)\n\
             rule Quaker(x) -> Pacifist(x)\nrule Republican(x) -> !Pacifist(x)\n",
        )
        .unwrap();
        let (mut vt, theory) = suite.ground_theory().unwrap();
        let pacifist = vt.parse("Pacifist_Nixon").unwrap();
        let dove = vt.parse("!Pacifist_Nixon").unwrap();
        // The classical diagnosis: two extensions, skeptically silent.
        assert_eq!(extensions(&theory, vt.len()).len(), 2);
        assert!(!skeptical(&theory, vt.len(), &pacifist));
        assert!(!skeptical(&theory, vt.len(), &dove));
    }

    #[test]
    fn penguin_suite_grounding_keeps_the_specificity_gap() {
        // The obvious normal encoding loses specificity: one extension
        // concludes Fly, one concludes !Fly — the §3.1 complaint the
        // statistical reading (minimal reference classes) repairs.
        let suite = parse_source(PENGUIN).unwrap();
        let (mut vt, theory) = suite.ground_theory().unwrap();
        let fly = vt.parse("Fly_Tweety").unwrap();
        assert_eq!(extensions(&theory, vt.len()).len(), 2);
        assert!(!skeptical(&theory, vt.len(), &fly));
    }

    #[test]
    fn constants_come_from_ground_atom_facts_in_order() {
        let suite =
            parse_suite("fact Quaker(Nixon)\nfact Republican(Nixon)\nfact Quaker(Marvin)\n")
                .unwrap();
        assert_eq!(suite.constants(), vec!["Nixon", "Marvin"]);
    }

    #[test]
    fn negated_facts_ground_with_their_polarity() {
        let suite =
            parse_suite("fact Bird(Tweety)\nfact !Winner(Tweety)\nrule Bird(x) -> Fly(x)\n")
                .unwrap();
        let (mut vt, theory) = suite.ground_theory().unwrap();
        assert_eq!(theory.facts.len(), 2);
        let fly = vt.parse("Fly_Tweety").unwrap();
        assert!(skeptical(&theory, vt.len(), &fly));
    }

    #[test]
    fn out_of_fragment_shapes_fail_the_bridge_not_the_compile() {
        let suite =
            parse_suite("fact Likes(A, B)\nfact Bird(Tweety)\nrule Bird(x) -> Fly(x)\n").unwrap();
        // The L≈ compile is fine...
        assert!(suite.to_l_source().contains("Likes(A, B)"));
        // ...the propositional bridge rejects the binary atom.
        assert!(suite.ground_theory().unwrap_err().contains("ground atom"));
    }

    #[test]
    fn parse_errors_carry_lines_and_reasons() {
        for (src, needle) in [
            ("fact F(C)\n", "expected a bare `@defaults` header"),
            ("@defaults extra\n", "bare `@defaults`"),
            ("@defaults\n", "no statements"),
            ("@defaults\nfact\n", "no payload"),
            ("@defaults\nrule Bird(x) Fly(x)\n", "no `->`"),
            ("@defaults\nrule Bird(x) ->_1 Fly(x)\n", "declaration order"),
            ("@defaults\nrule -> Fly(x)\n", "both sides"),
            ("@defaults\ntheorem F(C)\n", "unknown suite keyword"),
        ] {
            let err = parse_source(src).unwrap_err();
            assert!(err.message.contains(needle), "{src:?}: {err}");
        }
    }
}
