//! Reiter default theories `(W, D)`.
//!
//! A default is the inference rule `prereq : just₁, …, justₖ / consequent`
//! \[Rei80\]: if the prerequisite is derivable and every justification is
//! consistent with the final extension, conclude the consequent. The paper
//! (§3.1) writes the *normal* special case `A(x) : B(x) / B(x)` for the
//! default rule `A → B`; the *semi-normal* form `A : B ∧ ¬Ab / B` is the
//! classical device for restoring specificity \[RC81\], reproduced in
//! [`crate::reiter`]'s tests.

use rw_epsilon::prop::VarTable;
use rw_epsilon::PropFormula;

/// A single default rule `prereq : justifications / consequent`.
#[derive(Clone, Debug, PartialEq)]
pub struct Default {
    /// Must be derivable before the default applies.
    pub prereq: PropFormula,
    /// Each must be *consistent with the extension* for the default to
    /// apply (the nonmonotonic ingredient).
    pub justifications: Vec<PropFormula>,
    /// Added to the extension when the default applies.
    pub consequent: PropFormula,
}

impl Default {
    /// A fully general default.
    pub fn new(
        prereq: PropFormula,
        justifications: Vec<PropFormula>,
        consequent: PropFormula,
    ) -> Default {
        Default {
            prereq,
            justifications,
            consequent,
        }
    }

    /// A *normal* default `prereq : consequent / consequent` — the encoding
    /// of the paper's `A → B`.
    pub fn normal(prereq: PropFormula, consequent: PropFormula) -> Default {
        Default {
            prereq,
            justifications: vec![consequent.clone()],
            consequent,
        }
    }

    /// A *semi-normal* default `prereq : consequent ∧ guard / consequent`.
    /// The guard blocks the default whenever its negation is derivable,
    /// which is how \[RC81\] arranges specificity precedences.
    pub fn semi_normal(
        prereq: PropFormula,
        consequent: PropFormula,
        guard: PropFormula,
    ) -> Default {
        Default {
            justifications: vec![PropFormula::and(consequent.clone(), guard)],
            prereq,
            consequent,
        }
    }

    /// Highest variable index + 1 across all component formulas.
    pub fn var_count(&self) -> usize {
        self.justifications
            .iter()
            .map(PropFormula::var_count)
            .chain([self.prereq.var_count(), self.consequent.var_count()])
            .max()
            .unwrap_or(0)
    }
}

/// A default theory `(W, D)`: hard facts plus default rules.
#[derive(Clone, Debug, Default)]
pub struct DefaultTheory {
    /// The hard knowledge `W`.
    pub facts: Vec<PropFormula>,
    /// The default rules `D`.
    pub defaults: Vec<Default>,
}

impl DefaultTheory {
    /// An empty theory (no facts, no defaults).
    pub fn new() -> DefaultTheory {
        DefaultTheory::default()
    }

    /// Adds a hard (first-order, in the paper's terms) fact.
    pub fn fact(&mut self, f: PropFormula) -> &mut Self {
        self.facts.push(f);
        self
    }

    /// Adds a default rule.
    pub fn default_rule(&mut self, d: Default) -> &mut Self {
        self.defaults.push(d);
        self
    }

    /// Parses and adds a fact using the shared variable table.
    pub fn fact_str(&mut self, vt: &mut VarTable, src: &str) -> Result<&mut Self, String> {
        let f = vt.parse(src)?;
        Ok(self.fact(f))
    }

    /// Parses and adds a normal default `prereq -> consequent`.
    pub fn normal_str(
        &mut self,
        vt: &mut VarTable,
        prereq: &str,
        consequent: &str,
    ) -> Result<&mut Self, String> {
        let p = vt.parse(prereq)?;
        let c = vt.parse(consequent)?;
        Ok(self.default_rule(Default::normal(p, c)))
    }

    /// Highest variable index + 1 across the whole theory.
    pub fn var_count(&self) -> usize {
        self.facts
            .iter()
            .map(PropFormula::var_count)
            .chain(self.defaults.iter().map(Default::var_count))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_default_duplicates_consequent() {
        let mut vt = VarTable::new();
        let d = Default::normal(vt.parse("bird").unwrap(), vt.parse("fly").unwrap());
        assert_eq!(d.justifications, vec![d.consequent.clone()]);
    }

    #[test]
    fn semi_normal_guard_lands_in_justification() {
        let mut vt = VarTable::new();
        let d = Default::semi_normal(
            vt.parse("bird").unwrap(),
            vt.parse("fly").unwrap(),
            vt.parse("!penguin").unwrap(),
        );
        assert_eq!(d.consequent, vt.parse("fly").unwrap());
        assert_eq!(d.justifications.len(), 1);
        assert_eq!(d.justifications[0], vt.parse("fly & !penguin").unwrap());
    }

    #[test]
    fn var_count_spans_all_parts() {
        let mut vt = VarTable::new();
        let mut t = DefaultTheory::new();
        t.fact_str(&mut vt, "a").unwrap();
        t.normal_str(&mut vt, "b", "c").unwrap();
        assert_eq!(t.var_count(), 3);
        assert_eq!(vt.len(), 3);
    }

    #[test]
    fn builder_parse_errors_surface() {
        let mut vt = VarTable::new();
        let mut t = DefaultTheory::new();
        assert!(t.fact_str(&mut vt, "a &").is_err());
        assert!(t.normal_str(&mut vt, "(", "c").is_err());
    }
}
