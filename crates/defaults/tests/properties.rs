//! Property-based tests for the classical comparators: structural theorems
//! from the default-logic literature checked on randomly generated
//! theories.
//!
//! * Reiter [Rei80]: every normal default theory has at least one
//!   extension (Thm 3.1); distinct extensions are ⊆-incomparable
//!   (Thm 2.3); every extension's models refine the facts' models.
//! * Circumscription: minimal models are models; every model dominates a
//!   minimal one with the same fixed part; classical entailment implies
//!   circumscriptive entailment.
//! * Lexicographic entailment refines System Z [Leh95]: everything Z
//!   entails, lex entails.

use proptest::prelude::*;
use rw_defaults::{
    circ_entails, extensions, lex_entails, minimal_models, CircPolicy, DefaultTheory, WorldSet,
};
use rw_epsilon::prop::DefaultRule;
use rw_epsilon::{z_entails, PropFormula};

const NVARS: usize = 4;

/// Random quantifier-free formulas over `NVARS` variables.
fn arb_formula() -> impl Strategy<Value = PropFormula> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(PropFormula::Var),
        Just(PropFormula::True),
        Just(PropFormula::False),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(PropFormula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| PropFormula::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| PropFormula::or(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| PropFormula::implies(a, b)),
        ]
    })
}

/// A random *normal* default theory: a satisfiable-or-not fact plus up to
/// four normal defaults.
fn arb_normal_theory() -> impl Strategy<Value = DefaultTheory> {
    (
        arb_formula(),
        prop::collection::vec((arb_formula(), arb_formula()), 0..4),
    )
        .prop_map(|(fact, rules)| {
            let mut t = DefaultTheory::new();
            t.fact(fact);
            for (p, c) in rules {
                t.default_rule(rw_defaults::Default::normal(p, c));
            }
            t
        })
}

fn arb_rules() -> impl Strategy<Value = Vec<DefaultRule>> {
    prop::collection::vec(
        (arb_formula(), arb_formula()).prop_map(|(p, c)| DefaultRule::new(p, c)),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn normal_theories_have_extensions(t in arb_normal_theory()) {
        // Reiter's Theorem 3.1: normal default theories always have at
        // least one extension.
        prop_assert!(!extensions(&t, NVARS).is_empty());
    }

    #[test]
    fn extensions_refine_facts_and_are_incomparable(t in arb_normal_theory()) {
        let mut facts = WorldSet::full(NVARS);
        for f in &t.facts {
            facts = facts.intersect(&WorldSet::models(f, NVARS));
        }
        let exts = extensions(&t, NVARS);
        for e in &exts {
            prop_assert!(e.models.is_subset(&facts));
        }
        // Theorem 2.3: distinct extensions are logically incomparable —
        // neither's model set contains the other's.
        for (i, a) in exts.iter().enumerate() {
            for b in exts.iter().skip(i + 1) {
                prop_assert!(!a.models.is_subset(&b.models));
                prop_assert!(!b.models.is_subset(&a.models));
            }
        }
    }

    #[test]
    fn generating_defaults_are_applicable_in_their_extension(t in arb_normal_theory()) {
        for e in extensions(&t, NVARS) {
            for &i in &e.generating {
                let d = &t.defaults[i];
                // Prerequisite holds in the extension, justifications are
                // consistent with it (normal: justification = consequent).
                prop_assert!(e.models.entails(&d.prereq));
                if e.is_consistent() {
                    for j in &d.justifications {
                        prop_assert!(e.models.consistent_with(j));
                    }
                }
            }
        }
    }

    #[test]
    fn minimal_models_are_models_and_cover(f in arb_formula()) {
        let policy = CircPolicy::with_fixed(vec![0, 1], vec![2]);
        let all = WorldSet::models(&f, NVARS);
        let minimal = minimal_models(&f, &policy, NVARS);
        let min_mask = 0b0011u32;
        let fix_mask = 0b0100u32;
        for &m in &minimal {
            prop_assert!(all.contains(m));
        }
        // Coverage: every model weakly dominates some minimal model that
        // agrees on the fixed variables.
        for m in all.iter() {
            prop_assert!(
                minimal.iter().any(|&m2| {
                    m2 & fix_mask == m & fix_mask
                        && m2 & min_mask & !(m & min_mask) == 0
                }),
                "world {m:#06b} has no minimal model below it"
            );
        }
    }

    #[test]
    fn classical_entailment_implies_circumscriptive(f in arb_formula(), q in arb_formula()) {
        let policy = CircPolicy::minimize(vec![0, 1]);
        let all = WorldSet::models(&f, NVARS);
        if all.is_subset(&WorldSet::models(&q, NVARS)) {
            prop_assert!(circ_entails(&f, &policy, NVARS, &q));
        }
    }

    #[test]
    fn lex_refines_system_z(rules in arb_rules(), a in arb_formula(), c in arb_formula()) {
        // Lehmann: the lexicographic closure contains the rational closure
        // (= System Z on propositional bases).
        if let (Some(z), Some(lex)) = (z_entails(&rules, &a, &c), lex_entails(&rules, &a, &c)) {
            if z {
                prop_assert!(lex, "Z entails but lex does not");
            }
        }
    }

    #[test]
    fn lex_never_entails_both_a_conclusion_and_its_negation(
        rules in arb_rules(), a in arb_formula(), c in arb_formula()
    ) {
        // Consistency preservation: for a satisfiable premise, lex cannot
        // conclude both c and ¬c.
        let sat = WorldSet::models(&a, NVARS);
        if !sat.is_empty() {
            let pos = lex_entails(&rules, &a, &c);
            let neg = lex_entails(&rules, &a, &PropFormula::not(c));
            if let (Some(p), Some(n)) = (pos, neg) {
                prop_assert!(!(p && n));
            }
        }
    }
}
