//! Exchangeable priors over unary worlds.
//!
//! Random worlds weighs every world equally. The alternatives the paper
//! discusses in §7.3 keep the *exchangeability* (permuting domain elements
//! does not change a world's probability) but drop uniformity: a world's
//! probability depends only on how many elements land in each atom. Every
//! such prior is characterized by a weight `q(n⃗)` on atom-count vectors —
//! the per-world probability — and plugs into the profile sweep of
//! `rw-unary` unchanged.
//!
//! Three families are provided:
//!
//! * [`Prior::PerPredicate`] — the **random-propensities** method of
//!   \[BGHK92\]: each predicate `P` draws an independent propensity
//!   `b_P ~ U[0,1]` and every element satisfies `P` independently with
//!   probability `b_P`. Integrating the propensities out gives
//!   `q(n⃗) = Π_P m_P! (N − m_P)! / (N + 1)!` with `m_P` the number of
//!   elements satisfying `P`.
//! * [`Prior::CarnapStar`] — Carnap's `m*` \[Car50\]: a single uniform
//!   (Dirichlet(1,…,1)) propensity vector over the `A` atoms;
//!   `q(n⃗) = (A−1)! Π_a n_a! / (N + A − 1)!`. For one predicate this
//!   coincides with per-predicate propensities.
//! * [`Prior::Lambda`] — Carnap's λ-continuum \[Car52\]: Dirichlet(λ/A,…,λ/A)
//!   over atoms. `λ = A` recovers `m*`; `λ → ∞` recovers random worlds
//!   (the predictive probability of an atom tends to the uniform `1/A`
//!   regardless of observations).
//!
//! The induced single-element predictive rule (`Pr(next element in atom a |
//! counts n⃗)`) is the *rule of succession* of each family, exposed as
//! [`Prior::succession`] and pinned against the sweep engine in tests.

use rw_util::{ln_gamma, FactTable, LogWeight};

/// An exchangeable prior over unary worlds, as a weight on atom counts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Prior {
    /// Independent per-predicate propensities, uniform on `[0,1]` \[BGHK92\].
    PerPredicate,
    /// Carnap's `m*`: uniform (Dirichlet(1,…,1)) over atom distributions.
    CarnapStar,
    /// Carnap's λ-continuum: Dirichlet(λ/A,…,λ/A) over atom distributions.
    /// Requires `λ > 0`.
    Lambda(f64),
}

impl Prior {
    /// The per-world log-probability `q(n⃗)` of a world whose atom counts
    /// are `counts`, over a vocabulary of `preds` unary predicates (so
    /// `counts.len() == 2^preds`). `fact` must cover `N + counts.len()`.
    ///
    /// Weights are unnormalized only in the sense shared by every ratio
    /// computation: `q` *is* the world probability, so dividing two swept
    /// totals cancels nothing beyond what the definition cancels.
    pub fn log_weight(&self, counts: &[usize], preds: usize, fact: &FactTable) -> LogWeight {
        debug_assert_eq!(counts.len(), 1usize << preds);
        let n: usize = counts.iter().sum();
        match *self {
            Prior::PerPredicate => {
                let mut ln = 0.0;
                for p in 0..preds {
                    let m: usize = counts
                        .iter()
                        .enumerate()
                        .filter(|&(atom, _)| atom >> p & 1 == 1)
                        .map(|(_, &c)| c)
                        .sum();
                    ln +=
                        fact.ln_factorial(m) + fact.ln_factorial(n - m) - fact.ln_factorial(n + 1);
                }
                LogWeight::from_ln(ln)
            }
            Prior::CarnapStar => {
                let a = counts.len();
                let mut ln = fact.ln_factorial(a - 1) - fact.ln_factorial(n + a - 1);
                for &c in counts {
                    ln += fact.ln_factorial(c);
                }
                LogWeight::from_ln(ln)
            }
            Prior::Lambda(lambda) => {
                assert!(lambda > 0.0, "λ-continuum needs λ > 0, got {lambda}");
                let a = counts.len() as f64;
                let alpha = lambda / a;
                let mut ln = ln_gamma(lambda) - ln_gamma(n as f64 + lambda);
                for &c in counts {
                    ln += ln_gamma(c as f64 + alpha) - ln_gamma(alpha);
                }
                LogWeight::from_ln(ln)
            }
        }
    }

    /// The rule of succession: the predictive probability that a fresh
    /// element lands in atom `atom`, given `counts` observed elements.
    ///
    /// For [`Prior::PerPredicate`] the predictive factorizes over
    /// predicates: `Π_P (m_P + 1)/(n + 2)` or its complement per bit. For
    /// the Dirichlet families it is `(n_a + λ/A)/(n + λ)`.
    ///
    /// ```
    /// use rw_propensity::Prior;
    ///
    /// // One predicate: atom 1 = P, atom 0 = ¬P. After 2 successes and
    /// // 1 failure, Laplace predicts (2+1)/(3+2) = 0.6.
    /// let counts = [1, 2];
    /// assert!((Prior::PerPredicate.succession(&counts, 1, 1) - 0.6).abs() < 1e-12);
    /// ```
    pub fn succession(&self, counts: &[usize], preds: usize, atom: usize) -> f64 {
        debug_assert_eq!(counts.len(), 1usize << preds);
        let n: usize = counts.iter().sum();
        match *self {
            Prior::PerPredicate => {
                let mut p = 1.0;
                for b in 0..preds {
                    let m: usize = counts
                        .iter()
                        .enumerate()
                        .filter(|&(a, _)| a >> b & 1 == 1)
                        .map(|(_, &c)| c)
                        .sum();
                    let yes = (m as f64 + 1.0) / (n as f64 + 2.0);
                    p *= if atom >> b & 1 == 1 { yes } else { 1.0 - yes };
                }
                p
            }
            Prior::CarnapStar => {
                let a = counts.len() as f64;
                (counts[atom] as f64 + 1.0) / (n as f64 + a)
            }
            Prior::Lambda(lambda) => {
                let a = counts.len() as f64;
                (counts[atom] as f64 + lambda / a) / (n as f64 + lambda)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10 * (1.0 + a.abs().max(b.abs()))
    }

    /// Enumerate all `2^(preds·n)` worlds explicitly and sum `q` — every
    /// prior must be a probability distribution over worlds.
    fn total_mass(prior: Prior, preds: usize, n: usize) -> f64 {
        let atoms = 1usize << preds;
        let fact = FactTable::new(n + atoms + 1);
        let mut total = 0.0;
        let mut assignment = vec![0usize; n];
        loop {
            let mut counts = vec![0usize; atoms];
            for &a in &assignment {
                counts[a] += 1;
            }
            total += prior.log_weight(&counts, preds, &fact).ln().exp();
            // Odometer over atom assignments.
            let mut i = 0;
            loop {
                if i == n {
                    return total;
                }
                assignment[i] += 1;
                if assignment[i] < atoms {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn priors_are_normalized() {
        for prior in [
            Prior::PerPredicate,
            Prior::CarnapStar,
            Prior::Lambda(2.0),
            Prior::Lambda(0.5),
        ] {
            for (preds, n) in [(1usize, 4usize), (2, 3)] {
                let mass = total_mass(prior, preds, n);
                assert!(
                    (mass - 1.0).abs() < 1e-9,
                    "{prior:?} over {preds} preds, N={n}: mass {mass}"
                );
            }
        }
    }

    #[test]
    fn carnap_star_equals_lambda_a() {
        let fact = FactTable::new(64);
        let counts = [3usize, 1, 2, 0];
        let star = Prior::CarnapStar.log_weight(&counts, 2, &fact).ln();
        let lam = Prior::Lambda(4.0).log_weight(&counts, 2, &fact).ln();
        assert!(close(star, lam), "{star} vs {lam}");
    }

    #[test]
    fn per_predicate_equals_carnap_star_on_one_predicate() {
        let fact = FactTable::new(64);
        for counts in [[5usize, 3], [0, 7], [4, 4]] {
            let a = Prior::PerPredicate.log_weight(&counts, 1, &fact).ln();
            let b = Prior::CarnapStar.log_weight(&counts, 1, &fact).ln();
            assert!(close(a, b), "{counts:?}: {a} vs {b}");
        }
    }

    #[test]
    fn large_lambda_approaches_uniform_iid() {
        // λ → ∞ gives the i.i.d.-uniform world probability A^(-N).
        let fact = FactTable::new(64);
        let counts = [2usize, 1, 1, 0];
        let q = Prior::Lambda(1e7).log_weight(&counts, 2, &fact).ln();
        let uniform = -(4f64.ln()) * 4.0;
        assert!((q - uniform).abs() < 1e-4, "{q} vs {uniform}");
    }

    #[test]
    fn succession_laplace_rule() {
        // One predicate, 2 successes + 1 failure: (k+1)/(n+2) = 3/5.
        let counts = [1usize, 2]; // atom 1 = P true.
        for prior in [Prior::PerPredicate, Prior::CarnapStar, Prior::Lambda(2.0)] {
            assert!(
                close(prior.succession(&counts, 1, 1), 0.6),
                "{prior:?} succession"
            );
        }
    }

    #[test]
    fn succession_matches_weight_ratio() {
        // Pr(next = atom a | n⃗) = q(n⃗ + e_a) / q(n⃗), by definition of the
        // predictive distribution.
        let fact = FactTable::new(64);
        let counts = [2usize, 3, 0, 1];
        for prior in [Prior::PerPredicate, Prior::CarnapStar, Prior::Lambda(3.5)] {
            for atom in 0..4 {
                let mut bumped = counts;
                bumped[atom] += 1;
                let ratio = prior.log_weight(&bumped, 2, &fact).ln()
                    - prior.log_weight(&counts, 2, &fact).ln();
                let succ = prior.succession(&counts, 2, atom).ln();
                assert!(
                    (ratio - succ).abs() < 1e-9,
                    "{prior:?} atom {atom}: {ratio} vs {succ}"
                );
            }
        }
    }

    #[test]
    fn succession_sums_to_one() {
        let counts = [2usize, 3, 0, 1];
        for prior in [Prior::PerPredicate, Prior::CarnapStar, Prior::Lambda(0.7)] {
            let total: f64 = (0..4).map(|a| prior.succession(&counts, 2, a)).sum();
            assert!((total - 1.0).abs() < 1e-10, "{prior:?}: {total}");
        }
    }

    #[test]
    #[should_panic(expected = "λ > 0")]
    fn lambda_must_be_positive() {
        let fact = FactTable::new(8);
        let _ = Prior::Lambda(0.0).log_weight(&[1, 1], 1, &fact);
    }
}
