//! The propensity counting engine: exact `Pr_N^τ` under an exchangeable
//! prior, plus `N`-sweeps with Aitken extrapolation for the limit.
//!
//! Where random worlds computes `#worlds(φ ∧ KB) / #worlds(KB)`, a
//! propensity method computes `Pr(φ ∧ KB) / Pr(KB)` under the non-uniform
//! world distribution of a [`Prior`]. Both are sums over atom-count
//! profiles, so this engine drives `rw-unary`'s weighted profile sweep with
//! the prior's `q(n⃗)` hook — everything about the language (quantifiers,
//! nested conditional proportions, constants with equality) carries over
//! unchanged.

use crate::prior::Prior;
use rw_logic::ast::Formula;
use rw_logic::{KnowledgeBase, Tolerances};
use rw_unary::{atom_count, UnaryEngine, UnaryError};
use rw_util::FactTable;

/// Exact finite-`N` degrees of belief under an exchangeable prior.
#[derive(Clone, Debug)]
pub struct PropensityEngine {
    /// The exchangeable prior supplying per-world weights.
    pub prior: Prior,
    /// Profile enumeration budget, forwarded to the unary sweep.
    pub max_profiles: u128,
}

impl PropensityEngine {
    /// An engine with the default profile budget.
    pub fn new(prior: Prior) -> PropensityEngine {
        PropensityEngine {
            prior,
            max_profiles: UnaryEngine::default().max_profiles,
        }
    }

    /// `Pr_N^τ(query | KB)` under the prior; `None` when the KB has
    /// prior-probability zero at this `(N, τ⃗)` (no satisfying world).
    pub fn degree_of_belief_at(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        n: usize,
        tol: &Tolerances,
    ) -> Result<Option<f64>, UnaryError> {
        let atoms = atom_count(kb.vocab());
        let preds = kb.vocab().pred_count();
        let fact = FactTable::new(n + atoms + 1);
        let engine = UnaryEngine {
            max_profiles: self.max_profiles,
        };
        let totals = engine.sweep_weighted(kb, query, n, tol, |counts| {
            self.prior.log_weight(counts, preds, &fact)
        })?;
        if totals.kb_weight.is_zero() {
            return Ok(None);
        }
        Ok(Some(totals.query_weight.ratio(totals.kb_weight)))
    }

    /// The belief at each domain size in `ns` (a "figure series": the
    /// convergence trend as `N → ∞` at fixed tolerances).
    pub fn belief_trend(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        ns: &[usize],
        tol: &Tolerances,
    ) -> Result<Vec<(usize, Option<f64>)>, UnaryError> {
        ns.iter()
            .map(|&n| Ok((n, self.degree_of_belief_at(kb, query, n, tol)?)))
            .collect()
    }

    /// Estimates `lim_{N→∞} Pr_N^τ` from a geometric trend, using Aitken's
    /// Δ² extrapolation on the last three defined sweep values when the
    /// increments contract, else the final value. Returns `None` if no
    /// sweep point is defined.
    pub fn limit_estimate(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        ns: &[usize],
        tol: &Tolerances,
    ) -> Result<Option<f64>, UnaryError> {
        let trend = self.belief_trend(kb, query, ns, tol)?;
        let defined: Vec<f64> = trend.into_iter().filter_map(|(_, v)| v).collect();
        Ok(aitken(&defined))
    }
}

/// Aitken Δ² acceleration of the tail of a sequence; falls back to the last
/// value when the increments do not contract (or there are fewer than 3
/// points).
pub(crate) fn aitken(values: &[f64]) -> Option<f64> {
    let &[.., a, b, c] = values else {
        return values.last().copied();
    };
    let (d1, d2) = (b - a, c - b);
    let denom = d2 - d1;
    if denom.abs() < 1e-12 || d2.abs() >= d1.abs() {
        return Some(c);
    }
    let accel = c - d2 * d2 / denom;
    // Extrapolation should stay inside [0,1]; a wild value means the trend
    // is not geometric, so trust the last point instead.
    if (0.0..=1.0).contains(&accel) {
        Some(accel)
    } else {
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rw_util::Rat;

    fn kb_and_query(kb_src: &str, q_src: &str) -> (KnowledgeBase, Formula) {
        let mut kb = KnowledgeBase::parse(kb_src).unwrap();
        let q = kb.parse_query(q_src).unwrap();
        (kb, q)
    }

    #[test]
    fn large_lambda_matches_random_worlds() {
        // λ → ∞ is the uniform-worlds limit: the λ-continuum engine must
        // agree with the rw-unary counting engine.
        let (kb, q) = kb_and_query("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)", "Hep(Eric)");
        let tol = Tolerances::uniform(Rat::new(1, 10));
        let rw = rw_unary::degree_of_belief_at(&kb, &q, 24, &tol)
            .unwrap()
            .unwrap();
        let engine = PropensityEngine::new(Prior::Lambda(1e8));
        let prop = engine
            .degree_of_belief_at(&kb, &q, 24, &tol)
            .unwrap()
            .unwrap();
        assert!((rw - prop).abs() < 1e-4, "rw {rw} vs λ→∞ {prop}");
    }

    #[test]
    fn rule_of_succession_from_constants() {
        // Two positive and one negative observation: Laplace gives
        // (2+1)/(3+2) = 0.6 once unique names dominate.
        let (kb, q) = kb_and_query("P(C1); P(C2); !P(C3)", "P(C)");
        let tol = Tolerances::uniform(Rat::new(1, 10));
        for prior in [Prior::PerPredicate, Prior::CarnapStar] {
            let engine = PropensityEngine::new(prior);
            let v = engine
                .limit_estimate(&kb, &q, &[32, 64, 128], &tol)
                .unwrap()
                .unwrap();
            assert!((v - 0.6).abs() < 0.02, "{prior:?}: {v}");
        }
    }

    #[test]
    fn random_worlds_does_not_learn_from_constants() {
        // §7.3: the same KB leaves random worlds at 1/2 — observations of
        // other individuals do not move the fresh constant's belief.
        let (kb, q) = kb_and_query("P(C1); P(C2); !P(C3)", "P(C)");
        let tol = Tolerances::uniform(Rat::new(1, 10));
        let v = rw_unary::degree_of_belief_at(&kb, &q, 96, &tol)
            .unwrap()
            .unwrap();
        assert!((v - 0.5).abs() < 0.02, "random worlds moved: {v}");
    }

    #[test]
    fn aitken_accelerates_geometric_series() {
        // v_k = 1 - 2^-k → limit 1.
        let vals = [0.5, 0.75, 0.875];
        let a = aitken(&vals).unwrap();
        assert!((a - 1.0).abs() < 1e-9, "{a}");
        // Short sequences fall back to the last value.
        assert_eq!(aitken(&[0.3, 0.4]), Some(0.4));
        assert_eq!(aitken(&[]), None);
    }

    #[test]
    fn zero_probability_kb_returns_none() {
        let (kb, q) = kb_and_query("P(C); !P(C)", "P(C)");
        let tol = Tolerances::uniform(Rat::new(1, 10));
        let engine = PropensityEngine::new(Prior::CarnapStar);
        assert_eq!(engine.degree_of_belief_at(&kb, &q, 8, &tol).unwrap(), None);
    }

    #[test]
    fn budget_violations_surface() {
        let (kb, q) = kb_and_query("||P(x)||_x ~=_1 0.5; ||Q(x)||_x ~=_2 0.5", "P(C)");
        let tol = Tolerances::uniform(Rat::new(1, 10));
        let engine = PropensityEngine {
            prior: Prior::CarnapStar,
            max_profiles: 10,
        };
        assert!(matches!(
            engine.degree_of_belief_at(&kb, &q, 64, &tol),
            Err(UnaryError::TooManyProfiles { .. })
        ));
    }
}
