#![warn(missing_docs)]

//! The **random-propensities** method (paper §7.3, \[BGHK92\]) and its
//! exchangeable relatives, as drop-in alternatives to the uniform prior of
//! random worlds.
//!
//! Random worlds assigns every first-order world the same probability. Its
//! acknowledged blind spot (§7.3) is *learning*: statistics observed on a
//! sample do not transfer to unsampled individuals, because the uniform
//! prior makes elements' properties independent. The random-propensities
//! variant replaces the uniform prior with a two-stage one — draw a
//! *propensity* for each property, then populate the domain i.i.d. — which
//! couples elements through the shared propensity and therefore learns
//! (and, as the paper notes, sometimes learns too eagerly).
//!
//! The crate provides:
//!
//! * [`Prior`] — the per-world weight functions: per-predicate propensities
//!   \[BGHK92\], Carnap's `m*`, and the Carnap λ-continuum (with `λ → ∞`
//!   recovering random worlds), together with their rules of succession;
//! * [`PropensityEngine`] — exact finite-`N` degrees of belief by the same
//!   profile sweep as `rw-unary`, plus `N`-sweep limit estimation;
//! * [`learning`] — the packaged §7.3 scenarios (sampling, Laplace
//!   succession, the over-eager giraffe) used by the experiment harness.

pub mod engine;
pub mod learning;
pub mod prior;

pub use engine::PropensityEngine;
pub use learning::{giraffe, sampling, succession, Scenario};
pub use prior::Prior;
