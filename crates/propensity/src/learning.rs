//! The §7.3 learning experiments, packaged as reusable scenario builders.
//!
//! The paper's acceptance-and-learning discussion makes three concrete,
//! checkable claims:
//!
//! 1. **Random worlds does not learn from samples.** Given statistics over
//!    a sampled subpopulation `S`, random worlds "treats the birds in `S`
//!    and those outside `S` as two unrelated populations" and keeps the
//!    default 1/2 for an unsampled individual.
//! 2. **Random propensities does learn from samples** \[BGHK92\]: the same
//!    KB moves the unsampled individual's belief to (approximately) the
//!    sampled frequency.
//! 3. **Random propensities learns "too often"**: from the bare universal
//!    `∀x (Giraffe(x) ⇒ Tall(x))` it starts concluding that *everything*
//!    is probably tall — the over-eagerness the paper criticizes.
//!
//! Each scenario returns the knowledge base, the query, and the values the
//! different methods should (approximately) produce; the experiment harness
//! and integration tests drive them.

use rw_logic::ast::Formula;
use rw_logic::KnowledgeBase;

/// A packaged learning scenario: a KB, a query about an *unsampled*
/// individual, and prose describing the contrast being exercised.
pub struct Scenario {
    /// Short identifier used in harness output.
    pub name: &'static str,
    /// The knowledge base, including the sample/observations.
    pub kb: KnowledgeBase,
    /// The query about the unsampled individual.
    pub query: Formula,
    /// What random worlds converges to (paper's claim).
    pub random_worlds_expected: f64,
    /// Rough target for the per-predicate propensity method (`None` when
    /// the method's limit is a slow drift rather than a fixed point, as in
    /// the giraffe scenario).
    pub propensity_expected: Option<f64>,
}

/// Sampling scenario: `S` is a sample with `||P(x) | S(x)|| ≈ freq`, the
/// sample is half the population, and the queried individual is outside
/// the sample. `freq` must be expressible at denominator 100.
pub fn sampling(freq_percent: u32) -> Scenario {
    assert!(freq_percent <= 100);
    let src = format!("||P(x) | S(x)||_x ~=_1 0.{freq_percent:02}; ||S(x)||_x ~=_2 0.5; !S(C)");
    let mut kb = KnowledgeBase::parse(&src).unwrap();
    let query = kb.parse_query("P(C)").unwrap();
    Scenario {
        name: "sampling",
        kb,
        query,
        random_worlds_expected: 0.5,
        propensity_expected: Some(freq_percent as f64 / 100.0),
    }
}

/// Succession scenario: `k` positive and `n - k` negative observations as
/// named constants; Laplace's rule of succession predicts `(k+1)/(n+2)`.
pub fn succession(k: usize, n: usize) -> Scenario {
    assert!(k <= n && n > 0);
    let mut parts: Vec<String> = (0..k).map(|i| format!("P(C{i})")).collect();
    parts.extend((k..n).map(|i| format!("!P(C{i})")));
    let mut kb = KnowledgeBase::parse(&parts.join("; ")).unwrap();
    let query = kb.parse_query("P(Fresh)").unwrap();
    Scenario {
        name: "succession",
        kb,
        query,
        random_worlds_expected: 0.5,
        propensity_expected: Some((k as f64 + 1.0) / (n as f64 + 2.0)),
    }
}

/// The giraffe scenario: the bare universal `∀x (G(x) ⇒ T(x))`. Random
/// worlds (= maximum entropy over the three allowed atoms) answers 2/3;
/// per-predicate propensities drift toward 1 as `N` grows — "almost
/// everything is tall".
pub fn giraffe() -> Scenario {
    let mut kb = KnowledgeBase::parse("forall x (G(x) => T(x))").unwrap();
    let query = kb.parse_query("T(C)").unwrap();
    Scenario {
        name: "giraffe",
        kb,
        query,
        random_worlds_expected: 2.0 / 3.0,
        propensity_expected: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PropensityEngine;
    use crate::prior::Prior;
    use rw_logic::Tolerances;
    use rw_util::Rat;

    #[test]
    fn sampling_scenario_propensity_learns_random_worlds_does_not() {
        let s = sampling(75);
        let tol = Tolerances::uniform(Rat::new(1, 10));
        // Random worlds: stuck at 1/2 (claim 1).
        let rw = rw_unary::degree_of_belief_at(&s.kb, &s.query, 40, &tol)
            .unwrap()
            .unwrap();
        assert!(
            (rw - s.random_worlds_expected).abs() < 0.03,
            "random worlds at {rw}"
        );
        // Per-predicate propensities: pulled to the sample frequency
        // (claim 2); the window is ±τ plus finite-N slack.
        let engine = PropensityEngine::new(Prior::PerPredicate);
        let prop = engine
            .degree_of_belief_at(&s.kb, &s.query, 40, &tol)
            .unwrap()
            .unwrap();
        assert!(
            (prop - s.propensity_expected.unwrap()).abs() < 0.12,
            "propensity at {prop}"
        );
        assert!(prop > 0.63, "learning should move well past 1/2: {prop}");
    }

    #[test]
    fn carnap_star_does_not_transfer_across_the_sample_boundary() {
        // The atom-Dirichlet prior (Carnap's m*) couples atoms only through
        // normalization: by Dirichlet aggregation, the P-proportion inside
        // ¬S is independent of the constrained P-proportion inside S, so no
        // learning transfers. This pins down *which* exchangeable priors
        // learn: per-predicate propensities do, m* does not.
        let s = sampling(75);
        let tol = Tolerances::uniform(Rat::new(1, 10));
        let engine = PropensityEngine::new(Prior::CarnapStar);
        let v = engine
            .degree_of_belief_at(&s.kb, &s.query, 40, &tol)
            .unwrap()
            .unwrap();
        assert!((v - 0.5).abs() < 0.03, "m* should stay near 1/2: {v}");
    }

    #[test]
    fn succession_scenario_matches_laplace() {
        let s = succession(3, 4);
        let tol = Tolerances::uniform(Rat::new(1, 10));
        let engine = PropensityEngine::new(Prior::PerPredicate);
        let v = engine
            .limit_estimate(&s.kb, &s.query, &[32, 64, 128], &tol)
            .unwrap()
            .unwrap();
        assert!(
            (v - s.propensity_expected.unwrap()).abs() < 0.02,
            "expected (3+1)/(4+2) = {}, got {v}",
            s.propensity_expected.unwrap()
        );
    }

    #[test]
    fn giraffe_scenario_learns_too_often() {
        let s = giraffe();
        let tol = Tolerances::uniform(Rat::new(1, 10));
        // Random worlds: 2/3 (uniform over the three allowed atoms).
        let rw = rw_unary::degree_of_belief_at(&s.kb, &s.query, 48, &tol)
            .unwrap()
            .unwrap();
        assert!((rw - 2.0 / 3.0).abs() < 0.03, "random worlds at {rw}");
        // Per-predicate propensities drift upward with N.
        let engine = PropensityEngine::new(Prior::PerPredicate);
        let trend = engine
            .belief_trend(&s.kb, &s.query, &[16, 48, 96], &tol)
            .unwrap();
        let vals: Vec<f64> = trend.into_iter().map(|(_, v)| v.unwrap()).collect();
        assert!(
            vals[0] < vals[1] && vals[1] < vals[2],
            "monotone drift expected: {vals:?}"
        );
        assert!(
            vals[2] > rw + 0.02,
            "propensities ({}) should overshoot random worlds ({rw})",
            vals[2]
        );
    }
}
