//! Cross-engine property tests: the λ-continuum interpolates between
//! Carnap's `m*` (λ = A) and random worlds (λ → ∞) on *randomly generated*
//! unary knowledge bases, and exactness invariants hold under every prior.

use proptest::prelude::*;
use rw_logic::{KnowledgeBase, Tolerances};
use rw_propensity::{Prior, PropensityEngine};
use rw_util::Rat;

/// A random small unary KB over predicates P, Q and constants C1, C2:
/// a couple of proportion statements plus optional literals.
fn arb_kb() -> impl Strategy<Value = String> {
    let stat = (0..2usize, 1..10i32).prop_map(|(p, num)| {
        let pred = if p == 0 { "P" } else { "Q" };
        format!("||{pred}(x)||_x ~=_{} 0.{num}", p + 1)
    });
    let cond_stat = (1..10i32).prop_map(|num| format!("||P(x) | Q(x)||_x ~=_3 0.{num}"));
    let lit = (0..2usize, any::<bool>(), 0..2usize).prop_map(|(p, pos, c)| {
        let pred = if p == 0 { "P" } else { "Q" };
        let neg = if pos { "" } else { "!" };
        format!("{neg}{pred}(C{})", c + 1)
    });
    (stat, prop::option::of(cond_stat), prop::option::of(lit)).prop_map(|(s, cs, l)| {
        let mut parts = vec![s];
        parts.extend(cs);
        parts.extend(l);
        parts.join("; ")
    })
}

fn belief_at(prior: Option<Prior>, kb_src: &str, q_src: &str, n: usize) -> Option<f64> {
    let mut kb = KnowledgeBase::parse(kb_src).unwrap();
    let q = kb.parse_query(q_src).unwrap();
    let tol = Tolerances::uniform(Rat::new(1, 6));
    match prior {
        None => rw_unary::degree_of_belief_at(&kb, &q, n, &tol).unwrap(),
        Some(p) => PropensityEngine::new(p)
            .degree_of_belief_at(&kb, &q, n, &tol)
            .unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lambda_limit_agrees_with_uniform_counting(kb in arb_kb()) {
        let rw = belief_at(None, &kb, "P(C1)", 12);
        let lam = belief_at(Some(Prior::Lambda(1e9)), &kb, "P(C1)", 12);
        match (rw, lam) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-4, "{kb}: {a} vs {b}"),
            (a, b) => prop_assert_eq!(a.is_some(), b.is_some(), "{}", kb),
        }
    }

    #[test]
    fn carnap_star_is_lambda_at_atom_count(kb in arb_kb()) {
        // m* = Dirichlet(1,…,1) = the λ-continuum at λ = A, where A is the
        // atom count of the KB's own vocabulary (the random KB may mention
        // one predicate or two).
        // Parse the query too: it may extend the vocabulary (e.g. a KB
        // mentioning only Q gains P from the query).
        let atoms = {
            let mut parsed = KnowledgeBase::parse(&kb).unwrap();
            parsed.parse_query("P(C1)").unwrap();
            1usize << parsed.vocab().pred_count()
        };
        let star = belief_at(Some(Prior::CarnapStar), &kb, "P(C1)", 10);
        let lam = belief_at(Some(Prior::Lambda(atoms as f64)), &kb, "P(C1)", 10);
        match (star, lam) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{kb}: {a} vs {b}"),
            (a, b) => prop_assert_eq!(a.is_some(), b.is_some(), "{}", kb),
        }
    }

    #[test]
    fn complement_law_under_random_kbs(kb in arb_kb()) {
        for prior in [Prior::PerPredicate, Prior::CarnapStar, Prior::Lambda(2.5)] {
            let pos = belief_at(Some(prior), &kb, "Q(C2)", 10);
            let neg = belief_at(Some(prior), &kb, "!Q(C2)", 10);
            match (pos, neg) {
                (Some(a), Some(b)) => {
                    prop_assert!((a + b - 1.0).abs() < 1e-9, "{kb} under {prior:?}: {a}+{b}")
                }
                (a, b) => prop_assert_eq!(a.is_some(), b.is_some(), "{}", kb),
            }
        }
    }
}
