//! Symbolic evaluation of unary `L≈` sentences on world *profiles*.
//!
//! A profile fixes the atom-count vector, the equality pattern of the
//! constants and the atom of each constant block — everything a unary
//! sentence's truth value can depend on. The evaluator never touches
//! concrete elements; quantifiers and proportion subscripts range over
//! *element descriptors*:
//!
//! * `Block(b)` — the (distinct) element denoted by constant block `b`;
//! * `Fresh(s)` — an anonymous element of a known atom, distinct from every
//!   block and from every other active `Fresh` descriptor.
//!
//! Within a profile class, any two anonymous elements of the same atom are
//! exchangeable by a domain permutation fixing the named elements, so a
//! quantifier needs one case per block, one per active fresh descriptor, and
//! one per atom with spare capacity (multiplicity `n_a − #named in a`).
//! Proportion counts follow by multiplying case multiplicities.

use crate::atoms::atom_satisfies;
use rw_logic::ast::{CmpOp, Formula, PropExpr, Term};
use rw_logic::{Tolerances, VarId, Vocabulary};
use rw_util::Rat;

/// A world-equivalence class for a unary vocabulary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Profile {
    /// Elements per atom; sums to the domain size.
    pub counts: Vec<usize>,
    /// Atom of each constant block.
    pub block_atoms: Vec<usize>,
    /// Block of each constant (a restricted growth string).
    pub const_block: Vec<usize>,
}

impl Profile {
    pub fn domain_size(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Number of constant blocks.
    pub fn block_count(&self) -> usize {
        self.block_atoms.len()
    }

    /// True when every atom can host its blocks (`n_a ≥ #blocks in a`);
    /// profiles violating this have weight zero.
    pub fn is_feasible(&self) -> bool {
        let mut need = vec![0usize; self.counts.len()];
        for &a in &self.block_atoms {
            need[a] += 1;
        }
        need.iter().zip(&self.counts).all(|(&k, &n)| k <= n)
    }
}

/// An element descriptor (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ElemRef {
    Block(usize),
    Fresh(usize),
}

/// The value of a proportion expression on a profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PValue {
    Def(Rat),
    Undef,
}

impl PValue {
    fn map2(self, other: PValue, f: impl FnOnce(Rat, Rat) -> Rat) -> PValue {
        match (self, other) {
            (PValue::Def(a), PValue::Def(b)) => PValue::Def(f(a, b)),
            _ => PValue::Undef,
        }
    }
}

/// Reusable evaluator over profiles of a fixed unary vocabulary.
pub struct ProfileEvaluator<'a> {
    vocab: &'a Vocabulary,
    tol: &'a Tolerances,
    profile: Profile,
    blocks_in_atom: Vec<usize>,
    valuation: Vec<Option<ElemRef>>,
    /// Atoms of the active fresh descriptors, indexed by slot.
    fresh: Vec<usize>,
}

impl<'a> ProfileEvaluator<'a> {
    pub fn new(
        vocab: &'a Vocabulary,
        tol: &'a Tolerances,
        profile: Profile,
    ) -> ProfileEvaluator<'a> {
        assert!(
            vocab.is_unary(),
            "profile evaluation requires a unary vocabulary"
        );
        let mut blocks_in_atom = vec![0usize; profile.counts.len()];
        for &a in &profile.block_atoms {
            blocks_in_atom[a] += 1;
        }
        ProfileEvaluator {
            vocab,
            tol,
            profile,
            blocks_in_atom,
            valuation: vec![None; vocab.var_count()],
            fresh: Vec::new(),
        }
    }

    /// Swaps in a new atom-count vector (same block structure).
    pub fn set_counts(&mut self, counts: &[usize]) {
        debug_assert_eq!(counts.len(), self.profile.counts.len());
        self.profile.counts.copy_from_slice(counts);
    }

    /// Replaces the whole profile (block structure may change).
    pub fn set_profile(&mut self, profile: Profile) {
        self.blocks_in_atom = vec![0usize; profile.counts.len()];
        for &a in &profile.block_atoms {
            self.blocks_in_atom[a] += 1;
        }
        self.profile = profile;
    }

    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    fn atom_of(&self, e: ElemRef) -> usize {
        match e {
            ElemRef::Block(b) => self.profile.block_atoms[b],
            ElemRef::Fresh(s) => self.fresh[s],
        }
    }

    /// Spare capacity of atom `a` once blocks and active fresh descriptors
    /// are accounted for.
    fn available(&self, a: usize) -> usize {
        let named = self.blocks_in_atom[a] + self.fresh.iter().filter(|&&x| x == a).count();
        self.profile.counts[a].saturating_sub(named)
    }

    fn resolve_term(&self, t: &Term) -> ElemRef {
        match t {
            Term::Var(v) => self.valuation[v.index()]
                .unwrap_or_else(|| panic!("unbound variable `{}`", self.vocab.var_name(*v))),
            Term::Const(c) => ElemRef::Block(self.profile.const_block[c.index()]),
            Term::App(..) => panic!("function symbols are not part of the unary fragment"),
        }
    }

    pub fn eval(&mut self, f: &Formula) -> bool {
        match f {
            Formula::True => true,
            Formula::False => false,
            Formula::Pred(p, args) => {
                assert_eq!(args.len(), 1, "unary fragment");
                let e = self.resolve_term(&args[0]);
                atom_satisfies(self.atom_of(e), p.index())
            }
            Formula::TermEq(a, b) => self.resolve_term(a) == self.resolve_term(b),
            Formula::Not(g) => !self.eval(g),
            Formula::And(a, b) => self.eval(a) && self.eval(b),
            Formula::Or(a, b) => self.eval(a) || self.eval(b),
            Formula::Implies(a, b) => !self.eval(a) || self.eval(b),
            Formula::Iff(a, b) => self.eval(a) == self.eval(b),
            Formula::Forall(v, g) => self.eval_quant(*v, g, false),
            Formula::Exists(v, g) => self.eval_quant(*v, g, true),
            Formula::Cmp(lhs, op, rhs) => {
                let l = self.eval_prop(lhs);
                let r = self.eval_prop(rhs);
                match (l, r) {
                    (PValue::Def(a), PValue::Def(b)) => match op {
                        CmpOp::ApproxEq(t) => a.approx_eq(b, self.tol.get(*t)),
                        CmpOp::ApproxLeq(t) => a.approx_leq(b, self.tol.get(*t)),
                        CmpOp::Eq => a == b,
                        CmpOp::Leq => a <= b,
                    },
                    _ => true, // measure-zero convention
                }
            }
        }
    }

    fn eval_quant(&mut self, v: VarId, g: &Formula, existential: bool) -> bool {
        // Case 1: the named blocks.
        for b in 0..self.profile.block_count() {
            if self.eval_bound(v, ElemRef::Block(b), g) == existential {
                return existential;
            }
        }
        // Case 2: elements already pinned by an enclosing binder.
        for s in 0..self.fresh.len() {
            if self.eval_bound(v, ElemRef::Fresh(s), g) == existential {
                return existential;
            }
        }
        // Case 3: a new anonymous element of each atom with spare capacity.
        for a in 0..self.profile.counts.len() {
            if self.available(a) == 0 {
                continue;
            }
            self.fresh.push(a);
            let slot = self.fresh.len() - 1;
            let r = self.eval_bound(v, ElemRef::Fresh(slot), g);
            self.fresh.pop();
            if r == existential {
                return existential;
            }
        }
        !existential
    }

    fn eval_bound(&mut self, v: VarId, e: ElemRef, g: &Formula) -> bool {
        let prev = self.valuation[v.index()].replace(e);
        let r = self.eval(g);
        self.valuation[v.index()] = prev;
        r
    }

    pub fn eval_prop(&mut self, e: &PropExpr) -> PValue {
        match e {
            PropExpr::Rat(r) => PValue::Def(*r),
            PropExpr::Prop { body, cond, vars } => {
                let (hits, cond_count) = self.count_tuples(vars, body, cond.as_deref());
                match cond {
                    None => {
                        let n = self.profile.domain_size() as i128;
                        let total = n
                            .checked_pow(vars.len() as u32)
                            .expect("tuple space too large");
                        PValue::Def(Rat::new(hits, total))
                    }
                    Some(_) => {
                        if cond_count == 0 {
                            PValue::Undef
                        } else {
                            PValue::Def(Rat::new(hits, cond_count))
                        }
                    }
                }
            }
            PropExpr::Add(a, b) => {
                let x = self.eval_prop(a);
                let y = self.eval_prop(b);
                x.map2(y, |p, q| p + q)
            }
            PropExpr::Sub(a, b) => {
                let x = self.eval_prop(a);
                let y = self.eval_prop(b);
                x.map2(y, |p, q| p - q)
            }
            PropExpr::Mul(a, b) => {
                let x = self.eval_prop(a);
                let y = self.eval_prop(b);
                x.map2(y, |p, q| p * q)
            }
        }
    }

    /// Counts tuples satisfying `body ∧ cond` and `cond` over the subscript
    /// variables, by case analysis with multiplicities.
    fn count_tuples(
        &mut self,
        vars: &[VarId],
        body: &Formula,
        cond: Option<&Formula>,
    ) -> (i128, i128) {
        let Some((&v, rest)) = vars.split_first() else {
            let in_cond = match cond {
                Some(c) => self.eval(c),
                None => true,
            };
            if !in_cond {
                return (0, 0);
            }
            let hit = self.eval(body);
            return (hit as i128, 1);
        };
        let mut hits: i128 = 0;
        let mut conds: i128 = 0;

        for b in 0..self.profile.block_count() {
            let prev = self.valuation[v.index()].replace(ElemRef::Block(b));
            let (h, c) = self.count_tuples(rest, body, cond);
            self.valuation[v.index()] = prev;
            hits += h;
            conds += c;
        }
        for s in 0..self.fresh.len() {
            let prev = self.valuation[v.index()].replace(ElemRef::Fresh(s));
            let (h, c) = self.count_tuples(rest, body, cond);
            self.valuation[v.index()] = prev;
            hits += h;
            conds += c;
        }
        for a in 0..self.profile.counts.len() {
            let avail = self.available(a) as i128;
            if avail == 0 {
                continue;
            }
            self.fresh.push(a);
            let slot = self.fresh.len() - 1;
            let prev = self.valuation[v.index()].replace(ElemRef::Fresh(slot));
            let (h, c) = self.count_tuples(rest, body, cond);
            self.valuation[v.index()] = prev;
            self.fresh.pop();
            hits += avail * h;
            conds += avail * c;
        }
        (hits, conds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rw_logic::parse_formula;

    fn setup() -> (Vocabulary, Tolerances) {
        let mut v = Vocabulary::new();
        v.pred("Bird", 1).unwrap(); // bit 0
        v.pred("Fly", 1).unwrap(); // bit 1
        v.constant("Tweety").unwrap();
        (v, Tolerances::uniform(Rat::new(1, 10)))
    }

    /// Atoms: 0 = ¬B¬F, 1 = B¬F, 2 = ¬BF, 3 = BF.
    fn profile(counts: [usize; 4], tweety_atom: usize) -> Profile {
        Profile {
            counts: counts.to_vec(),
            block_atoms: vec![tweety_atom],
            const_block: vec![0],
        }
    }

    #[test]
    fn feasibility() {
        assert!(profile([1, 0, 0, 0], 0).is_feasible());
        assert!(!profile([0, 1, 0, 0], 0).is_feasible());
    }

    #[test]
    fn predicates_on_constants() {
        let (mut v, t) = setup();
        let f = parse_formula(&mut v, "Bird(Tweety) & Fly(Tweety)").unwrap();
        let g = parse_formula(&mut v, "!Bird(Tweety)").unwrap();
        let p = profile([5, 2, 0, 3], 3);
        let mut ev = ProfileEvaluator::new(&v, &t, p);
        assert!(ev.eval(&f));
        assert!(!ev.eval(&g));
    }

    #[test]
    fn quantifiers_over_profiles() {
        let (mut v, t) = setup();
        // 5 non-birds, 2 flightless birds, 3 flying birds; Tweety flies.
        let cases = [
            ("exists x (Bird(x) & !Fly(x))", true),
            ("forall x (Fly(x) => Bird(x))", true),
            ("forall x (Bird(x) => Fly(x))", false),
            ("exists x (!Bird(x) & Fly(x))", false),
        ];
        let parsed: Vec<_> = cases
            .iter()
            .map(|(src, e)| (parse_formula(&mut v, src).unwrap(), *src, *e))
            .collect();
        let p = profile([5, 2, 0, 3], 3);
        let mut ev = ProfileEvaluator::new(&v, &t, p);
        for (f, src, expected) in parsed {
            assert_eq!(ev.eval(&f), expected, "{src}");
        }
    }

    #[test]
    fn proportions_over_profiles() {
        let (mut v, t) = setup();
        let cases = [
            ("||Bird(x)||_x = 1/2", true),               // 5 of 10
            ("||Fly(x) | Bird(x)||_x = 3/5", true),      // 3 of 5
            ("||Fly(x) | Bird(x)||_x ~=_1 0.5", true),   // |3/5 - 1/2| = 1/10 within tau
            ("||Fly(x) | Bird(x)||_x ~=_1 0.45", false), // 3/20 > 1/10
            ("||Fly(x)||_x <~_1 0.25", true),            // 3/10 - 1/4 = 1/20 within tau
        ];
        let parsed: Vec<_> = cases
            .iter()
            .map(|(src, e)| (parse_formula(&mut v, src).unwrap(), *src, *e))
            .collect();
        let p = profile([5, 2, 0, 3], 3);
        let mut ev = ProfileEvaluator::new(&v, &t, p);
        for (f, src, expected) in parsed {
            assert_eq!(ev.eval(&f), expected, "{src}");
        }
    }

    #[test]
    fn equality_and_blocks() {
        let mut v = Vocabulary::new();
        v.pred("P", 1).unwrap();
        v.constant("A").unwrap();
        v.constant("B").unwrap();
        let t = Tolerances::uniform(Rat::new(1, 10));
        let f = parse_formula(&mut v, "A = B").unwrap();
        let g = parse_formula(&mut v, "exists x (x = A & P(x))").unwrap();
        // A and B in the same block (equal), both in atom 1 (P).
        let p = Profile {
            counts: vec![3, 2],
            block_atoms: vec![1],
            const_block: vec![0, 0],
        };
        let mut ev = ProfileEvaluator::new(&v, &t, p);
        assert!(ev.eval(&f));
        // Distinct blocks.
        let p2 = Profile {
            counts: vec![3, 2],
            block_atoms: vec![1, 1],
            const_block: vec![0, 1],
        };
        ev.set_profile(p2);
        assert!(!ev.eval(&f));
        assert!(ev.eval(&g));
    }

    #[test]
    fn multi_variable_counting_respects_distinctness() {
        // ||x = y||_{x,y} must equal 1/N.
        let mut v = Vocabulary::new();
        v.pred("P", 1).unwrap();
        let t = Tolerances::uniform(Rat::new(1, 10));
        let f = parse_formula(&mut v, "||x = y||_{x,y} = 1/7").unwrap();
        // Pairs of distinct elements both satisfying P: 4*3 of 49.
        let g = parse_formula(&mut v, "||P(x) & P(y) & !(x = y)||_{x,y} = 12/49").unwrap();
        let p = Profile {
            counts: vec![3, 4],
            block_atoms: vec![],
            const_block: vec![],
        };
        let mut ev = ProfileEvaluator::new(&v, &t, p);
        assert!(ev.eval(&f));
        assert!(ev.eval(&g));
    }

    #[test]
    fn nested_quantifier_distinctness() {
        // With 2 elements in atom P: exists x exists y (P(x) & P(y) & x != y)
        // must hold; with only 1 it must not.
        let mut v = Vocabulary::new();
        v.pred("P", 1).unwrap();
        let t = Tolerances::uniform(Rat::new(1, 10));
        let f = parse_formula(&mut v, "exists x (exists y (P(x) & P(y) & !(x = y)))").unwrap();
        let p2 = Profile {
            counts: vec![1, 2],
            block_atoms: vec![],
            const_block: vec![],
        };
        let mut ev = ProfileEvaluator::new(&v, &t, p2);
        assert!(ev.eval(&f));
        let p1 = Profile {
            counts: vec![2, 1],
            block_atoms: vec![],
            const_block: vec![],
        };
        ev.set_profile(p1);
        assert!(!ev.eval(&f));
    }

    #[test]
    fn conditional_on_empty_class_is_undef() {
        let (mut v, t) = setup();
        let f = parse_formula(&mut v, "||Fly(x) | Bird(x)||_x ~=_1 1").unwrap();
        let g = parse_formula(&mut v, "||Fly(x) | Bird(x)||_x ~=_1 0").unwrap();
        let p = profile([10, 0, 0, 0], 0);
        let mut ev = ProfileEvaluator::new(&v, &t, p);
        assert!(ev.eval(&f)); // vacuous: no birds
        assert!(ev.eval(&g)); // equally vacuous
    }
}
