//! Exact `Pr_N^τ` for unary knowledge bases by weighted summation over
//! profiles.
//!
//! The outer loops enumerate the constants' equality pattern (a set
//! partition) and each block's atom; the inner loop enumerates atom-count
//! compositions of `N`. Universal conjuncts `∀x φ(x)` with quantifier-free
//! unary `φ` are pre-compiled to an *allowed atom set*: compositions placing
//! mass on a forbidden atom would fail the KB anyway, so they are skipped
//! wholesale (this is what makes the lottery examples with `∀x Ticket(x)`
//! tractable at `N` in the thousands).

use crate::atoms::{atom_count, compile_atom_set, AtomSet};
use crate::profile::{Profile, ProfileEvaluator};
use rw_logic::ast::Formula;
use rw_logic::{KnowledgeBase, Tolerances, Vocabulary};
use rw_util::{Compositions, FactTable, LogWeight, SetPartitions};

/// Errors from the unary counting engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnaryError {
    /// The vocabulary has functions or non-unary predicates.
    NotUnary,
    /// The profile space exceeds the enumeration budget.
    TooManyProfiles { estimated: u128, budget: u128 },
}

impl std::fmt::Display for UnaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnaryError::NotUnary => {
                write!(
                    f,
                    "unary engine requires a function-free, all-unary vocabulary"
                )
            }
            UnaryError::TooManyProfiles { estimated, budget } => write!(
                f,
                "profile space too large: ~{estimated} profiles exceeds budget {budget}"
            ),
        }
    }
}

impl std::error::Error for UnaryError {}

/// The unary counting engine.
#[derive(Clone, Debug)]
pub struct UnaryEngine {
    /// Budget on enumerated profiles (compositions × block assignments ×
    /// partitions).
    pub max_profiles: u128,
}

impl Default for UnaryEngine {
    fn default() -> UnaryEngine {
        UnaryEngine {
            max_profiles: 30_000_000,
        }
    }
}

/// Accumulated weights from a profile sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepTotals {
    pub kb_weight: LogWeight,
    pub query_weight: LogWeight,
}

impl UnaryEngine {
    /// Atoms allowed to be nonempty, from universal conjuncts.
    fn allowed_atoms(kb: &KnowledgeBase) -> AtomSet {
        let vocab = kb.vocab();
        let mut allowed = AtomSet::full(atom_count(vocab));
        for c in kb.conjuncts() {
            if let Formula::Forall(v, body) = c {
                if let Some(s) = compile_atom_set(body, *v, vocab) {
                    allowed = allowed.intersect(&s);
                }
            }
        }
        allowed
    }

    fn check_unary(vocab: &Vocabulary) -> Result<(), UnaryError> {
        if vocab.is_unary() {
            Ok(())
        } else {
            Err(UnaryError::NotUnary)
        }
    }

    fn estimate_profiles(n: usize, free_atoms: usize, consts: usize, atoms: usize) -> u128 {
        let partitions = rw_util::comb::bell_number(consts.min(12));
        let compositions = rw_util::comb::weak_compositions_count(n as u64, free_atoms as u64);
        // Every block can take any atom: bound blocks by the constant count.
        let assignments = (atoms as u128).saturating_pow(consts as u32);
        partitions
            .saturating_mul(assignments)
            .saturating_mul(compositions)
    }

    /// Sweeps all profiles, accumulating KB weight and KB∧query weight.
    pub fn sweep(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        n: usize,
        tol: &Tolerances,
    ) -> Result<SweepTotals, UnaryError> {
        self.sweep_weighted(kb, query, n, tol, |_| LogWeight::ONE)
    }

    /// [`UnaryEngine::sweep`] with a per-profile weight hook.
    ///
    /// `extra_weight` receives the atom-count vector and multiplies the
    /// uniform world-counting weight. Random worlds uses the constant `1`
    /// (every world equally likely); exchangeable non-uniform priors — the
    /// random-propensities method of the paper's §7.3, Carnap's `m*` — have
    /// per-world probabilities that depend only on the atom counts, so they
    /// reuse this sweep with their own hook (see the `rw-propensity`
    /// crate).
    pub fn sweep_weighted(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        n: usize,
        tol: &Tolerances,
        extra_weight: impl Fn(&[usize]) -> LogWeight,
    ) -> Result<SweepTotals, UnaryError> {
        let vocab = kb.vocab();
        Self::check_unary(vocab)?;
        let atoms = atom_count(vocab);
        let allowed = Self::allowed_atoms(kb);
        let free: Vec<usize> = allowed.iter().collect();
        let m = vocab.const_count();

        let estimated = Self::estimate_profiles(n, free.len().max(1), m, atoms);
        if estimated > self.max_profiles {
            return Err(UnaryError::TooManyProfiles {
                estimated,
                budget: self.max_profiles,
            });
        }

        let kb_formula = kb.as_formula();
        let fact = FactTable::new(n);
        let mut totals = SweepTotals {
            kb_weight: LogWeight::ZERO,
            query_weight: LogWeight::ZERO,
        };
        if free.is_empty() {
            // Universal conjuncts forbid every atom: nowhere to put N ≥ 1
            // elements, so no world satisfies the KB.
            return Ok(totals);
        }

        let mut counts = vec![0usize; atoms];
        let mut partitions = SetPartitions::new(m);
        while let Some(rgs) = partitions.next() {
            let const_block = rgs.to_vec();
            let blocks = SetPartitions::block_count(&const_block);
            // Odometer over block → allowed atom assignments.
            let mut assign_idx = vec![0usize; blocks];
            loop {
                let block_atoms: Vec<usize> = assign_idx.iter().map(|&i| free[i]).collect();
                // Fast feasibility precheck is done per-composition below.
                let mut ev = ProfileEvaluator::new(
                    vocab,
                    tol,
                    Profile {
                        counts: counts.clone(),
                        block_atoms: block_atoms.clone(),
                        const_block: const_block.clone(),
                    },
                );
                let mut blocks_in_atom = vec![0usize; atoms];
                for &a in &block_atoms {
                    blocks_in_atom[a] += 1;
                }

                let mut comps = Compositions::new(n, free.len());
                while let Some(comp) = comps.next() {
                    counts.fill(0);
                    for (i, &a) in free.iter().enumerate() {
                        counts[a] = comp[i];
                    }
                    // Zero-weight profiles: atom cannot host its blocks.
                    if blocks_in_atom.iter().zip(&counts).any(|(&k, &c)| k > c) {
                        continue;
                    }
                    ev.set_counts(&counts);
                    if !ev.eval(&kb_formula) {
                        continue;
                    }
                    let mut w = fact.multinomial(n, &counts);
                    for (a, &k) in blocks_in_atom.iter().enumerate() {
                        if k > 0 {
                            w *= fact.falling(counts[a], k);
                        }
                    }
                    w *= extra_weight(&counts);
                    totals.kb_weight += w;
                    if ev.eval(query) {
                        totals.query_weight += w;
                    }
                }

                // Advance block-atom odometer.
                if blocks == 0 {
                    break;
                }
                let mut i = 0;
                loop {
                    if i == blocks {
                        break;
                    }
                    assign_idx[i] += 1;
                    if assign_idx[i] < free.len() {
                        break;
                    }
                    assign_idx[i] = 0;
                    i += 1;
                }
                if blocks == 0 || assign_idx.iter().all(|&x| x == 0) {
                    break;
                }
            }
        }
        Ok(totals)
    }

    /// Exact `Pr_N^τ(query | KB)`; `None` when no world satisfies the KB.
    pub fn degree_of_belief_at(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        n: usize,
        tol: &Tolerances,
    ) -> Result<Option<f64>, UnaryError> {
        let totals = self.sweep(kb, query, n, tol)?;
        if totals.kb_weight.is_zero() {
            return Ok(None);
        }
        Ok(Some(totals.query_weight.ratio(totals.kb_weight)))
    }

    /// The expected atom proportions `E[n_a / N | KB]` — the exact finite-`N`
    /// counterpart of the maximum-entropy point (paper §6).
    pub fn expected_atom_proportions(
        &self,
        kb: &KnowledgeBase,
        n: usize,
        tol: &Tolerances,
    ) -> Result<Option<Vec<f64>>, UnaryError> {
        let vocab = kb.vocab();
        Self::check_unary(vocab)?;
        let atoms = atom_count(vocab);
        let allowed = Self::allowed_atoms(kb);
        let free: Vec<usize> = allowed.iter().collect();
        let m = vocab.const_count();
        let estimated = Self::estimate_profiles(n, free.len().max(1), m, atoms);
        if estimated > self.max_profiles {
            return Err(UnaryError::TooManyProfiles {
                estimated,
                budget: self.max_profiles,
            });
        }

        let kb_formula = kb.as_formula();
        let fact = FactTable::new(n);
        let mut total = LogWeight::ZERO;
        let mut per_atom = vec![LogWeight::ZERO; atoms];
        if free.is_empty() {
            return Ok(None);
        }

        let mut counts = vec![0usize; atoms];
        let mut partitions = SetPartitions::new(m);
        while let Some(rgs) = partitions.next() {
            let const_block = rgs.to_vec();
            let blocks = SetPartitions::block_count(&const_block);
            let mut assign_idx = vec![0usize; blocks];
            loop {
                let block_atoms: Vec<usize> = assign_idx.iter().map(|&i| free[i]).collect();
                let mut ev = ProfileEvaluator::new(
                    vocab,
                    tol,
                    Profile {
                        counts: counts.clone(),
                        block_atoms: block_atoms.clone(),
                        const_block: const_block.clone(),
                    },
                );
                let mut blocks_in_atom = vec![0usize; atoms];
                for &a in &block_atoms {
                    blocks_in_atom[a] += 1;
                }
                let mut comps = Compositions::new(n, free.len());
                while let Some(comp) = comps.next() {
                    counts.fill(0);
                    for (i, &a) in free.iter().enumerate() {
                        counts[a] = comp[i];
                    }
                    if blocks_in_atom.iter().zip(&counts).any(|(&k, &c)| k > c) {
                        continue;
                    }
                    ev.set_counts(&counts);
                    if !ev.eval(&kb_formula) {
                        continue;
                    }
                    let mut w = fact.multinomial(n, &counts);
                    for (a, &k) in blocks_in_atom.iter().enumerate() {
                        if k > 0 {
                            w *= fact.falling(counts[a], k);
                        }
                    }
                    total += w;
                    for (a, &c) in counts.iter().enumerate() {
                        if c > 0 {
                            per_atom[a] += w * LogWeight::from_value(c as f64 / n as f64);
                        }
                    }
                }
                if blocks == 0 {
                    break;
                }
                let mut i = 0;
                loop {
                    if i == blocks {
                        break;
                    }
                    assign_idx[i] += 1;
                    if assign_idx[i] < free.len() {
                        break;
                    }
                    assign_idx[i] = 0;
                    i += 1;
                }
                if assign_idx.iter().all(|&x| x == 0) {
                    break;
                }
            }
        }
        if total.is_zero() {
            return Ok(None);
        }
        Ok(Some(per_atom.iter().map(|w| w.ratio(total)).collect()))
    }
}

/// Convenience wrapper using the default engine configuration.
pub fn degree_of_belief_at(
    kb: &KnowledgeBase,
    query: &Formula,
    n: usize,
    tol: &Tolerances,
) -> Result<Option<f64>, UnaryError> {
    UnaryEngine::default().degree_of_belief_at(kb, query, n, tol)
}

/// Convenience wrapper for [`UnaryEngine::expected_atom_proportions`].
pub fn expected_atom_proportions(
    kb: &KnowledgeBase,
    n: usize,
    tol: &Tolerances,
) -> Result<Option<Vec<f64>>, UnaryError> {
    UnaryEngine::default().expected_atom_proportions(kb, n, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rw_util::Rat;

    fn tol(num: i128, den: i128) -> Tolerances {
        Tolerances::uniform(Rat::new(num, den))
    }

    /// Cross-validation: the unary engine must agree exactly with
    /// brute-force enumeration wherever both run.
    #[test]
    fn agrees_with_enumeration() {
        let cases = [
            ("||P(x)||_x ~=_1 0.5; Q(C)", "P(C)"),
            ("P(C) or Q(C)", "Q(C)"),
            ("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(C)", "Hep(C)"),
            ("forall x (P(x) => Q(x)); P(C)", "Q(C)"),
            ("C1 = C2 or C2 = C3 or C1 = C3", "C1 = C2"),
            ("exists! x (W(x)); forall x (W(x) => T(x)); T(C)", "W(C)"),
        ];
        for (kb_src, q_src) in cases {
            let mut kb = KnowledgeBase::parse(kb_src).unwrap();
            let q = kb.parse_query(q_src).unwrap();
            for n in 2..=4usize {
                let t = tol(1, 4);
                let exact = rw_worlds::degree_of_belief_at(&kb, &q, n, &t).unwrap();
                let unary = degree_of_belief_at(&kb, &q, n, &t).unwrap();
                match (exact, unary) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert!(
                            (a - b).abs() < 1e-9,
                            "{kb_src} ⊢ {q_src} at N={n}: {a} vs {b}"
                        )
                    }
                    other => panic!("{kb_src} ⊢ {q_src} at N={n}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn hepatitis_converges_to_point_eight() {
        // Paper Example 5.8. The order of limits matters (Definition 4.3):
        // at *fixed* τ the N → ∞ value is pulled to the entropy-preferred
        // boundary 0.8 − τ, so we check (a) Theorem 5.6's guarantee that
        // every finite value lies in [0.8 − τ, 0.8 + τ], and (b) convergence
        // to 0.8 along a diagonal where τ shrinks with N.
        let mut kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)").unwrap();
        let q = kb.parse_query("Hep(Eric)").unwrap();
        let mut last_gap = f64::INFINITY;
        for (den, n) in [(10i128, 20usize), (20, 40), (40, 80)] {
            let t = tol(1, den);
            let d = degree_of_belief_at(&kb, &q, n, &t).unwrap().unwrap();
            let tau = 1.0 / den as f64;
            assert!(d >= 0.8 - tau - 1e-12 && d <= 0.8 + tau + 1e-12, "{d}");
            let gap = (d - 0.8).abs();
            assert!(
                gap < last_gap,
                "diagonal not converging: {gap} vs {last_gap}"
            );
            last_gap = gap;
        }
        assert!(last_gap < 0.011, "{last_gap}");
    }

    #[test]
    fn lottery_exact_winner_probability() {
        // Paper §5.5: everyone holds a ticket, exactly one winner:
        // Pr(Winner(C)) = 1/N exactly.
        let mut kb = KnowledgeBase::parse(
            "exists! x (Winner(x)); forall x (Winner(x) => Ticket(x)); forall x (Ticket(x)); Ticket(C)",
        )
        .unwrap();
        let q = kb.parse_query("Winner(C)").unwrap();
        let t = tol(1, 10);
        for n in [5usize, 20, 100] {
            let d = degree_of_belief_at(&kb, &q, n, &t).unwrap().unwrap();
            assert!((d - 1.0 / n as f64).abs() < 1e-9, "N={n}: {d}");
        }
        let someone = kb.parse_query("exists x (Winner(x))").unwrap();
        let d = degree_of_belief_at(&kb, &someone, 50, &t).unwrap().unwrap();
        assert_eq!(d, 1.0);
    }

    #[test]
    fn inconsistent_kb_yields_none() {
        let mut kb = KnowledgeBase::parse("forall x (P(x)); exists x (!P(x))").unwrap();
        let q = kb.parse_query("P(C)").unwrap();
        assert_eq!(degree_of_belief_at(&kb, &q, 5, &tol(1, 10)).unwrap(), None);
    }

    #[test]
    fn expected_proportions_match_maxent_shape() {
        // Paper §6 example: ∀x P1(x) ∧ ||P1 ∧ P2||_x ⪯ 0.3. As N grows the
        // expected proportion of P2 approaches 0.3 (the maxent point).
        let mut kb =
            KnowledgeBase::parse("forall x (P1(x)); ||P1(x) & P2(x)||_x <~_1 0.3").unwrap();
        let q = kb.parse_query("P2(C)").unwrap();
        let t = tol(1, 50);
        let d = degree_of_belief_at(&kb, &q, 120, &t).unwrap().unwrap();
        assert!((d - 0.3).abs() < 0.05, "{d}");
        let props = expected_atom_proportions(&kb, 120, &t).unwrap().unwrap();
        // Atoms without P1 must carry no mass.
        assert!(props[0] < 1e-12 && props[2] < 1e-12, "{props:?}");
    }

    #[test]
    fn budget_is_enforced() {
        let engine = UnaryEngine { max_profiles: 10 };
        let mut kb = KnowledgeBase::parse("||P(x)||_x ~=_1 0.5").unwrap();
        let q = kb.parse_query("P(C)").unwrap();
        let err = engine
            .degree_of_belief_at(&kb, &q, 100, &tol(1, 10))
            .unwrap_err();
        assert!(matches!(err, UnaryError::TooManyProfiles { .. }));
    }

    #[test]
    fn non_unary_is_rejected() {
        let mut kb = KnowledgeBase::parse("Likes(A, B)").unwrap();
        let q = kb.parse_query("Likes(B, A)").unwrap();
        assert_eq!(
            degree_of_belief_at(&kb, &q, 3, &tol(1, 10)).unwrap_err(),
            UnaryError::NotUnary
        );
    }
}
