//! Exact world counting for **unary** vocabularies in time polynomial in the
//! domain size.
//!
//! For a vocabulary of `k` unary predicates and `m` constants, a world over
//! `{1..N}` is determined by (i) which of the `2^k` *atoms* (complete
//! conjunctions of predicates and negations, paper §6) each element
//! satisfies, and (ii) the denotations of the constants. Truth of any `L≈`
//! sentence is invariant under permutations of the domain that fix the
//! constants' denotations, so worlds can be counted by *profile*:
//!
//! * an atom-count vector `(n₁..n_A)` with `Σ n_a = N`,
//! * an equality pattern (set partition) of the constants, and
//! * an atom for each block of the partition;
//!
//! with weight `multinomial(N; n⃗) · Π_a (n_a)_{k_a}` (falling factorials
//! place the distinct blocks inside their atoms). The [`profile`] module
//! evaluates any unary `L≈` sentence directly on a profile — including
//! quantifiers, equality and nested conditional proportions — by reasoning
//! over *element descriptors* instead of concrete elements.
//!
//! This engine replaces the doubly-exponential enumeration of `rw-worlds`
//! with a sum over `O(N^(A-1))` compositions, which covers every unary
//! example in the paper at domain sizes large enough to see the `N → ∞`
//! limits emerge. It is cross-validated against brute-force enumeration in
//! this crate's tests and in `tests/cross_engine.rs`.

pub mod atoms;
pub mod count;
pub mod profile;

pub use atoms::{atom_count, AtomSet};
pub use count::{degree_of_belief_at, expected_atom_proportions, UnaryEngine, UnaryError};
pub use profile::Profile;
