//! Atoms over unary predicates and sets of atoms.
//!
//! With predicates `P₀..P_{k-1}`, atom `a ∈ {0 .. 2^k - 1}` is the complete
//! conjunction whose `i`-th literal is `P_i` if bit `i` of `a` is set and
//! `¬P_i` otherwise (paper §6). A quantifier-free unary formula over one
//! variable denotes a *set* of atoms; [`compile_atom_set`] computes it.

use rw_logic::ast::{Formula, Term};
use rw_logic::{VarId, Vocabulary};

/// Number of atoms for a unary vocabulary (`2^k` for `k` predicates).
pub fn atom_count(vocab: &Vocabulary) -> usize {
    1usize
        .checked_shl(vocab.pred_count() as u32)
        .expect("too many predicates for atom enumeration")
}

/// A set of atoms, stored as a bitset.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AtomSet {
    len: usize,
    words: Vec<u64>,
}

impl AtomSet {
    pub fn empty(len: usize) -> AtomSet {
        AtomSet {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    pub fn full(len: usize) -> AtomSet {
        let mut s = AtomSet::empty(len);
        for a in 0..len {
            s.insert(a);
        }
        s
    }

    // `is_empty_set` below tests set membership; `len` is the universe
    // size, so a `len == 0`-style `is_empty` would be misleading.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    pub fn insert(&mut self, atom: usize) {
        self.words[atom / 64] |= 1 << (atom % 64);
    }

    pub fn contains(&self, atom: usize) -> bool {
        (self.words[atom / 64] >> (atom % 64)) & 1 == 1
    }

    pub fn complement(&self) -> AtomSet {
        let mut out = AtomSet::empty(self.len);
        for a in 0..self.len {
            if !self.contains(a) {
                out.insert(a);
            }
        }
        out
    }

    pub fn intersect(&self, other: &AtomSet) -> AtomSet {
        debug_assert_eq!(self.len, other.len);
        AtomSet {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    pub fn union(&self, other: &AtomSet) -> AtomSet {
        debug_assert_eq!(self.len, other.len);
        AtomSet {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// True when `self ⊆ other`.
    pub fn subset_of(&self, other: &AtomSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    pub fn is_disjoint(&self, other: &AtomSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&a| self.contains(a))
    }

    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

impl std::fmt::Debug for AtomSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomSet{{")?;
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

/// Does atom `a` satisfy predicate `p`?
pub fn atom_satisfies(atom: usize, pred_index: usize) -> bool {
    (atom >> pred_index) & 1 == 1
}

/// Compiles a quantifier-free unary formula over the single variable `v`
/// into the set of atoms satisfying it. Returns `None` if the formula
/// leaves the fragment (other variables, constants, quantifiers,
/// proportions, equality).
pub fn compile_atom_set(f: &Formula, v: VarId, vocab: &Vocabulary) -> Option<AtomSet> {
    let len = atom_count(vocab);
    match f {
        Formula::True => Some(AtomSet::full(len)),
        Formula::False => Some(AtomSet::empty(len)),
        Formula::Pred(p, args) => {
            if args.len() != 1 || args[0] != Term::Var(v) {
                return None;
            }
            let mut s = AtomSet::empty(len);
            for a in 0..len {
                if atom_satisfies(a, p.index()) {
                    s.insert(a);
                }
            }
            Some(s)
        }
        Formula::Not(g) => Some(compile_atom_set(g, v, vocab)?.complement()),
        Formula::And(a, b) => {
            Some(compile_atom_set(a, v, vocab)?.intersect(&compile_atom_set(b, v, vocab)?))
        }
        Formula::Or(a, b) => {
            Some(compile_atom_set(a, v, vocab)?.union(&compile_atom_set(b, v, vocab)?))
        }
        Formula::Implies(a, b) => Some(
            compile_atom_set(a, v, vocab)?
                .complement()
                .union(&compile_atom_set(b, v, vocab)?),
        ),
        Formula::Iff(a, b) => {
            let sa = compile_atom_set(a, v, vocab)?;
            let sb = compile_atom_set(b, v, vocab)?;
            Some(
                sa.intersect(&sb)
                    .union(&sa.complement().intersect(&sb.complement())),
            )
        }
        _ => None,
    }
}

/// As [`compile_atom_set`] but over a constant: the set of atoms the
/// constant's denotation may inhabit for the formula to hold.
pub fn compile_atom_set_const(
    f: &Formula,
    c: rw_logic::ConstId,
    vocab: &Vocabulary,
) -> Option<AtomSet> {
    // Reuse the variable compiler by generalizing the constant. We use a
    // synthetic VarId beyond the vocabulary's range; compile only inspects
    // term equality with `Term::Var(v)`, so no interning is needed.
    let v = VarId(u32::MAX - 1);
    let g = rw_logic::analysis::generalize_const(f, c, v);
    compile_atom_set(&g, v, vocab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rw_logic::parse_formula;

    #[test]
    fn atom_set_operations() {
        let mut a = AtomSet::empty(70);
        a.insert(0);
        a.insert(65);
        assert!(a.contains(65));
        assert!(!a.contains(64));
        assert_eq!(a.count(), 2);
        let b = a.complement();
        assert_eq!(b.count(), 68);
        assert!(a.is_disjoint(&b));
        assert!(a.subset_of(&a.union(&b)));
        assert_eq!(a.intersect(&b).count(), 0);
    }

    #[test]
    fn compile_simple_predicates() {
        let mut v = Vocabulary::new();
        let f = parse_formula(&mut v, "Bird(x) & !Fly(x)").unwrap();
        // Bird = bit 0, Fly = bit 1 → atoms with bit0=1, bit1=0 → atom 1.
        let x = v.var("x");
        let s = compile_atom_set(&f, x, &v).unwrap();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn compile_connectives() {
        let mut v = Vocabulary::new();
        let f = parse_formula(&mut v, "P(x) => Q(x)").unwrap();
        let x = v.var("x");
        let s = compile_atom_set(&f, x, &v).unwrap();
        // Atoms: 0 (¬P¬Q), 1 (P¬Q), 2 (¬PQ), 3 (PQ). Implication excludes 1.
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 3]);

        let g = parse_formula(&mut v, "P(x) <=> Q(x)").unwrap();
        let sg = compile_atom_set(&g, x, &v).unwrap();
        assert_eq!(sg.iter().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn compile_rejects_non_fragment() {
        let mut v = Vocabulary::new();
        let x = v.var("x");
        for src in [
            "Likes(x, y)",
            "forall y (P(y))",
            "x = Eric",
            "||P(y)||_y ~=_1 1",
        ] {
            let f = parse_formula(&mut v, src).unwrap();
            assert!(compile_atom_set(&f, x, &v).is_none(), "{src}");
        }
    }

    #[test]
    fn compile_over_constant() {
        let mut v = Vocabulary::new();
        let f = parse_formula(&mut v, "Jaun(Eric) & !Hep(Eric)").unwrap();
        let eric = v.lookup_const("Eric").unwrap();
        let s = compile_atom_set_const(&f, eric, &v).unwrap();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1]); // Jaun=bit0, Hep=bit1
    }
}
