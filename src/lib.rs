//! # random-worlds
//!
//! A production-quality Rust implementation of the **random-worlds method**
//! for inducing degrees of belief from statistical knowledge bases, after
//!
//! > F. Bacchus, A. J. Grove, J. Y. Halpern, D. Koller.
//! > *From Statistical Knowledge Bases to Degrees of Belief.*
//! > Artificial Intelligence 87(1–2):75–143, 1996 (PODS 2006 invited
//! > overview; arXiv:cs/0307056).
//!
//! This facade crate re-exports the workspace's public API. See the
//! README for a guided tour of the crates and the solver pipeline.
//!
//! ## Quick start
//!
//! ```
//! use random_worlds::prelude::*;
//!
//! // "80% of jaundiced patients have hepatitis; Eric has jaundice."
//! let kb = KnowledgeBase::parse(
//!     "||Hep(x) | Jaun(x)||_x ~=_1 0.8 ; Jaun(Eric)",
//! ).unwrap();
//! let engine = RandomWorlds::new();
//! let result = engine.degree_of_belief(&kb, "Hep(Eric)").unwrap();
//! assert_eq!(result.belief.as_point(), Some(0.8));
//! ```

pub use rw_core as core;
pub use rw_defaults as defaults;
pub use rw_epsilon as epsilon;
pub use rw_logic as logic;
pub use rw_maxent as maxent;
pub use rw_propensity as propensity;
pub use rw_refclass as refclass;
pub use rw_server as server;
pub use rw_temporal as temporal;
pub use rw_unary as unary;
pub use rw_util as util;
pub use rw_worlds as worlds;

/// Convenience prelude: the types most applications need.
pub mod prelude {
    pub use rw_core::{
        AnswerCache, BatchOptions, BatchReport, Belief, Provenance, RandomWorlds, Response, Trace,
    };
    pub use rw_logic::{Formula, KnowledgeBase, PropExpr, Term, Vocabulary};
    pub use rw_util::Rat;
}
